package workflow

import (
	"context"
	"os"
	"testing"

	"daspos/internal/checkpoint"
	"daspos/internal/faults"
	"daspos/internal/provenance"
)

// countedTwoStep is twoStep with per-step execution counters, the
// instrument the resume tests assert skipping with.
func countedTwoStep(counts map[string]int) *Workflow {
	w := twoStep()
	for i := range w.Steps {
		name, inner := w.Steps[i].Name, w.Steps[i].Run
		w.Steps[i].Run = func(ctx *Context) error {
			counts[name]++
			return inner(ctx)
		}
	}
	return w
}

func openTestLedger(t *testing.T, dir string) *checkpoint.Ledger {
	t.Helper()
	l, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func TestCheckpointedRunRecordsEveryStep(t *testing.T) {
	dir := t.TempDir()
	l := openTestLedger(t, dir)
	counts := map[string]int{}
	res, err := countedTwoStep(counts).Execute(context.Background(), rawInput(), provenance.NewStore(), WithCheckpoint(l))
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 2 || res.Skipped != 0 {
		t.Fatalf("executed=%d skipped=%d", res.Executed, res.Skipped)
	}
	for _, info := range l.Status() {
		if info.State != checkpoint.StepDone {
			t.Fatalf("step %q left %v", info.Step, info.State)
		}
		if err := l.Verify(info.Key); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(l.Status()); n != 2 {
		t.Fatalf("ledger holds %d steps", n)
	}
}

func TestResumeSkipsVerifiedSteps(t *testing.T) {
	dir := t.TempDir()
	first := openTestLedger(t, dir)
	counts := map[string]int{}
	ref, err := countedTwoStep(counts).Execute(context.Background(), rawInput(), provenance.NewStore(), WithCheckpoint(first))
	if err != nil {
		t.Fatal(err)
	}
	first.Close()

	// A fresh process resumes: same workflow, same inputs, new ledger
	// handle over the same directory.
	re := openTestLedger(t, dir)
	resumed, err := countedTwoStep(counts).Execute(context.Background(), rawInput(), provenance.NewStore(), ResumeFrom(re))
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Executed != 0 || resumed.Skipped != 2 {
		t.Fatalf("resume executed=%d skipped=%d, want 0/2", resumed.Executed, resumed.Skipped)
	}
	if counts["reco"] != 1 || counts["slim"] != 1 {
		t.Fatalf("steps re-executed on resume: %v", counts)
	}
	for name, a := range ref.Artifacts {
		b := resumed.Artifacts[name]
		if b == nil || string(b.Data) != string(a.Data) || b.Digest() != a.Digest() {
			t.Fatalf("artifact %q differs after resume", name)
		}
		if b.Events != a.Events || b.Tier != a.Tier {
			t.Fatalf("artifact %q metadata lost: %+v vs %+v", name, b, a)
		}
	}
	// Skipped steps keep their provenance census.
	for i, rep := range resumed.Reports {
		if !rep.Skipped {
			t.Fatalf("report %d not marked skipped", i)
		}
		if len(rep.ExternalDeps) != len(ref.Reports[i].ExternalDeps) {
			t.Fatalf("step %q external deps lost on resume: %v vs %v",
				rep.Step, rep.ExternalDeps, ref.Reports[i].ExternalDeps)
		}
	}
}

func TestResumeReexecutesOnCorruptedArtifact(t *testing.T) {
	dir := t.TempDir()
	first := openTestLedger(t, dir)
	counts := map[string]int{}
	ref, err := countedTwoStep(counts).Execute(context.Background(), rawInput(), provenance.NewStore(), WithCheckpoint(first))
	if err != nil {
		t.Fatal(err)
	}
	first.Close()

	// Damage the first step's checkpointed artifact: its digest no longer
	// matches, so fixity must force exactly that step to re-execute. The
	// second step's checkpoint is keyed on the (unchanged) digest of the
	// re-produced output, so it stays skippable.
	re := openTestLedger(t, dir)
	obj := re.ObjectPath(ref.Artifacts["reco-out"].Digest())
	data, err := os.ReadFile(obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(obj, faults.CorruptBytes(data), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := countedTwoStep(counts).Execute(context.Background(), rawInput(), provenance.NewStore(), ResumeFrom(re))
	if err != nil {
		t.Fatal(err)
	}
	if counts["reco"] != 2 {
		t.Fatalf("reco executions = %d, want 2 (re-run after fixity failure)", counts["reco"])
	}
	if counts["slim"] != 1 {
		t.Fatalf("slim executions = %d, want 1 (unaffected step re-ran)", counts["slim"])
	}
	if resumed.Executed != 1 || resumed.Skipped != 1 {
		t.Fatalf("executed=%d skipped=%d, want 1/1", resumed.Executed, resumed.Skipped)
	}
	// The re-execution repaired the object store.
	if string(resumed.Artifacts["reco-out"].Data) != string(ref.Artifacts["reco-out"].Data) {
		t.Fatal("re-executed artifact differs")
	}
	for _, info := range re.Status() {
		if err := re.Verify(info.Key); err != nil {
			t.Fatalf("ledger not repaired: %v", err)
		}
	}
}

func TestResumeReexecutesInterruptedStep(t *testing.T) {
	dir := t.TempDir()
	l := openTestLedger(t, dir)
	killer := faults.NewKiller()
	// Die tearing the journal line of the first step's done record: the
	// step's artifact is durable but its completion is not.
	killer.CrashAtPoint("journal.torn", 3) // 1: start line, 2: artifact line, 3: done line
	l.SetKill(killer.Hit)
	counts := map[string]int{}
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := faults.AsKill(r); !ok {
					panic(r)
				}
			}
		}()
		_, err := countedTwoStep(counts).Execute(context.Background(), rawInput(), provenance.NewStore(), WithCheckpoint(l))
		t.Fatalf("run survived the kill: %v", err)
	}()
	l.Close()
	if counts["reco"] != 1 || counts["slim"] != 0 {
		t.Fatalf("pre-kill executions: %v", counts)
	}

	re := openTestLedger(t, dir)
	resumed, err := countedTwoStep(counts).Execute(context.Background(), rawInput(), provenance.NewStore(), ResumeFrom(re))
	if err != nil {
		t.Fatal(err)
	}
	// The interrupted step re-ran; nothing was skippable.
	if counts["reco"] != 2 || counts["slim"] != 1 {
		t.Fatalf("post-resume executions: %v", counts)
	}
	if resumed.Executed != 2 || resumed.Skipped != 0 {
		t.Fatalf("executed=%d skipped=%d", resumed.Executed, resumed.Skipped)
	}
}

func TestResumeIgnoresCheckpointOnConfigChange(t *testing.T) {
	dir := t.TempDir()
	l := openTestLedger(t, dir)
	counts := map[string]int{}
	if _, err := countedTwoStep(counts).Execute(context.Background(), rawInput(), provenance.NewStore(), WithCheckpoint(l)); err != nil {
		t.Fatal(err)
	}
	l.Close()

	re := openTestLedger(t, dir)
	w := countedTwoStep(counts)
	w.Steps[0].Config["minpt"] = "0.5" // different config digest → different key
	resumed, err := w.Execute(context.Background(), rawInput(), provenance.NewStore(), ResumeFrom(re))
	if err != nil {
		t.Fatal(err)
	}
	if counts["reco"] != 2 {
		t.Fatalf("reconfigured step not re-executed: %v", counts)
	}
	// Its output bytes are unchanged by this config knob, so downstream
	// keys still match and slim stays skipped.
	if counts["slim"] != 1 || resumed.Skipped != 1 {
		t.Fatalf("downstream step of unchanged digest re-ran: %v, skipped=%d", counts, resumed.Skipped)
	}
}

func TestExecuteHonoursContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := twoStep().Execute(ctx, rawInput(), provenance.NewStore()); err == nil {
		t.Fatal("cancelled context executed")
	}
	counts := map[string]int{}
	w := countedTwoStep(counts)
	ctx2, cancel2 := context.WithCancel(context.Background())
	w.Steps[0].Run = func(c *Context) error {
		counts["reco"]++
		cancel2() // cancelled mid-run: the next step must not start
		return passthrough("raw", "reco-out", "RECO")(c)
	}
	if _, err := w.Execute(ctx2, rawInput(), provenance.NewStore()); err == nil {
		t.Fatal("execution continued past cancellation")
	}
	if counts["slim"] != 0 {
		t.Fatal("step started after cancellation")
	}
}
