// Package workflow implements the processing-workflow engine: the machinery
// that chains the paper's canonical steps (Raw→Reconstruction,
// Reconstruction→AOD, skimming/slimming, final analysis) while capturing
// everything preservation needs — the configuration of every step, the
// software versions that ran, the external resources each step touched,
// and a complete provenance record for every artifact produced.
//
// A Workflow is data plus code: the Description (steps, configs, versions,
// input/output wiring) is a serializable preservation artifact, while each
// step's Run function does the work. Executing a preserved description
// against re-registered step implementations reproduces the original
// artifacts — and the provenance store proves it, because record IDs are
// content addresses over configs and digests.
package workflow

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"hash"
	"io"
	"sort"

	"daspos/internal/checkpoint"
	"daspos/internal/provenance"
)

// Artifact is a named, typed blob flowing between steps.
type Artifact struct {
	Name string
	// Tier labels the data tier ("RAW", "AOD", ...) for provenance.
	Tier string
	// Events is the artifact's event count, when meaningful.
	Events int
	Data   []byte

	// digest caches the content address. Artifacts are write-once: they
	// are sealed when published via Output or an ArtifactWriter, so the
	// first computation stays valid.
	digest string
}

// Digest returns the artifact's SHA-256 content address. Streamed
// artifacts carry the digest computed on the fly during writing; for
// others it is computed on first use and cached.
func (a *Artifact) Digest() string {
	if a.digest == "" {
		sum := sha256.Sum256(a.Data)
		a.digest = hex.EncodeToString(sum[:])
	}
	return a.digest
}

// Context is a step's window onto the run: declared inputs, produced
// outputs, and the external-dependency ledger.
type Context struct {
	ctx      context.Context
	step     *Step
	inputs   map[string]*Artifact
	outputs  map[string]*Artifact
	external []string
}

// Ctx returns the run's cancellation context, so streaming steps can bind
// their pipelines to the same lifetime as the workflow execution.
func (c *Context) Ctx() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// Input returns a declared input artifact.
func (c *Context) Input(name string) (*Artifact, error) {
	if !contains(c.step.Inputs, name) {
		return nil, fmt.Errorf("workflow: step %q did not declare input %q", c.step.Name, name)
	}
	a, ok := c.inputs[name]
	if !ok {
		return nil, fmt.Errorf("workflow: input %q not available to step %q", name, c.step.Name)
	}
	return a, nil
}

// InputReader returns a declared input artifact as a byte stream, the
// source end of a streaming step.
func (c *Context) InputReader(name string) (io.Reader, error) {
	a, err := c.Input(name)
	if err != nil {
		return nil, err
	}
	return bytes.NewReader(a.Data), nil
}

// Output publishes a declared output artifact.
func (c *Context) Output(name, tier string, events int, data []byte) error {
	if !contains(c.step.Outputs, name) {
		return fmt.Errorf("workflow: step %q did not declare output %q", c.step.Name, name)
	}
	if _, dup := c.outputs[name]; dup {
		return fmt.Errorf("workflow: step %q produced output %q twice", c.step.Name, name)
	}
	c.outputs[name] = &Artifact{Name: name, Tier: tier, Events: events, Data: data}
	return nil
}

// ArtifactWriter is the sink end of a streaming step: bytes written to it
// are buffered for the artifact pool and hashed on the fly, so the
// provenance digest is ready the moment the stream closes — no second
// pass over the data. Obtain one with Context.StreamOutput and seal it
// with Commit.
type ArtifactWriter struct {
	ctx    *Context
	name   string
	tier   string
	buf    bytes.Buffer
	hash   hash.Hash
	tee    io.Writer // MultiWriter(hash, buf): one pass feeds both
	sealed bool
}

// Write appends to the artifact in a single pass: the fan-out writer
// feeds the running sha256 and the buffered payload from one traversal
// of p, so publishing never re-reads the artifact to digest it.
func (w *ArtifactWriter) Write(p []byte) (int, error) {
	if w.sealed {
		return 0, fmt.Errorf("workflow: write to committed output %q", w.name)
	}
	return w.tee.Write(p)
}

// Commit publishes the artifact with the given event count. The digest is
// the one accumulated during writing.
func (w *ArtifactWriter) Commit(events int) error {
	if w.sealed {
		return fmt.Errorf("workflow: output %q committed twice", w.name)
	}
	w.sealed = true
	if _, dup := w.ctx.outputs[w.name]; dup {
		return fmt.Errorf("workflow: step %q produced output %q twice", w.ctx.step.Name, w.name)
	}
	w.ctx.outputs[w.name] = &Artifact{
		Name: w.name, Tier: w.tier, Events: events,
		Data:   w.buf.Bytes(),
		digest: hex.EncodeToString(w.hash.Sum(nil)),
	}
	return nil
}

// StreamOutput opens a declared output for streaming production. The
// returned writer hashes while it buffers; call Commit to publish.
func (c *Context) StreamOutput(name, tier string) (*ArtifactWriter, error) {
	if !contains(c.step.Outputs, name) {
		return nil, fmt.Errorf("workflow: step %q did not declare output %q", c.step.Name, name)
	}
	if _, dup := c.outputs[name]; dup {
		return nil, fmt.Errorf("workflow: step %q produced output %q twice", c.step.Name, name)
	}
	w := &ArtifactWriter{ctx: c, name: name, tier: tier, hash: sha256.New()}
	w.tee = io.MultiWriter(w.hash, &w.buf)
	return w, nil
}

// External records that the step resolved an external resource (a
// conditions folder, a catalogue, a database). The engine aggregates these
// into the per-step dependency census of experiment W2.
func (c *Context) External(dep string) {
	c.external = append(c.external, dep)
}

// Config returns the step's captured configuration value.
func (c *Context) Config(key string) string { return c.step.Config[key] }

// StepFunc is the executable body of a step.
type StepFunc func(ctx *Context) error

// Step is one node of the workflow.
type Step struct {
	// Name uniquely identifies the step within the workflow.
	Name string `json:"name"`
	// Software and Version pin the release that implements the step.
	Software string `json:"software"`
	Version  string `json:"version"`
	// Config is the step's full captured configuration.
	Config map[string]string `json:"config,omitempty"`
	// Inputs and Outputs wire the step into the artifact graph.
	Inputs  []string `json:"inputs,omitempty"`
	Outputs []string `json:"outputs"`
	// Run executes the step. It is nil in a deserialized description; the
	// runner re-binds implementations by step name.
	Run StepFunc `json:"-"`
}

// ConfigDigest returns the SHA-256 over the step's sorted configuration,
// the value provenance records as the step's configuration identity.
func (s *Step) ConfigDigest() string {
	keys := make([]string, 0, len(s.Config))
	for k := range s.Config {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%s\n", k, s.Config[k])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Workflow is an ordered chain of steps.
type Workflow struct {
	Name string `json:"name"`
	// ConditionsTag pins the calibration version for the whole run.
	ConditionsTag string `json:"conditions_tag,omitempty"`
	// PrimaryInputs are artifact names supplied from outside the workflow.
	PrimaryInputs []string `json:"primary_inputs,omitempty"`
	Steps         []Step   `json:"steps"`
}

// Validate checks the workflow is a well-formed chain: unique step and
// output names, every input available (a primary input or an earlier
// step's output), and every step runnable.
func (w *Workflow) Validate() error {
	if w.Name == "" {
		return fmt.Errorf("workflow: empty name")
	}
	// producer maps each available artifact to where it comes from, so
	// conflict errors can name the actual culprit instead of just the
	// artifact.
	producer := make(map[string]string)
	for _, in := range w.PrimaryInputs {
		producer[in] = "primary input"
	}
	stepNames := make(map[string]bool)
	for i := range w.Steps {
		s := &w.Steps[i]
		if s.Name == "" {
			return fmt.Errorf("workflow %q: step %d unnamed", w.Name, i)
		}
		if stepNames[s.Name] {
			return fmt.Errorf("workflow %q: duplicate step %q", w.Name, s.Name)
		}
		stepNames[s.Name] = true
		if len(s.Outputs) == 0 {
			return fmt.Errorf("workflow %q: step %q has no outputs", w.Name, s.Name)
		}
		for _, in := range s.Inputs {
			if _, ok := producer[in]; !ok {
				return fmt.Errorf("workflow %q: step %q input %q not produced by any earlier step or primary input", w.Name, s.Name, in)
			}
		}
		for _, out := range s.Outputs {
			if prev, dup := producer[out]; dup {
				return fmt.Errorf("workflow %q: output %q declared by step %q is already produced by %s", w.Name, out, s.Name, describeProducer(prev))
			}
			producer[out] = s.Name
		}
	}
	return nil
}

func describeProducer(p string) string {
	if p == "primary input" {
		return p
	}
	return fmt.Sprintf("step %q", p)
}

// StepReport summarizes one executed step.
type StepReport struct {
	Step string
	// Skipped marks a step whose checkpointed outputs passed digest
	// verification on resume, so its Run never executed.
	Skipped bool
	// ExternalDeps are the distinct external resources resolved, sorted.
	ExternalDeps []string
	// OutputBytes and OutputEvents total the step's products.
	OutputBytes  int64
	OutputEvents int
}

// Result is the outcome of one workflow execution.
type Result struct {
	// Artifacts holds every artifact produced (not the primary inputs).
	Artifacts map[string]*Artifact
	// RecordIDs maps artifact names to their provenance records.
	RecordIDs map[string]string
	// Reports are per-step summaries in execution order.
	Reports []StepReport
	// Executed and Skipped count steps that ran versus steps restored
	// from a verified checkpoint.
	Executed int
	Skipped  int
}

// ExecOption configures one workflow execution.
type ExecOption func(*execConfig)

type execConfig struct {
	ledger *checkpoint.Ledger
	resume bool
}

// WithCheckpoint journals every step's lifecycle into the ledger as the
// run progresses: started, each artifact durably committed, done. A run
// killed at any instruction leaves the ledger recoverable for ResumeFrom.
func WithCheckpoint(l *checkpoint.Ledger) ExecOption {
	return func(c *execConfig) { c.ledger = l }
}

// ResumeFrom continues a run from a recovered ledger: a step is skipped
// only when the ledger records it done under the same key (step name,
// config digest, input digests), its recorded outputs exactly match the
// declared ones, and every artifact passes fixity (re-hash equals the
// recorded digest). Anything less — interrupted step, torn journal tail,
// corrupted object — re-executes the step, and the fresh execution is
// checkpointed again.
func ResumeFrom(l *checkpoint.Ledger) ExecOption {
	return func(c *execConfig) { c.ledger = l; c.resume = true }
}

// Execute runs the workflow over the given primary inputs, recording
// provenance for every artifact (including roots for the primary inputs)
// into prov. Steps missing a Run implementation fail the run. The context
// bounds the whole run: cancellation is checked between steps and exposed
// to each step via Context.Ctx.
func (w *Workflow) Execute(ctx context.Context, inputs map[string]*Artifact, prov *provenance.Store, opts ...ExecOption) (*Result, error) {
	var cfg execConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	pool := make(map[string]*Artifact, len(inputs))
	recordIDs := make(map[string]string)
	for _, name := range w.PrimaryInputs {
		a, ok := inputs[name]
		if !ok {
			return nil, fmt.Errorf("workflow %q: primary input %q not supplied", w.Name, name)
		}
		pool[name] = a
		id, err := prov.Add(provenance.Record{
			Output: provenance.Artifact{
				Name: a.Name, Digest: a.Digest(), Tier: a.Tier,
				Events: a.Events, Bytes: int64(len(a.Data)),
			},
			Producer:      provenance.Producer{Step: "primary-input", Software: "daspos-workflow", Version: "1"},
			ConditionsTag: w.ConditionsTag,
		})
		if err != nil {
			return nil, fmt.Errorf("workflow %q: recording primary input %q: %w", w.Name, name, err)
		}
		recordIDs[name] = id
	}

	res := &Result{Artifacts: make(map[string]*Artifact), RecordIDs: recordIDs}
	for i := range w.Steps {
		s := &w.Steps[i]
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("workflow %q: %w", w.Name, err)
		}

		// The checkpoint key binds the step to its exact configuration and
		// input bytes; any drift invalidates the recorded lifecycle.
		var key string
		if cfg.ledger != nil {
			inDigests := make([]string, 0, len(s.Inputs))
			for _, in := range s.Inputs {
				inDigests = append(inDigests, pool[in].Digest())
			}
			key = checkpoint.StepKey(s.Name, s.ConfigDigest(), inDigests)
		}

		var outputs map[string]*Artifact
		var deps []string
		skipped := false
		if cfg.resume {
			if restored, ext, ok := restoreStep(cfg.ledger, s, key); ok {
				outputs, deps, skipped = restored, ext, true
			}
		}
		if !skipped {
			if s.Run == nil {
				return nil, fmt.Errorf("workflow %q: step %q has no implementation bound", w.Name, s.Name)
			}
			if cfg.ledger != nil {
				if err := cfg.ledger.Start(s.Name, key); err != nil {
					return nil, fmt.Errorf("workflow %q: step %q: %w", w.Name, s.Name, err)
				}
			}
			sctx := &Context{ctx: ctx, step: s, inputs: pool, outputs: make(map[string]*Artifact)}
			if err := s.Run(sctx); err != nil {
				return nil, fmt.Errorf("workflow %q: step %q: %w", w.Name, s.Name, err)
			}
			outputs = sctx.outputs
			deps = dedupeSorted(sctx.external)
			if cfg.ledger != nil {
				for _, out := range s.Outputs {
					a, ok := outputs[out]
					if !ok {
						return nil, fmt.Errorf("workflow %q: step %q did not produce declared output %q", w.Name, s.Name, out)
					}
					rec := checkpoint.ArtifactRecord{
						Name: a.Name, Tier: a.Tier, Events: a.Events, Digest: a.Digest(),
					}
					if _, err := cfg.ledger.Commit(s.Name, key, rec, a.Data); err != nil {
						return nil, fmt.Errorf("workflow %q: step %q: %w", w.Name, s.Name, err)
					}
				}
				if err := cfg.ledger.Done(s.Name, key, deps); err != nil {
					return nil, fmt.Errorf("workflow %q: step %q: %w", w.Name, s.Name, err)
				}
			}
		}

		var parents []string
		for _, in := range s.Inputs {
			parents = append(parents, recordIDs[in])
		}
		rep := StepReport{Step: s.Name, Skipped: skipped, ExternalDeps: deps}
		for _, out := range s.Outputs {
			a, ok := outputs[out]
			if !ok {
				return nil, fmt.Errorf("workflow %q: step %q did not produce declared output %q", w.Name, s.Name, out)
			}
			pool[out] = a
			res.Artifacts[out] = a
			id, err := prov.Add(provenance.Record{
				Output: provenance.Artifact{
					Name: a.Name, Digest: a.Digest(), Tier: a.Tier,
					Events: a.Events, Bytes: int64(len(a.Data)),
				},
				Producer: provenance.Producer{
					Step: s.Name, Software: s.Software, Version: s.Version,
					ConfigDigest: s.ConfigDigest(),
				},
				Parents:       parents,
				ConditionsTag: w.ConditionsTag,
				ExternalDeps:  deps,
			})
			if err != nil {
				return nil, fmt.Errorf("workflow %q: recording output %q: %w", w.Name, out, err)
			}
			recordIDs[out] = id
			rep.OutputBytes += int64(len(a.Data))
			rep.OutputEvents += a.Events
		}
		if skipped {
			res.Skipped++
		} else {
			res.Executed++
		}
		res.Reports = append(res.Reports, rep)
	}
	return res, nil
}

// restoreStep tries to satisfy a step from the ledger. It succeeds only
// when the step is recorded done under the key, the recorded artifacts
// are exactly the declared outputs, and every payload passes fixity; any
// failure reports false and the caller re-executes.
func restoreStep(l *checkpoint.Ledger, s *Step, key string) (map[string]*Artifact, []string, bool) {
	info, ok := l.Lookup(key)
	if !ok || info.State != checkpoint.StepDone {
		return nil, nil, false
	}
	byName := make(map[string]checkpoint.ArtifactRecord, len(info.Artifacts))
	for _, rec := range info.Artifacts {
		if _, dup := byName[rec.Name]; dup {
			return nil, nil, false
		}
		byName[rec.Name] = rec
	}
	if len(byName) != len(s.Outputs) {
		return nil, nil, false
	}
	outputs := make(map[string]*Artifact, len(s.Outputs))
	for _, out := range s.Outputs {
		rec, ok := byName[out]
		if !ok {
			return nil, nil, false
		}
		data, err := l.Load(rec)
		if err != nil {
			return nil, nil, false
		}
		outputs[out] = &Artifact{
			Name: rec.Name, Tier: rec.Tier, Events: rec.Events, Data: data,
			digest: rec.Digest,
		}
	}
	return outputs, info.External, true
}

// Description returns the workflow's serializable preservation record:
// everything except the step implementations.
func (w *Workflow) Description() ([]byte, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(w, "", "  ")
}

// FromDescription parses a preserved workflow description. Step Run
// implementations must be re-bound (BindImpl) before execution.
func FromDescription(data []byte) (*Workflow, error) {
	var w Workflow
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("workflow: parsing description: %w", err)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &w, nil
}

// BindImpl attaches an implementation to the named step.
func (w *Workflow) BindImpl(step string, fn StepFunc) error {
	for i := range w.Steps {
		if w.Steps[i].Name == step {
			w.Steps[i].Run = fn
			return nil
		}
	}
	return fmt.Errorf("workflow %q: no step %q to bind", w.Name, step)
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func dedupeSorted(xs []string) []string {
	if len(xs) == 0 {
		return nil
	}
	seen := make(map[string]bool, len(xs))
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	sort.Strings(out)
	return out
}
