// Package stats implements the statistical machinery the preserved-analysis
// frameworks need: χ² and Kolmogorov–Smirnov compatibility tests for
// validating re-run analyses against archived reference data, Poisson
// counting limits (CLs-style) for the RECAST and Les Houches
// reinterpretation use cases, and basic descriptive statistics.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrMismatch is returned when two samples that must be compared bin-by-bin
// have different lengths.
var ErrMismatch = errors.New("stats: length mismatch")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance, or 0 for fewer than two
// points.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// WeightedMean returns the inverse-variance weighted mean of values with the
// given (absolute) uncertainties and its combined uncertainty. Entries with
// non-positive uncertainty are ignored. It returns (0, 0) if nothing usable
// remains.
func WeightedMean(values, sigmas []float64) (mean, sigma float64) {
	if len(values) != len(sigmas) {
		return 0, 0
	}
	var sw, swx float64
	for i, v := range values {
		s := sigmas[i]
		if s <= 0 {
			continue
		}
		w := 1 / (s * s)
		sw += w
		swx += w * v
	}
	if sw == 0 {
		return 0, 0
	}
	return swx / sw, 1 / math.Sqrt(sw)
}

// Chi2Result carries the outcome of a χ² compatibility test.
type Chi2Result struct {
	Chi2 float64
	NDF  int
	// PValue is the probability of a χ² at least this large under the
	// null hypothesis that the two inputs agree.
	PValue float64
}

// Reduced returns χ²/ndf, or +Inf for zero degrees of freedom.
func (r Chi2Result) Reduced() float64 {
	if r.NDF == 0 {
		return math.Inf(1)
	}
	return r.Chi2 / float64(r.NDF)
}

// Compatible reports whether the p-value exceeds the significance level
// alpha (e.g. 0.01): the standard "re-run reproduces the archived result"
// criterion used by the validation harnesses.
func (r Chi2Result) Compatible(alpha float64) bool { return r.PValue >= alpha }

// Chi2Counts compares two histograms of event counts bin-by-bin, using
// Poisson variances (n1+n2 per bin). Bins empty in both inputs are skipped.
func Chi2Counts(n1, n2 []float64) (Chi2Result, error) {
	if len(n1) != len(n2) {
		return Chi2Result{}, ErrMismatch
	}
	var chi2 float64
	ndf := 0
	for i := range n1 {
		v := n1[i] + n2[i]
		if v <= 0 {
			continue
		}
		d := n1[i] - n2[i]
		chi2 += d * d / v
		ndf++
	}
	return Chi2Result{Chi2: chi2, NDF: ndf, PValue: ChiSquaredSurvival(chi2, ndf)}, nil
}

// Chi2WithErrors compares two measurements with explicit per-bin
// uncertainties. Bins where the combined uncertainty vanishes are skipped.
func Chi2WithErrors(y1, e1, y2, e2 []float64) (Chi2Result, error) {
	if len(y1) != len(e1) || len(y1) != len(y2) || len(y1) != len(e2) {
		return Chi2Result{}, ErrMismatch
	}
	var chi2 float64
	ndf := 0
	for i := range y1 {
		v := e1[i]*e1[i] + e2[i]*e2[i]
		if v <= 0 {
			continue
		}
		d := y1[i] - y2[i]
		chi2 += d * d / v
		ndf++
	}
	return Chi2Result{Chi2: chi2, NDF: ndf, PValue: ChiSquaredSurvival(chi2, ndf)}, nil
}

// ChiSquaredSurvival returns P(X >= chi2) for a χ² distribution with ndf
// degrees of freedom: the regularized upper incomplete gamma Q(ndf/2,
// chi2/2). ndf <= 0 returns 1.
func ChiSquaredSurvival(chi2 float64, ndf int) float64 {
	if ndf <= 0 || chi2 <= 0 {
		return 1
	}
	return reguGammaQ(float64(ndf)/2, chi2/2)
}

// reguGammaQ computes the regularized upper incomplete gamma function
// Q(a, x) via the series (x < a+1) or continued fraction (x >= a+1),
// following Numerical Recipes.
func reguGammaQ(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - gammaPSeries(a, x)
	default:
		return gammaQContinued(a, x)
	}
}

func gammaPSeries(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinued(a, x float64) float64 {
	const itmax = 500
	const eps = 3e-14
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// KSResult carries the outcome of a two-sample Kolmogorov–Smirnov test.
type KSResult struct {
	// D is the maximum distance between the two empirical CDFs.
	D float64
	// PValue is the asymptotic probability of a distance at least D under
	// the hypothesis that both samples draw from the same distribution.
	PValue float64
}

// KolmogorovSmirnov runs the two-sample KS test. The inputs need not be
// sorted and may have different lengths; empty inputs yield D=0, p=1.
func KolmogorovSmirnov(a, b []float64) KSResult {
	if len(a) == 0 || len(b) == 0 {
		return KSResult{D: 0, PValue: 1}
	}
	as := append([]float64(nil), a...)
	bs := append([]float64(nil), b...)
	sort.Float64s(as)
	sort.Float64s(bs)
	var d float64
	i, j := 0, 0
	na, nb := float64(len(as)), float64(len(bs))
	for i < len(as) && j < len(bs) {
		// Advance through tie blocks on both sides together so equal
		// values never create a spurious CDF gap.
		va, vb := as[i], bs[j]
		if va <= vb {
			for i < len(as) && as[i] == va {
				i++
			}
		}
		if vb <= va {
			for j < len(bs) && bs[j] == vb {
				j++
			}
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	ne := na * nb / (na + nb)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{D: d, PValue: ksProb(lambda)}
}

// ksProb is the Kolmogorov distribution survival function
// Q(λ) = 2 Σ (-1)^{k-1} exp(-2 k² λ²).
func ksProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	sum := 0.0
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12*math.Abs(sum) {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}

// PoissonCI returns the Garwood (exact frequentist) central confidence
// interval for a Poisson mean given n observed events, at the given
// confidence level (e.g. 0.68 or 0.95).
func PoissonCI(n int, cl float64) (lo, hi float64) {
	if n < 0 {
		n = 0
	}
	alpha := 1 - cl
	if n == 0 {
		lo = 0
	} else {
		lo = 0.5 * chi2Quantile(alpha/2, 2*n)
	}
	hi = 0.5 * chi2Quantile(1-alpha/2, 2*(n+1))
	return lo, hi
}

// chi2Quantile inverts the χ² CDF by bisection. Robust rather than fast;
// limit setting is not on the hot path.
func chi2Quantile(p float64, ndf int) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return math.Inf(1)
	}
	lo, hi := 0.0, float64(ndf)+10
	for 1-ChiSquaredSurvival(hi, ndf) < p {
		hi *= 2
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if 1-ChiSquaredSurvival(mid, ndf) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// UpperLimit computes a CLs-style upper limit on the signal yield s, given
// nObs observed events and an expected background b, at the given confidence
// level. It inverts the CLs ratio CL_{s+b}/CL_b by bisection over s. This is
// the limit-setting capability the paper notes RIVET lacks and RECAST-class
// preservation requires.
func UpperLimit(nObs int, background float64, cl float64) float64 {
	if nObs < 0 {
		nObs = 0
	}
	if background < 0 {
		background = 0
	}
	alpha := 1 - cl
	clb := poissonCDF(nObs, background)
	if clb <= 0 {
		clb = 1e-12
	}
	cls := func(s float64) float64 {
		return poissonCDF(nObs, s+background) / clb
	}
	lo, hi := 0.0, float64(nObs)+10*math.Sqrt(background+1)+10
	for cls(hi) > alpha {
		hi *= 2
		if hi > 1e9 {
			return math.Inf(1)
		}
	}
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if cls(mid) > alpha {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ExpectedLimits returns the median and ±1σ band of the CLs upper limit
// under the background-only hypothesis: the "expected limit" a search
// quotes next to the observed one. Pseudo-experiments draw nObs from a
// Poisson of mean b through the supplied deviate function (inject a
// deterministic RNG for reproducibility).
func ExpectedLimits(background float64, cl float64, trials int, poissonDeviate func(mean float64) int) (lo, median, hi float64) {
	if trials < 1 {
		trials = 1
	}
	limits := make([]float64, trials)
	for i := range limits {
		limits[i] = UpperLimit(poissonDeviate(background), background, cl)
	}
	sort.Float64s(limits)
	quantile := func(q float64) float64 {
		idx := int(q * float64(trials-1))
		return limits[idx]
	}
	return quantile(0.16), quantile(0.5), quantile(0.84)
}

// poissonCDF returns P(X <= n) for mean mu, computed in log space for
// stability at large mu.
func poissonCDF(n int, mu float64) float64 {
	if mu <= 0 {
		return 1
	}
	sum := 0.0
	logTerm := -mu // log of P(0)
	for k := 0; k <= n; k++ {
		if k > 0 {
			logTerm += math.Log(mu / float64(k))
		}
		sum += math.Exp(logTerm)
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// Significance returns the approximate Gaussian significance of observing
// nObs events over an expected background b with uncertainty sigmaB, using
// the simple s/sqrt(b + sigmaB²) estimator on the excess.
func Significance(nObs int, b, sigmaB float64) float64 {
	den := math.Sqrt(b + sigmaB*sigmaB)
	if den == 0 {
		if float64(nObs) > 0 {
			return math.Inf(1)
		}
		return 0
	}
	return (float64(nObs) - b) / den
}
