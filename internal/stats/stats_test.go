package stats

import (
	"math"
	"testing"
	"testing/quick"

	"daspos/internal/xrand"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean %v", got)
	}
	if got := Variance(xs); math.Abs(got-32.0/7) > 1e-12 {
		t.Fatalf("variance %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate inputs must return 0")
	}
}

func TestWeightedMean(t *testing.T) {
	// Equal uncertainties reduce to the plain mean.
	m, s := WeightedMean([]float64{1, 3}, []float64{2, 2})
	if math.Abs(m-2) > 1e-12 {
		t.Fatalf("weighted mean %v", m)
	}
	if math.Abs(s-2/math.Sqrt2) > 1e-12 {
		t.Fatalf("weighted sigma %v", s)
	}
	// A zero-uncertainty entry is skipped, not trusted infinitely.
	m, _ = WeightedMean([]float64{1, 100}, []float64{1, 0})
	if m != 1 {
		t.Fatalf("zero-sigma entry not skipped: %v", m)
	}
	if m, s = WeightedMean([]float64{1}, []float64{1, 2}); m != 0 || s != 0 {
		t.Fatal("length mismatch must return zeros")
	}
}

func TestChiSquaredSurvivalAnchors(t *testing.T) {
	// Known values: P(chi2 >= ndf) ~ 0.5 at the median-ish region, and
	// textbook anchors.
	cases := []struct {
		chi2 float64
		ndf  int
		want float64
		tol  float64
	}{
		{0, 5, 1, 1e-12},
		{1, 1, 0.3173, 1e-3},
		{4, 1, 0.0455, 1e-3},
		{9, 1, 0.0027, 1e-4},
		{2.366, 2, 0.3063, 1e-3},
		{18.31, 10, 0.05, 1e-3},
	}
	for _, c := range cases {
		got := ChiSquaredSurvival(c.chi2, c.ndf)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("Q(%v|%d) = %v, want %v", c.chi2, c.ndf, got, c.want)
		}
	}
}

func TestChiSquaredSurvivalMonotone(t *testing.T) {
	if err := quick.Check(func(a, b float64) bool {
		x := math.Abs(math.Mod(a, 50))
		y := math.Abs(math.Mod(b, 50))
		if x > y {
			x, y = y, x
		}
		return ChiSquaredSurvival(x, 7) >= ChiSquaredSurvival(y, 7)-1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChi2CountsIdentical(t *testing.T) {
	n := []float64{5, 10, 20, 8}
	r, err := Chi2Counts(n, n)
	if err != nil {
		t.Fatal(err)
	}
	if r.Chi2 != 0 || r.NDF != 4 || r.PValue != 1 {
		t.Fatalf("identical counts: %+v", r)
	}
	if !r.Compatible(0.05) {
		t.Fatal("identical histograms must be compatible")
	}
}

func TestChi2CountsMismatch(t *testing.T) {
	if _, err := Chi2Counts([]float64{1}, []float64{1, 2}); err != ErrMismatch {
		t.Fatalf("expected ErrMismatch, got %v", err)
	}
}

func TestChi2CountsSkipsEmpty(t *testing.T) {
	r, err := Chi2Counts([]float64{0, 5}, []float64{0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if r.NDF != 1 {
		t.Fatalf("empty bin not skipped: ndf=%d", r.NDF)
	}
}

func TestChi2WithErrors(t *testing.T) {
	y1 := []float64{10, 20}
	e1 := []float64{1, 2}
	y2 := []float64{11, 18}
	e2 := []float64{1, 1}
	r, err := Chi2WithErrors(y1, e1, y2, e2)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0/2 + 4.0/5
	if math.Abs(r.Chi2-want) > 1e-12 {
		t.Fatalf("chi2 %v want %v", r.Chi2, want)
	}
	if r.NDF != 2 {
		t.Fatalf("ndf %d", r.NDF)
	}
}

func TestReducedChi2(t *testing.T) {
	r := Chi2Result{Chi2: 10, NDF: 5}
	if r.Reduced() != 2 {
		t.Fatalf("reduced %v", r.Reduced())
	}
	if !math.IsInf(Chi2Result{Chi2: 1}.Reduced(), 1) {
		t.Fatal("ndf=0 must give +Inf")
	}
}

func TestKSIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	r := KolmogorovSmirnov(a, a)
	if r.D != 0 {
		t.Fatalf("identical D=%v", r.D)
	}
	if r.PValue < 0.99 {
		t.Fatalf("identical p=%v", r.PValue)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := make([]float64, 200)
	b := make([]float64, 200)
	for i := range a {
		a[i] = float64(i)
		b[i] = float64(i) + 1000
	}
	r := KolmogorovSmirnov(a, b)
	if math.Abs(r.D-1) > 1e-12 {
		t.Fatalf("disjoint D=%v", r.D)
	}
	if r.PValue > 1e-6 {
		t.Fatalf("disjoint p=%v", r.PValue)
	}
}

func TestKSSameDistribution(t *testing.T) {
	r := xrand.New(21)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = r.Gauss(0, 1)
		b[i] = r.Gauss(0, 1)
	}
	res := KolmogorovSmirnov(a, b)
	if res.PValue < 0.001 {
		t.Fatalf("same-distribution samples rejected: p=%v D=%v", res.PValue, res.D)
	}
}

func TestKSShiftedDistribution(t *testing.T) {
	r := xrand.New(22)
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = r.Gauss(0, 1)
		b[i] = r.Gauss(0.5, 1)
	}
	res := KolmogorovSmirnov(a, b)
	if res.PValue > 1e-4 {
		t.Fatalf("shifted distribution not rejected: p=%v", res.PValue)
	}
}

func TestKSEmpty(t *testing.T) {
	r := KolmogorovSmirnov(nil, []float64{1})
	if r.D != 0 || r.PValue != 1 {
		t.Fatalf("empty input: %+v", r)
	}
}

func TestPoissonCIZero(t *testing.T) {
	lo, hi := PoissonCI(0, 0.95)
	if lo != 0 {
		t.Fatalf("lo %v", lo)
	}
	// Exact upper bound for n=0 at 95% central: -ln(0.025) ≈ 3.689.
	if math.Abs(hi-3.689) > 0.01 {
		t.Fatalf("hi %v want ~3.689", hi)
	}
}

func TestPoissonCICoversN(t *testing.T) {
	for _, n := range []int{1, 5, 20, 100} {
		lo, hi := PoissonCI(n, 0.68)
		if !(lo < float64(n) && float64(n) < hi) {
			t.Errorf("CI [%v,%v] does not cover n=%d", lo, hi, n)
		}
		if hi-lo < math.Sqrt(float64(n)) {
			t.Errorf("CI [%v,%v] narrower than sqrt(n) at n=%d", lo, hi, n)
		}
	}
}

func TestUpperLimitZeroObsZeroBkg(t *testing.T) {
	// The canonical counting-experiment anchor: 0 observed, 0 background,
	// 95% CL upper limit ≈ 3.0 events.
	ul := UpperLimit(0, 0, 0.95)
	if math.Abs(ul-3.0) > 0.05 {
		t.Fatalf("UL(0,0)=%v want ~3.0", ul)
	}
}

func TestUpperLimitGrowsWithObservation(t *testing.T) {
	prev := 0.0
	for _, n := range []int{0, 1, 3, 10} {
		ul := UpperLimit(n, 1, 0.95)
		if ul <= prev {
			t.Fatalf("UL not increasing: n=%d ul=%v prev=%v", n, ul, prev)
		}
		prev = ul
	}
}

func TestUpperLimitCLsNotBelowCLsb(t *testing.T) {
	// With background present and a deficit, CLs protects against
	// excluding signal the experiment is not sensitive to: UL with b=5
	// must exceed the b=0 UL for the same n=0.
	withB := UpperLimit(0, 5, 0.95)
	noB := UpperLimit(0, 0, 0.95)
	if withB < noB-1e-9 {
		t.Fatalf("CLs protection violated: UL(b=5)=%v < UL(b=0)=%v", withB, noB)
	}
}

func TestSignificance(t *testing.T) {
	if s := Significance(25, 16, 0); math.Abs(s-9.0/4) > 1e-12 {
		t.Fatalf("significance %v", s)
	}
	if s := Significance(10, 10, 0); s != 0 {
		t.Fatalf("no-excess significance %v", s)
	}
	if !math.IsInf(Significance(1, 0, 0), 1) {
		t.Fatal("zero-background significance must be +Inf")
	}
}

func BenchmarkChi2Counts(b *testing.B) {
	n1 := make([]float64, 100)
	n2 := make([]float64, 100)
	for i := range n1 {
		n1[i] = float64(i + 1)
		n2[i] = float64(i + 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = Chi2Counts(n1, n2)
	}
}

func BenchmarkUpperLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = UpperLimit(5, 3.2, 0.95)
	}
}

func TestExpectedLimits(t *testing.T) {
	r := xrand.New(99)
	lo, median, hi := ExpectedLimits(5.0, 0.95, 500, r.Poisson)
	if !(lo <= median && median <= hi) {
		t.Fatalf("band ordering: %v %v %v", lo, median, hi)
	}
	if lo == hi {
		t.Fatal("degenerate band")
	}
	// The median expected limit for b=5 must bracket the observed limit
	// at n=5 (the Asimov-like point).
	asimov := UpperLimit(5, 5, 0.95)
	if median < 0.5*asimov || median > 2*asimov {
		t.Fatalf("median %v far from asimov %v", median, asimov)
	}
	// Degenerate trial count must not panic.
	_, m1, _ := ExpectedLimits(2, 0.95, 0, r.Poisson)
	if m1 <= 0 {
		t.Fatalf("single-trial median %v", m1)
	}
}
