package interview

// StandardProfiles returns four synthetic experiment interviews modelled
// on the workshop's findings: nearly identical processing workflows, data
// policies approved for CMS and LHCb but still under discussion for ALICE
// and ATLAS in 2014, and ALICE's shippable text-file constants versus the
// others' database access. They drive the Appendix A regeneration
// benchmark and the preservation-audit example.
func StandardProfiles() []*Interview {
	recoSW := func(condAccess string) []SoftwareDep {
		return []SoftwareDep{
			{Name: "experiment-reco", Version: "prod-2013", External: false},
			{Name: condAccess, External: true, Provides: "calibration and alignment constants"},
			{Name: "grid-middleware", External: true, Provides: "data placement and job brokering"},
		}
	}
	analysisSW := []SoftwareDep{
		{Name: "histlib", Version: "5.34", External: true, Provides: "histogramming and fitting"},
		{Name: "group-analysis-code", External: false},
	}
	stages := func(condAccess string, aodFiles int) []LifecycleStage {
		return []LifecycleStage{
			{Name: "RAW collection", Files: 1000000, AvgFileSizeBytes: 2 << 30,
				Formats: []string{"raw-banks"}, Software: recoSW(condAccess)},
			{Name: "Reconstruction (RECO)", Files: 1000000, AvgFileSizeBytes: 1 << 30,
				Formats: []string{"edm-reco"}, Software: recoSW(condAccess)},
			{Name: "Analysis (AOD)", Files: aodFiles, AvgFileSizeBytes: 300 << 20,
				Formats: []string{"edm-aod"}, Software: analysisSW},
			{Name: "Group skims", Files: aodFiles / 5, AvgFileSizeBytes: 50 << 20,
				Formats: []string{"edm-derived"}, Software: analysisSW},
			{Name: "Publication", Files: 500, AvgFileSizeBytes: 1 << 20,
				Formats: []string{"tables", "hepdata-json"}},
		}
	}
	shareAll := []SharingRow{
		{Stage: "RAW", WithWhom: "Project collaborators", When: "always", Conditions: "collaboration membership"},
		{Stage: "AOD", WithWhom: "Others in the field", When: "after embargo", Conditions: "registration"},
		{Stage: "Publication", WithWhom: "Whole world", When: "always", Conditions: "attribution"},
	}
	shareClosed := []SharingRow{
		{Stage: "RAW", WithWhom: "Project collaborators", When: "always", Conditions: "collaboration membership"},
		{Stage: "Publication", WithWhom: "Whole world", When: "always", Conditions: "attribution"},
	}

	return []*Interview{
		{
			Name: "Alice", Dept: "Heavy-ion physics",
			DataDescription: "Pb-Pb and pp collision data; conditions shipped as text files with the data",
			Stages:          stages("text-constants-files", 400000),
			BackupCopies:    true, SecurityMeasures: true, DisasterRecoveryPlan: false, DMPRequired: true,
			StandardFormats: true, VersionedSoftware: true,
			MostImportantData: "reconstructed heavy-ion events and the calibration snapshots",
			Ratings: map[Area]Rating{
				AreaDataManagement:  3,
				AreaDataDescription: 3,
				AreaPreservation:    2, // policy under discussion (2014)
				AreaSharingAccess:   2,
			},
			SharingGrid: shareClosed,
		},
		{
			Name: "Atlas", Dept: "Energy frontier",
			DataDescription: "pp collision data, full EDM through xAOD",
			Stages:          stages("conditions-db", 800000),
			BackupCopies:    true, SecurityMeasures: true, DisasterRecoveryPlan: true, DMPRequired: true,
			StandardFormats: true, VersionedSoftware: true,
			MostImportantData: "xAOD and the per-analysis derivations",
			Ratings: map[Area]Rating{
				AreaDataManagement:  4,
				AreaDataDescription: 3,
				AreaPreservation:    3, // policy under discussion (2014)
				AreaSharingAccess:   3,
			},
			SharingGrid: shareClosed,
		},
		{
			Name: "CMS", Dept: "Energy frontier",
			DataDescription: "pp collision data; public release policy approved 2013",
			Stages:          stages("conditions-db", 900000),
			BackupCopies:    true, SecurityMeasures: true, DisasterRecoveryPlan: true, DMPRequired: true,
			StandardFormats: true, VersionedSoftware: true,
			MostImportantData: "AOD for public release plus the common group formats",
			Ratings: map[Area]Rating{
				AreaDataManagement:  4,
				AreaDataDescription: 4,
				AreaPreservation:    4, // approved public-release policy
				AreaSharingAccess:   4,
			},
			SharingGrid: shareAll,
		},
		{
			Name: "LHCb", Dept: "Flavour physics",
			DataDescription: "forward pp collision data; public release policy approved 2013",
			Stages:          stages("conditions-db", 300000),
			BackupCopies:    true, SecurityMeasures: true, DisasterRecoveryPlan: true, DMPRequired: true,
			StandardFormats: true, VersionedSoftware: true,
			MostImportantData: "stripped analysis streams and the trigger configuration",
			Ratings: map[Area]Rating{
				AreaDataManagement:  4,
				AreaDataDescription: 3,
				AreaPreservation:    4, // approved public-release policy
				AreaSharingAccess:   3,
			},
			SharingGrid: shareAll,
		},
	}
}
