// Package interview implements Appendix A of the paper: the Data/Software
// Interview Template (derived from the Data Curation Profiles toolkit)
// that the workshop distributed to the experiments, together with its four
// maturity-rating scales and the data-sharing grid. The template is a
// typed, validating model, so an experiment's answers are a machine-
// readable preservation-readiness assessment rather than a transient wiki
// page — and the Appendix A tables regenerate verbatim from the embedded
// scale definitions.
package interview

import (
	"encoding/json"
	"fmt"
	"sort"

	"daspos/internal/texttable"
)

// Area is one of the four maturity-rating scales of Appendix A.
type Area int

// Maturity areas, in the template's order.
const (
	AreaDataManagement Area = iota + 1
	AreaDataDescription
	AreaPreservation
	AreaSharingAccess
)

// String returns the area's template heading.
func (a Area) String() string {
	switch a {
	case AreaDataManagement:
		return "Data Management and Disaster Recovery"
	case AreaDataDescription:
		return "Data Description"
	case AreaPreservation:
		return "Preservation"
	case AreaSharingAccess:
		return "Sharing/Access"
	default:
		return fmt.Sprintf("area(%d)", int(a))
	}
}

// Areas returns the four scales in template order.
func Areas() []Area {
	return []Area{AreaDataManagement, AreaDataDescription, AreaPreservation, AreaSharingAccess}
}

// Rating is a 1–5 maturity level.
type Rating int

// Valid reports whether the rating is on the 1–5 scale.
func (r Rating) Valid() bool { return r >= 1 && r <= 5 }

// scaleDescriptions holds the Appendix A rating-cell texts, one per level.
var scaleDescriptions = map[Area][5]string{
	AreaDataManagement: {
		"Data management activities focus on the day-to-day",
		"Some awareness of potential risks but few take preventative action",
		"Policies and plans are in place for disaster recovery and long-term sustainability",
		"Disaster recovery plans are accompanied by procedures for implementation; data loss, a break in the research process, or loss of access to data is unlikely",
		"Disaster recovery plans are routinely tested and shown to be effective; succession plans (e.g. an alternative data centre) are in place to safeguard data",
	},
	AreaDataDescription: {
		"Metadata is an unfamiliar concept; low engagement with the need to document data",
		"Metadata and data description practices vary by individual",
		"Metadata is well understood and guidance is provided to support the use of standards",
		"Data are well labeled, annotated and systematically organized",
		"Data can be understood by other researchers",
	},
	AreaPreservation: {
		"Low awareness of requirements to preserve data",
		"Data may remain available but mostly due to chance, not active preservation practice",
		"Preservation is understood and well-planned",
		"High levels of awareness and engagement e.g. data are selected for preservation and repositories are in place",
		"Data are efficiently and effectively preserved. The infrastructure in place is understood, functions well and is widely used",
	},
	AreaSharingAccess: {
		"Individuals store data and manage access requests; low awareness of data sharing requirements",
		"Guidance and services are provided for data access but are poorly used; ad hoc data sharing occurs (e.g. data provided on request)",
		"A mix of systems is in place to meet different access needs; data sharing is supported - training is provided and the necessary infrastructure is in place",
		"Access is systematically controlled through user rights and strong passwords; data are shared as appropriate (i.e. where legally and ethically possible)",
		"Systems meet all user needs and security is maintained; there is a culture of openness. Data sharing systems are recognized and copied by others",
	},
}

// ScaleDescription returns the Appendix A text for a rating level in an
// area.
func ScaleDescription(a Area, r Rating) (string, error) {
	if !r.Valid() {
		return "", fmt.Errorf("interview: rating %d outside 1-5", r)
	}
	desc, ok := scaleDescriptions[a]
	if !ok {
		return "", fmt.Errorf("interview: unknown area %d", a)
	}
	return desc[r-1], nil
}

// MaturityTable regenerates one Appendix A rating table.
func MaturityTable(a Area) *texttable.Table {
	t := texttable.New("1", "2", "3", "4", "5")
	t.Title = fmt.Sprintf("%s Maturity Rating", a)
	t.MaxCellWidth = 24
	desc := scaleDescriptions[a]
	t.AddRow(desc[0], desc[1], desc[2], desc[3], desc[4])
	return t
}

// LifecycleStage is one stage of the data lifecycle (template §2).
type LifecycleStage struct {
	Name string `json:"name"`
	// Files and AvgFileSizeBytes describe extent.
	Files            int   `json:"files"`
	AvgFileSizeBytes int64 `json:"avg_file_size_bytes"`
	// Formats are the file formats at this stage.
	Formats []string `json:"formats"`
	// Software lists the packages required to access this stage's data
	// (template §4), marked external where applicable.
	Software []SoftwareDep `json:"software,omitempty"`
}

// SoftwareDep is one software requirement of a lifecycle stage.
type SoftwareDep struct {
	Name    string `json:"name"`
	Version string `json:"version,omitempty"`
	// External marks packages outside the central experiment software
	// (ROOT, databases, GRID middleware).
	External bool `json:"external"`
	// Provides notes what an external service contributes.
	Provides string `json:"provides,omitempty"`
}

// SharingRow is one row of the data-sharing grid (template §9).
type SharingRow struct {
	Stage string `json:"stage"`
	// WithWhom is the audience (collaborators, field, whole world...).
	WithWhom string `json:"with_whom"`
	// When is the release condition.
	When string `json:"when"`
	// Conditions are use conditions (registration, waiver...).
	Conditions string `json:"conditions,omitempty"`
}

// Interview is one completed template.
type Interview struct {
	// Name and Dept identify the respondent (template header).
	Name string `json:"name"`
	Dept string `json:"dept"`
	// DataDescription answers §1A.
	DataDescription string `json:"data_description"`
	// Stages answers §2 and §4.
	Stages []LifecycleStage `json:"stages"`
	// BackupCopies, SecurityMeasures, DisasterRecoveryPlan, and
	// DMPRequired answer §5.
	BackupCopies         bool `json:"backup_copies"`
	SecurityMeasures     bool `json:"security_measures"`
	DisasterRecoveryPlan bool `json:"disaster_recovery_plan"`
	DMPRequired          bool `json:"dmp_required"`
	// StandardFormats answers §6B.
	StandardFormats bool `json:"standard_formats"`
	// VersionedSoftware answers §7B.
	VersionedSoftware bool `json:"versioned_software"`
	// MostImportantData answers §8A.
	MostImportantData string `json:"most_important_data"`
	// Ratings holds the §5F/§6D/§8E/§9F self-assessments.
	Ratings map[Area]Rating `json:"ratings"`
	// SharingGrid answers §9.
	SharingGrid []SharingRow `json:"sharing_grid"`
}

// Validate checks the interview is complete and consistent.
func (iv *Interview) Validate() error {
	if iv.Name == "" {
		return fmt.Errorf("interview: respondent name required")
	}
	if len(iv.Stages) == 0 {
		return fmt.Errorf("interview: %s: at least one lifecycle stage required", iv.Name)
	}
	for _, s := range iv.Stages {
		if s.Name == "" {
			return fmt.Errorf("interview: %s: unnamed lifecycle stage", iv.Name)
		}
		if s.Files < 0 || s.AvgFileSizeBytes < 0 {
			return fmt.Errorf("interview: %s: stage %q has negative extent", iv.Name, s.Name)
		}
	}
	for _, a := range Areas() {
		r, ok := iv.Ratings[a]
		if !ok {
			return fmt.Errorf("interview: %s: missing rating for %s", iv.Name, a)
		}
		if !r.Valid() {
			return fmt.Errorf("interview: %s: rating %d for %s outside 1-5", iv.Name, r, a)
		}
	}
	return nil
}

// OverallMaturity returns the mean of the four area ratings.
func (iv *Interview) OverallMaturity() float64 {
	sum := 0
	for _, a := range Areas() {
		sum += int(iv.Ratings[a])
	}
	return float64(sum) / float64(len(Areas()))
}

// TotalBytes estimates the interview's total data volume across stages.
func (iv *Interview) TotalBytes() int64 {
	var n int64
	for _, s := range iv.Stages {
		n += int64(s.Files) * s.AvgFileSizeBytes
	}
	return n
}

// ExternalDependencies returns the distinct external software dependencies
// across all stages, sorted — the encapsulation worklist of §3.2.
func (iv *Interview) ExternalDependencies() []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range iv.Stages {
		for _, d := range s.Software {
			if d.External && !seen[d.Name] {
				seen[d.Name] = true
				out = append(out, d.Name)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Encode serializes the interview.
func (iv *Interview) Encode() ([]byte, error) {
	if err := iv.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(iv, "", "  ")
}

// Decode parses and validates an archived interview.
func Decode(data []byte) (*Interview, error) {
	var iv Interview
	if err := json.Unmarshal(data, &iv); err != nil {
		return nil, fmt.Errorf("interview: parsing: %w", err)
	}
	if err := iv.Validate(); err != nil {
		return nil, err
	}
	return &iv, nil
}

// RatingsTable renders the interview's self-assessment with the matching
// Appendix A scale texts.
func (iv *Interview) RatingsTable() *texttable.Table {
	t := texttable.New("Area", "Rating", "Scale description")
	t.Title = fmt.Sprintf("Maturity self-assessment: %s", iv.Name)
	t.MaxCellWidth = 48
	t.SetAlign(1, texttable.Center)
	for _, a := range Areas() {
		r := iv.Ratings[a]
		desc, err := ScaleDescription(a, r)
		if err != nil {
			desc = "(unrated)"
		}
		t.AddRow(a.String(), int(r), desc)
	}
	return t
}

// SharingGridTable renders the §9 grid.
func (iv *Interview) SharingGridTable() *texttable.Table {
	t := texttable.New("Research Stage", "With whom", "When", "Conditions")
	t.Title = "Data Sharing Grid"
	t.MaxCellWidth = 30
	for _, row := range iv.SharingGrid {
		t.AddRow(row.Stage, row.WithWhom, row.When, row.Conditions)
	}
	return t
}

// LifecycleTable renders the §2 lifecycle with per-stage extent.
func (iv *Interview) LifecycleTable() *texttable.Table {
	t := texttable.New("Stage", "Files", "Avg size", "Total", "Formats")
	t.Title = "Data Lifecycle"
	t.SetAlign(1, texttable.Right)
	t.SetAlign(2, texttable.Right)
	t.SetAlign(3, texttable.Right)
	for _, s := range iv.Stages {
		t.AddRow(s.Name, s.Files, FormatBytes(s.AvgFileSizeBytes),
			FormatBytes(int64(s.Files)*s.AvgFileSizeBytes), joinStrings(s.Formats))
	}
	return t
}

// Comparison renders a cross-experiment maturity matrix: the synthesis the
// workshop report draws from the collected questionnaires.
func Comparison(interviews []*Interview) *texttable.Table {
	t := texttable.New(append([]string{"Area"}, headerNames(interviews)...)...)
	t.Title = "Maturity comparison across experiments"
	for _, a := range Areas() {
		cells := make([]interface{}, 0, len(interviews)+1)
		cells = append(cells, a.String())
		for _, iv := range interviews {
			cells = append(cells, int(iv.Ratings[a]))
		}
		t.AddRow(cells...)
	}
	overall := make([]interface{}, 0, len(interviews)+1)
	overall = append(overall, "Overall (mean)")
	for _, iv := range interviews {
		overall = append(overall, fmt.Sprintf("%.2f", iv.OverallMaturity()))
	}
	t.AddRow(overall...)
	return t
}

func headerNames(interviews []*Interview) []string {
	out := make([]string, len(interviews))
	for i, iv := range interviews {
		out[i] = iv.Name
	}
	return out
}

// FormatBytes renders a byte count with a binary-prefix unit.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<50:
		return fmt.Sprintf("%.1f PiB", float64(n)/float64(int64(1)<<50))
	case n >= 1<<40:
		return fmt.Sprintf("%.1f TiB", float64(n)/float64(int64(1)<<40))
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/float64(int64(1)<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/float64(int64(1)<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/float64(int64(1)<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

func joinStrings(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += x
	}
	return out
}
