package interview

import (
	"strings"
	"testing"
)

func TestAreasAndScales(t *testing.T) {
	if len(Areas()) != 4 {
		t.Fatalf("areas: %d", len(Areas()))
	}
	for _, a := range Areas() {
		if a.String() == "" || strings.HasPrefix(a.String(), "area(") {
			t.Fatalf("area %d unnamed", a)
		}
		for r := Rating(1); r <= 5; r++ {
			desc, err := ScaleDescription(a, r)
			if err != nil || desc == "" {
				t.Fatalf("scale %s/%d: %v", a, r, err)
			}
		}
	}
	if _, err := ScaleDescription(AreaPreservation, 0); err == nil {
		t.Fatal("rating 0 accepted")
	}
	if _, err := ScaleDescription(AreaPreservation, 6); err == nil {
		t.Fatal("rating 6 accepted")
	}
	if _, err := ScaleDescription(Area(99), 3); err == nil {
		t.Fatal("unknown area accepted")
	}
}

func TestMaturityTablesMatchAppendixA(t *testing.T) {
	// Anchor phrases from each Appendix A table must appear verbatim.
	anchors := map[Area]string{
		AreaDataManagement:  "routinely tested and shown to be effective",
		AreaDataDescription: "Metadata is an unfamiliar concept",
		AreaPreservation:    "mostly due to chance, not active preservation",
		AreaSharingAccess:   "culture of openness",
	}
	for a, anchor := range anchors {
		tab := MaturityTable(a)
		// The ASCII render wraps cells; the Markdown render keeps each
		// description on one line for exact matching.
		if !strings.Contains(tab.Markdown(), anchor) {
			t.Fatalf("%s table missing %q:\n%s", a, anchor, tab.Markdown())
		}
		if tab.NumRows() != 1 {
			t.Fatalf("%s table rows: %d", a, tab.NumRows())
		}
	}
}

func TestStandardProfilesValid(t *testing.T) {
	ps := StandardProfiles()
	if len(ps) != 4 {
		t.Fatalf("profiles: %d", len(ps))
	}
	for _, iv := range ps {
		if err := iv.Validate(); err != nil {
			t.Fatalf("%s: %v", iv.Name, err)
		}
		if iv.TotalBytes() <= 0 {
			t.Fatalf("%s: no data volume", iv.Name)
		}
		if len(iv.ExternalDependencies()) == 0 {
			t.Fatalf("%s: no external dependencies recorded", iv.Name)
		}
	}
}

func TestWorkshopFindingsEncoded(t *testing.T) {
	// The report's 2014 facts: CMS and LHCb have approved data policies
	// (higher preservation maturity); ALICE ships constants as text files.
	byName := map[string]*Interview{}
	for _, iv := range StandardProfiles() {
		byName[iv.Name] = iv
	}
	if byName["CMS"].Ratings[AreaPreservation] <= byName["Atlas"].Ratings[AreaPreservation] {
		t.Fatal("CMS preservation maturity not above ATLAS")
	}
	if byName["LHCb"].Ratings[AreaPreservation] <= byName["Alice"].Ratings[AreaPreservation] {
		t.Fatal("LHCb preservation maturity not above ALICE")
	}
	deps := byName["Alice"].ExternalDependencies()
	foundText := false
	for _, d := range deps {
		if d == "text-constants-files" {
			foundText = true
		}
		if d == "conditions-db" {
			t.Fatal("ALICE uses a conditions database")
		}
	}
	if !foundText {
		t.Fatalf("ALICE text-file constants missing: %v", deps)
	}
}

func TestValidateCatchesDefects(t *testing.T) {
	good := StandardProfiles()[0]
	mutate := func(f func(*Interview)) error {
		iv := StandardProfiles()[0]
		f(iv)
		return iv.Validate()
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := mutate(func(iv *Interview) { iv.Name = "" }); err == nil {
		t.Error("nameless interview validated")
	}
	if err := mutate(func(iv *Interview) { iv.Stages = nil }); err == nil {
		t.Error("stageless interview validated")
	}
	if err := mutate(func(iv *Interview) { iv.Stages[0].Name = "" }); err == nil {
		t.Error("unnamed stage validated")
	}
	if err := mutate(func(iv *Interview) { iv.Stages[0].Files = -1 }); err == nil {
		t.Error("negative extent validated")
	}
	if err := mutate(func(iv *Interview) { delete(iv.Ratings, AreaPreservation) }); err == nil {
		t.Error("missing rating validated")
	}
	if err := mutate(func(iv *Interview) { iv.Ratings[AreaPreservation] = 9 }); err == nil {
		t.Error("out-of-scale rating validated")
	}
}

func TestOverallMaturity(t *testing.T) {
	iv := StandardProfiles()[2] // CMS: 4,4,4,4
	if iv.OverallMaturity() != 4 {
		t.Fatalf("CMS overall: %v", iv.OverallMaturity())
	}
	alice := StandardProfiles()[0]
	if alice.OverallMaturity() >= iv.OverallMaturity() {
		t.Fatal("maturity ordering")
	}
}

func TestRatingsTableRendersScaleText(t *testing.T) {
	iv := StandardProfiles()[0]
	out := iv.RatingsTable().String()
	if !strings.Contains(out, "Alice") {
		t.Fatal("respondent missing")
	}
	// Rating 2 in preservation: the level-2 description text must show.
	if !strings.Contains(iv.RatingsTable().Markdown(), "mostly due to chance") {
		t.Fatalf("scale description missing:\n%s", out)
	}
}

func TestSharingGridTable(t *testing.T) {
	iv := StandardProfiles()[2]
	out := iv.SharingGridTable().String()
	for _, want := range []string{"Whole world", "RAW", "attribution"} {
		if !strings.Contains(out, want) {
			t.Fatalf("grid missing %q:\n%s", want, out)
		}
	}
}

func TestLifecycleTableShowsReduction(t *testing.T) {
	iv := StandardProfiles()[1]
	out := iv.LifecycleTable().String()
	for _, want := range []string{"RAW collection", "Group skims", "Publication", "TiB"} {
		if !strings.Contains(out, want) {
			t.Fatalf("lifecycle missing %q:\n%s", want, out)
		}
	}
}

func TestComparisonTable(t *testing.T) {
	out := Comparison(StandardProfiles()).String()
	for _, want := range []string{"Alice", "Atlas", "CMS", "LHCb", "Overall (mean)", "Preservation"} {
		if !strings.Contains(out, want) {
			t.Fatalf("comparison missing %q:\n%s", want, out)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	iv := StandardProfiles()[3]
	data, err := iv.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != iv.Name || got.OverallMaturity() != iv.OverallMaturity() {
		t.Fatal("round trip changed content")
	}
	if len(got.Stages) != len(iv.Stages) || len(got.SharingGrid) != len(iv.SharingGrid) {
		t.Fatal("round trip lost sections")
	}
	if _, err := Decode([]byte("{bad")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := Decode([]byte(`{"name":"x"}`)); err == nil {
		t.Fatal("incomplete interview decoded")
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		512:            "512 B",
		2048:           "2.0 KiB",
		3 << 20:        "3.0 MiB",
		5 << 30:        "5.0 GiB",
		7 << 40:        "7.0 TiB",
		int64(2) << 50: "2.0 PiB",
	}
	for n, want := range cases {
		if got := FormatBytes(n); got != want {
			t.Errorf("FormatBytes(%d)=%q want %q", n, got, want)
		}
	}
}
