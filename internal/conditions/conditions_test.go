package conditions

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"daspos/internal/xrand"
)

func TestStoreAndLookup(t *testing.T) {
	db := NewDB()
	if err := db.Store("calo/scale", "v1", IoV{100, 199}, Payload{"scale": 1.01}); err != nil {
		t.Fatal(err)
	}
	if err := db.Store("calo/scale", "v1", IoV{200, 299}, Payload{"scale": 1.02}); err != nil {
		t.Fatal(err)
	}
	p, err := db.Lookup("calo/scale", "v1", 150)
	if err != nil {
		t.Fatal(err)
	}
	if p["scale"] != 1.01 {
		t.Fatalf("payload %v", p)
	}
	p, err = db.Lookup("calo/scale", "v1", 200)
	if err != nil {
		t.Fatal(err)
	}
	if p["scale"] != 1.02 {
		t.Fatalf("payload %v", p)
	}
}

func TestLookupErrors(t *testing.T) {
	db := NewDB()
	_ = db.Store("f", "v1", IoV{1, 10}, Payload{"a": 1})
	if _, err := db.Lookup("missing", "v1", 5); !errors.Is(err, ErrNoFolder) {
		t.Fatalf("missing folder: %v", err)
	}
	if _, err := db.Lookup("f", "v2", 5); !errors.Is(err, ErrNoTag) {
		t.Fatalf("missing tag: %v", err)
	}
	if _, err := db.Lookup("f", "v1", 99); !errors.Is(err, ErrNoIoV) {
		t.Fatalf("missing iov: %v", err)
	}
}

func TestOverlapRejected(t *testing.T) {
	db := NewDB()
	if err := db.Store("f", "v1", IoV{10, 20}, Payload{"a": 1}); err != nil {
		t.Fatal(err)
	}
	for _, iov := range []IoV{{15, 25}, {5, 10}, {20, 20}, {1, 100}} {
		if err := db.Store("f", "v1", iov, Payload{"a": 2}); err == nil {
			t.Fatalf("overlap %v accepted", iov)
		}
	}
	// Same interval under a different tag is fine: tags are versions.
	if err := db.Store("f", "v2", IoV{10, 20}, Payload{"a": 2}); err != nil {
		t.Fatal(err)
	}
}

func TestStoreValidation(t *testing.T) {
	db := NewDB()
	if err := db.Store("", "v1", IoV{1, 2}, nil); err == nil {
		t.Fatal("empty folder accepted")
	}
	if err := db.Store("f", "", IoV{1, 2}, nil); err == nil {
		t.Fatal("empty tag accepted")
	}
	if err := db.Store("f", "v1", IoV{5, 2}, nil); err == nil {
		t.Fatal("inverted IoV accepted")
	}
}

func TestPayloadIsolation(t *testing.T) {
	db := NewDB()
	orig := Payload{"a": 1}
	_ = db.Store("f", "v1", IoV{1, 10}, orig)
	orig["a"] = 999 // caller mutates its copy
	p, _ := db.Lookup("f", "v1", 5)
	if p["a"] != 1 {
		t.Fatal("stored payload aliased caller memory")
	}
	p["a"] = 777 // reader mutates its copy
	q, _ := db.Lookup("f", "v1", 5)
	if q["a"] != 1 {
		t.Fatal("lookup payload aliased store memory")
	}
}

func TestFoldersAndTags(t *testing.T) {
	db := NewDB()
	_ = db.Store("b", "v1", IoV{1, 2}, nil)
	_ = db.Store("a", "v2", IoV{1, 2}, nil)
	_ = db.Store("a", "v1", IoV{1, 2}, nil)
	if got := db.Folders(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("folders %v", got)
	}
	if got := db.Tags("a"); len(got) != 2 || got[0] != "v1" || got[1] != "v2" {
		t.Fatalf("tags %v", got)
	}
}

func TestSnapshotResolvesOneRun(t *testing.T) {
	db := NewDB()
	_ = db.Store("f1", "v1", IoV{1, 100}, Payload{"x": 1})
	_ = db.Store("f1", "v1", IoV{101, 200}, Payload{"x": 2})
	_ = db.Store("f2", "v1", IoV{1, 200}, Payload{"y": 3})
	_ = db.Store("f3", "other", IoV{1, 200}, Payload{"z": 4})
	s := db.Snapshot("v1", 150)
	if got := s.Folders(); len(got) != 2 {
		t.Fatalf("snapshot folders %v", got)
	}
	p, err := s.Lookup("f1")
	if err != nil || p["x"] != 2 {
		t.Fatalf("f1: %v %v", p, err)
	}
	if _, err := s.Lookup("f3"); err == nil {
		t.Fatal("other-tag folder leaked into snapshot")
	}
}

func TestSnapshotIsFrozen(t *testing.T) {
	// The paper's trade-off: a snapshot does not see later tag updates,
	// the service does.
	db := NewDB()
	_ = db.Store("f", "v1", IoV{1, 100}, Payload{"x": 1})
	snap := db.Snapshot("v1", 50)
	// Publish a new tag version correcting the constant.
	_ = db.Store("f", "v2", IoV{1, 100}, Payload{"x": 9})
	p, _ := snap.Lookup("f")
	if p["x"] != 1 {
		t.Fatal("snapshot changed after publication")
	}
	q, _ := db.Lookup("f", "v2", 50)
	if q["x"] != 9 {
		t.Fatal("service does not see the new tag")
	}
}

func TestSnapshotTextRoundTrip(t *testing.T) {
	db := NewDB()
	if err := SeedStandard(db, "data-v3", 1000, 1200, 50, 42); err != nil {
		t.Fatal(err)
	}
	s := db.Snapshot("data-v3", 1100)
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != s.Tag || got.Run != s.Run {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Folders()) != len(s.Folders()) {
		t.Fatalf("folder count %d != %d", len(got.Folders()), len(s.Folders()))
	}
	for _, f := range s.Folders() {
		a, _ := s.Lookup(f)
		b, _ := got.Lookup(f)
		if len(a) != len(b) {
			t.Fatalf("folder %s key count", f)
		}
		for k, v := range a {
			if b[k] != v {
				t.Fatalf("folder %s key %s: %v != %v (not bit-exact)", f, k, b[k], v)
			}
		}
	}
	// Determinism: two writes of the same snapshot are byte-identical.
	var buf2 bytes.Buffer
	_ = WriteSnapshot(&buf2, s)
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("snapshot serialization not deterministic")
	}
}

func TestReadSnapshotRejectsCorrupt(t *testing.T) {
	cases := map[string]string{
		"bad header":     "NOPE\n",
		"stray end":      "CONDITIONS-SNAPSHOT 1\nend\n",
		"key outside":    "CONDITIONS-SNAPSHOT 1\nx 1\n",
		"bad value":      "CONDITIONS-SNAPSHOT 1\nfolder f\nx abc\nend\n",
		"unterminated":   "CONDITIONS-SNAPSHOT 1\nfolder f\nx 1\n",
		"nested folder":  "CONDITIONS-SNAPSHOT 1\nfolder f\nfolder g\nend\n",
		"bad run":        "CONDITIONS-SNAPSHOT 1\nrun abc\n",
		"bad key fields": "CONDITIONS-SNAPSHOT 1\nfolder f\na b c\nend\n",
	}
	for name, in := range cases {
		if _, err := ReadSnapshot(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSeedStandardCoversAllRuns(t *testing.T) {
	db := NewDB()
	if err := SeedStandard(db, "t", 1, 1000, 100, 7); err != nil {
		t.Fatal(err)
	}
	for _, run := range []uint32{1, 100, 101, 555, 1000} {
		for _, f := range StandardFolders() {
			if _, err := db.Lookup(f, "t", run); err != nil {
				t.Fatalf("run %d folder %s: %v", run, f, err)
			}
		}
	}
	if _, err := db.Lookup(FolderECalScale, "t", 1001); err == nil {
		t.Fatal("lookup past seeded range succeeded")
	}
}

func TestSeedStandardDeterministic(t *testing.T) {
	a, b := NewDB(), NewDB()
	_ = SeedStandard(a, "t", 1, 500, 50, 9)
	_ = SeedStandard(b, "t", 1, 500, 50, 9)
	pa, _ := a.Lookup(FolderECalScale, "t", 250)
	pb, _ := b.Lookup(FolderECalScale, "t", 250)
	if pa["scale"] != pb["scale"] {
		t.Fatal("seeding not deterministic")
	}
}

func TestSeedStandardZeroPeriod(t *testing.T) {
	if err := SeedStandard(NewDB(), "t", 1, 10, 0, 1); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := NewDB()
	_ = SeedStandard(db, "t", 1, 1000, 100, 1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if _, err := db.Lookup(FolderECalScale, "t", uint32(1+i%1000)); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	// A concurrent writer publishing a new tag.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			_ = db.Store("extra", "t2", IoV{uint32(i*10 + 1), uint32(i*10 + 10)}, Payload{"v": float64(i)})
		}
	}()
	wg.Wait()
}

func BenchmarkServiceLookup(b *testing.B) {
	db := NewDB()
	_ = SeedStandard(db, "t", 1, 100000, 100, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Lookup(FolderECalScale, "t", uint32(1+i%100000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotLookup(b *testing.B) {
	db := NewDB()
	_ = SeedStandard(db, "t", 1, 100000, 100, 1)
	s := db.Snapshot("t", 50000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Lookup(FolderECalScale); err != nil {
			b.Fatal(err)
		}
	}
}

func TestLookupResolvesCorrectIntervalProperty(t *testing.T) {
	// Property: for randomly sized non-overlapping intervals, Lookup always
	// returns the payload whose interval contains the run.
	rng := xrand.New(66)
	if err := quick.Check(func(nIntervals uint8) bool {
		db := NewDB()
		type span struct {
			iov IoV
			val float64
		}
		var spans []span
		next := uint32(1)
		for i := 0; i <= int(nIntervals%12); i++ {
			length := uint32(rng.Intn(50) + 1)
			iov := IoV{First: next, Last: next + length - 1}
			val := float64(i + 1)
			if err := db.Store("f", "t", iov, Payload{"v": val}); err != nil {
				return false
			}
			spans = append(spans, span{iov, val})
			next += length + uint32(rng.Intn(3)) // occasional gaps
		}
		// Probe every boundary and a midpoint of each interval.
		for _, sp := range spans {
			for _, run := range []uint32{sp.iov.First, sp.iov.Last, (sp.iov.First + sp.iov.Last) / 2} {
				p, err := db.Lookup("f", "t", run)
				if err != nil || p["v"] != sp.val {
					return false
				}
			}
		}
		// A run beyond the last interval must fail.
		if _, err := db.Lookup("f", "t", next+100); err == nil {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
