package conditions

import (
	"fmt"

	"daspos/internal/xrand"
)

// Standard folder names used by the reconstruction chain. Enumerating them
// here keeps the external-dependency census (experiment W2) honest: these
// are exactly the databases the Reconstruction step needs.
const (
	FolderECalScale    = "calo/ecal_scale"
	FolderHCalScale    = "calo/hcal_scale"
	FolderTrackerAlign = "tracker/alignment"
	FolderBeamspot     = "beam/spot"
	FolderMuonAlign    = "muon/alignment"
)

// StandardFolders lists every folder the reconstruction chain reads.
func StandardFolders() []string {
	return []string{FolderECalScale, FolderHCalScale, FolderTrackerAlign, FolderBeamspot, FolderMuonAlign}
}

// SeedStandard populates a database with drifting calibration constants for
// runs [firstRun, lastRun] under the given tag, one IoV per calibration
// period of periodLen runs. The drift is deterministic in the seed, so a
// preserved workflow that records (tag, seed) reproduces its calibration
// exactly.
func SeedStandard(db *DB, tag string, firstRun, lastRun uint32, periodLen uint32, seed uint64) error {
	if periodLen == 0 {
		return fmt.Errorf("conditions: zero period length")
	}
	rng := xrand.New(seed ^ 0xca11b)
	ecalScale, hcalScale := 1.0, 1.0
	alignX, alignY := 0.0, 0.0
	for start := firstRun; start <= lastRun; start += periodLen {
		end := start + periodLen - 1
		if end > lastRun {
			end = lastRun
		}
		iov := IoV{First: start, Last: end}
		// Scales drift by a fraction of a percent per period.
		ecalScale *= 1 + rng.Gauss(0, 0.002)
		hcalScale *= 1 + rng.Gauss(0, 0.004)
		alignX += rng.Gauss(0, 0.002)
		alignY += rng.Gauss(0, 0.002)
		stores := []struct {
			folder  string
			payload Payload
		}{
			{FolderECalScale, Payload{"scale": ecalScale, "offset": rng.Gauss(0, 0.01)}},
			{FolderHCalScale, Payload{"scale": hcalScale, "offset": rng.Gauss(0, 0.05)}},
			{FolderTrackerAlign, Payload{"dx": alignX, "dy": alignY, "dz": rng.Gauss(0, 0.01)}},
			{FolderBeamspot, Payload{"x": rng.Gauss(0, 0.01), "y": rng.Gauss(0, 0.01), "z": rng.Gauss(0, 5), "sigma_z": 45}},
			{FolderMuonAlign, Payload{"dphi": rng.Gauss(0, 1e-4)}},
		}
		for _, s := range stores {
			if err := db.Store(s.folder, tag, iov, s.payload); err != nil {
				return err
			}
		}
		if end == lastRun {
			break
		}
	}
	return nil
}
