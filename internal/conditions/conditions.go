// Package conditions implements the conditions database: the versioned,
// interval-of-validity store of calibration and alignment constants that
// the paper singles out as the Reconstruction step's heaviest external
// dependency ("at least one and sometimes many different databases that
// store all manner of calibration constants, conditions data...").
//
// Two access modes mirror the difference the workshop recorded between
// experiments: service mode queries the live store per lookup (the
// database-access pattern of ATLAS/CMS/LHCb), while snapshot mode exports
// the constants valid for one run into a flat text file "that can easily
// be shipped around with the data" (the ALICE pattern). Experiment W4
// quantifies the trade: snapshots are faster per lookup and trivially
// preservable, the service sees tag updates immediately.
package conditions

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Payload is one set of named constants, e.g. an energy scale and offset.
type Payload map[string]float64

// clone returns an independent copy so callers cannot mutate stored state.
func (p Payload) clone() Payload {
	c := make(Payload, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// IoV is a closed run interval [First, Last] for which a payload is valid.
type IoV struct {
	First, Last uint32
}

// Contains reports whether the run falls inside the interval.
func (iov IoV) Contains(run uint32) bool { return run >= iov.First && run <= iov.Last }

// entry pairs an interval with its payload inside one folder+tag.
type entry struct {
	iov     IoV
	payload Payload
}

// Errors returned by lookups.
var (
	ErrNoFolder = errors.New("conditions: no such folder")
	ErrNoTag    = errors.New("conditions: no such tag")
	ErrNoIoV    = errors.New("conditions: no payload valid for run")
)

// DB is the conditions store. It is safe for concurrent use: reconstruction
// jobs read while calibration jobs publish new tags.
type DB struct {
	mu sync.RWMutex
	// folders[folder][tag] holds interval entries sorted by First.
	folders map[string]map[string][]entry
}

// NewDB returns an empty conditions database.
func NewDB() *DB {
	return &DB{folders: make(map[string]map[string][]entry)}
}

// Store publishes a payload for a folder, tag, and validity interval.
// Overlapping intervals within the same tag are rejected: a tag must
// resolve every run to at most one payload, or reprocessing would not be
// reproducible.
func (db *DB) Store(folder, tag string, iov IoV, p Payload) error {
	if folder == "" || tag == "" {
		return fmt.Errorf("conditions: empty folder or tag")
	}
	if iov.Last < iov.First {
		return fmt.Errorf("conditions: inverted IoV [%d,%d]", iov.First, iov.Last)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	tags, ok := db.folders[folder]
	if !ok {
		tags = make(map[string][]entry)
		db.folders[folder] = tags
	}
	for _, e := range tags[tag] {
		if iov.First <= e.iov.Last && e.iov.First <= iov.Last {
			return fmt.Errorf("conditions: IoV [%d,%d] overlaps [%d,%d] in %s/%s",
				iov.First, iov.Last, e.iov.First, e.iov.Last, folder, tag)
		}
	}
	tags[tag] = append(tags[tag], entry{iov: iov, payload: p.clone()})
	sort.Slice(tags[tag], func(i, j int) bool { return tags[tag][i].iov.First < tags[tag][j].iov.First })
	return nil
}

// Lookup resolves the payload valid for a run under a folder and tag. This
// is the service-mode access path.
func (db *DB) Lookup(folder, tag string, run uint32) (Payload, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	tags, ok := db.folders[folder]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoFolder, folder)
	}
	entries, ok := tags[tag]
	if !ok {
		return nil, fmt.Errorf("%w: %q in folder %q", ErrNoTag, tag, folder)
	}
	// Binary search over the sorted, non-overlapping intervals.
	i := sort.Search(len(entries), func(i int) bool { return entries[i].iov.Last >= run })
	if i < len(entries) && entries[i].iov.Contains(run) {
		return entries[i].payload.clone(), nil
	}
	return nil, fmt.Errorf("%w: run %d in %s/%s", ErrNoIoV, run, folder, tag)
}

// Folders returns the sorted folder names.
func (db *DB) Folders() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.folders))
	for f := range db.folders {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Tags returns the sorted tags published in a folder.
func (db *DB) Tags(folder string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	tags := db.folders[folder]
	out := make([]string, 0, len(tags))
	for t := range tags {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// View is a service-mode handle binding a database to one tag and run, so
// consumers (reconstruction, calibration monitors) can resolve folders
// without carrying tag/run plumbing. Unlike a Snapshot, every Lookup goes
// to the live store and sees newly published intervals.
type View struct {
	db  *DB
	tag string
	run uint32
}

// View returns a service-mode view of the database for one tag and run.
func (db *DB) View(tag string, run uint32) *View {
	return &View{db: db, tag: tag, run: run}
}

// Lookup resolves a folder through the live database.
func (v *View) Lookup(folder string) (Payload, error) {
	return v.db.Lookup(folder, v.tag, v.run)
}

// Snapshot is the flattened, single-run view of the database under one tag:
// the ALICE-style shippable constants file. It is immutable after creation.
type Snapshot struct {
	Tag      string
	Run      uint32
	payloads map[string]Payload
}

// Snapshot resolves every folder under the given tag for one run. Folders
// without that tag or without a valid interval are skipped — a snapshot
// captures what was available, and the consumer's Lookup reports gaps.
func (db *DB) Snapshot(tag string, run uint32) *Snapshot {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s := &Snapshot{Tag: tag, Run: run, payloads: make(map[string]Payload)}
	for folder, tags := range db.folders {
		entries, ok := tags[tag]
		if !ok {
			continue
		}
		for _, e := range entries {
			if e.iov.Contains(run) {
				s.payloads[folder] = e.payload.clone()
				break
			}
		}
	}
	return s
}

// Lookup returns the snapshot's payload for a folder.
func (s *Snapshot) Lookup(folder string) (Payload, error) {
	p, ok := s.payloads[folder]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoFolder, folder)
	}
	return p, nil
}

// Folders returns the sorted folder names captured in the snapshot.
func (s *Snapshot) Folders() []string {
	out := make([]string, 0, len(s.payloads))
	for f := range s.payloads {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// The snapshot text format, one folder per block:
//
//	CONDITIONS-SNAPSHOT 1
//	tag <tag>
//	run <run>
//	folder <name>
//	<key> <value>
//	...
//	end
//
// Keys are written sorted so two snapshots of the same state are
// byte-identical — snapshots are archived by content hash.

const snapshotMagic = "CONDITIONS-SNAPSHOT 1"

// WriteSnapshot serializes a snapshot to its archival text form.
func WriteSnapshot(w io.Writer, s *Snapshot) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, snapshotMagic)
	fmt.Fprintf(bw, "tag %s\n", s.Tag)
	fmt.Fprintf(bw, "run %d\n", s.Run)
	for _, folder := range s.Folders() {
		fmt.Fprintf(bw, "folder %s\n", folder)
		p := s.payloads[folder]
		keys := make([]string, 0, len(p))
		for k := range p {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(bw, "%s %.17g\n", k, p[k])
		}
		fmt.Fprintln(bw, "end")
	}
	return bw.Flush()
}

// ReadSnapshot parses a snapshot from its text form.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	if !sc.Scan() || strings.TrimSpace(sc.Text()) != snapshotMagic {
		return nil, fmt.Errorf("conditions: bad snapshot header")
	}
	s := &Snapshot{payloads: make(map[string]Payload)}
	var current Payload
	var currentName string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "tag":
			if len(fields) != 2 {
				return nil, fmt.Errorf("conditions: bad tag line %q", line)
			}
			s.Tag = fields[1]
		case "run":
			if len(fields) != 2 {
				return nil, fmt.Errorf("conditions: bad run line %q", line)
			}
			run, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("conditions: bad run %q: %w", fields[1], err)
			}
			s.Run = uint32(run)
		case "folder":
			if current != nil {
				return nil, fmt.Errorf("conditions: folder %q not terminated", currentName)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("conditions: bad folder line %q", line)
			}
			currentName = fields[1]
			current = make(Payload)
		case "end":
			if current == nil {
				return nil, fmt.Errorf("conditions: stray end")
			}
			s.payloads[currentName] = current
			current = nil
		default:
			if current == nil {
				return nil, fmt.Errorf("conditions: key outside folder: %q", line)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("conditions: bad key line %q", line)
			}
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				return nil, fmt.Errorf("conditions: bad value in %q: %w", line, err)
			}
			current[fields[0]] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if current != nil {
		return nil, fmt.Errorf("conditions: folder %q not terminated", currentName)
	}
	return s, nil
}
