package conditions_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"daspos/internal/conditions"
	"daspos/internal/faults"
	"daspos/internal/resilience"
)

// seedDB builds a conditions DB with a couple of folders under tag v1.
func seedDB(t testing.TB) *conditions.DB {
	t.Helper()
	db := conditions.NewDB()
	for folder, val := range map[string]float64{
		"ecal/scale":   1.015,
		"tracker/bias": -0.002,
	} {
		if err := db.Store(folder, "v1", conditions.IoV{First: 1, Last: 1000},
			conditions.Payload{"value": val}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func newClient(t testing.TB, r conditions.Resolver, snap *conditions.Snapshot, threshold int) *conditions.ServiceClient {
	t.Helper()
	return conditions.NewServiceClient(r, "v1", 42, snap, conditions.ClientConfig{
		Timeout: 5 * time.Millisecond,
		Breaker: resilience.BreakerConfig{
			FailureThreshold: threshold,
			OpenInterval:     time.Hour, // stays open for the whole test
		},
	})
}

func TestServiceClientHealthyPath(t *testing.T) {
	db := seedDB(t)
	c := newClient(t, conditions.DBResolver{DB: db}, nil, 3)
	p, err := c.Lookup(context.Background(), "ecal/scale")
	if err != nil {
		t.Fatal(err)
	}
	if p["value"] != 1.015 {
		t.Fatalf("wrong payload: %v", p)
	}
	if c.Degraded() {
		t.Fatal("healthy client reports degraded")
	}
	st := c.Stats()
	if st.ServiceHits != 1 || st.SnapshotHits != 0 {
		t.Fatalf("stats = %+v, want one service hit", st)
	}
}

func TestServiceClientAuthoritativeMissDoesNotDegrade(t *testing.T) {
	db := seedDB(t)
	snap := db.Snapshot("v1", 42)
	c := newClient(t, conditions.DBResolver{DB: db}, snap, 2)
	_, err := c.Lookup(context.Background(), "no/such/folder")
	if !errors.Is(err, conditions.ErrNoFolder) {
		t.Fatalf("want ErrNoFolder from the service, got %v", err)
	}
	if c.Breaker().State() != resilience.Closed {
		t.Fatal("authoritative miss counted as a fault")
	}
}

// TestConditionsFailover is the acceptance scenario: the service starts
// timing out, the breaker opens after the threshold, and lookups keep
// answering transparently from the snapshot.
func TestConditionsFailover(t *testing.T) {
	db := seedDB(t)
	snap := db.Snapshot("v1", 42)
	inj := faults.NewInjector(11)
	flaky := &faults.FlakyResolver{Inner: conditions.DBResolver{DB: db}, Inj: inj}
	c := newClient(t, flaky, snap, 3)

	// Warm the last-good cache through a healthy lookup.
	if _, err := c.Lookup(context.Background(), "ecal/scale"); err != nil {
		t.Fatal(err)
	}

	// The service stalls: every lookup now exceeds the client timeout.
	inj.WithLatency(50 * time.Millisecond)
	for i := 0; i < 5; i++ {
		p, err := c.Lookup(context.Background(), "ecal/scale")
		if err != nil {
			t.Fatalf("lookup %d failed during outage: %v", i, err)
		}
		if p["value"] != 1.015 {
			t.Fatalf("degraded lookup %d served wrong payload: %v", i, p)
		}
	}
	if !c.Degraded() {
		t.Fatal("breaker never opened under repeated timeouts")
	}
	st := c.Stats()
	if st.ServiceFailures != 3 {
		t.Fatalf("service failures = %d, want exactly the breaker threshold 3 (breaker should stop further probes)", st.ServiceFailures)
	}
	if st.SnapshotHits != 5 {
		t.Fatalf("snapshot hits = %d, want 5", st.SnapshotHits)
	}

	// A folder never served live comes from the snapshot baseline.
	p, err := c.Lookup(context.Background(), "tracker/bias")
	if err != nil {
		t.Fatalf("snapshot baseline lookup failed: %v", err)
	}
	if p["value"] != -0.002 {
		t.Fatalf("snapshot served wrong payload: %v", p)
	}
}

func TestServiceClientOutageWithoutSnapshotFailsHard(t *testing.T) {
	db := seedDB(t)
	inj := faults.NewInjector(13)
	inj.FailNext("lookup", 100)
	flaky := &faults.FlakyResolver{Inner: conditions.DBResolver{DB: db}, Inj: inj}
	c := newClient(t, flaky, nil, 2)
	if _, err := c.Lookup(context.Background(), "ecal/scale"); err == nil {
		t.Fatal("no snapshot, no cache — lookup should fail")
	}
}

func TestServiceClientRecovers(t *testing.T) {
	db := seedDB(t)
	snap := db.Snapshot("v1", 42)
	inj := faults.NewInjector(17)
	flaky := &faults.FlakyResolver{Inner: conditions.DBResolver{DB: db}, Inj: inj}
	c := conditions.NewServiceClient(flaky, "v1", 42, snap, conditions.ClientConfig{
		Timeout: 5 * time.Millisecond,
		Breaker: resilience.BreakerConfig{FailureThreshold: 2, OpenInterval: time.Millisecond},
	})
	inj.FailNext("lookup", 2)
	for i := 0; i < 2; i++ {
		if _, err := c.Lookup(context.Background(), "ecal/scale"); err != nil {
			t.Fatal(err)
		}
	}
	if !c.Degraded() {
		t.Fatal("breaker should be open")
	}
	// After the open interval, the next lookup is a probe; the fault
	// schedule is spent, so it succeeds and the breaker re-closes.
	time.Sleep(2 * time.Millisecond)
	if _, err := c.Lookup(context.Background(), "ecal/scale"); err != nil {
		t.Fatal(err)
	}
	if c.Degraded() {
		t.Fatal("breaker did not re-close after a successful probe")
	}
}

// BenchmarkDegradedConditionsFallback quantifies the per-lookup cost of
// serving conditions from the degradation path (open breaker → last-good
// cache) against the healthy service path — the price of surviving a
// conditions outage on the reconstruction hot path.
func BenchmarkDegradedConditionsFallback(b *testing.B) {
	db := seedDB(b)
	snap := db.Snapshot("v1", 42)

	b.Run("service", func(b *testing.B) {
		c := newClient(b, conditions.DBResolver{DB: db}, snap, 3)
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Lookup(ctx, "ecal/scale"); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("degraded", func(b *testing.B) {
		inj := faults.NewInjector(19)
		flaky := &faults.FlakyResolver{Inner: conditions.DBResolver{DB: db}, Inj: inj}
		c := newClient(b, flaky, snap, 3)
		ctx := context.Background()
		// Warm the cache, then trip the breaker (open interval is 1h, so
		// it stays open for the whole run).
		if _, err := c.Lookup(ctx, "ecal/scale"); err != nil {
			b.Fatal(err)
		}
		inj.FailNext("lookup", 3)
		for i := 0; i < 3; i++ {
			if _, err := c.Lookup(ctx, "ecal/scale"); err != nil {
				b.Fatal(err)
			}
		}
		if !c.Degraded() {
			b.Fatal("breaker not open")
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Lookup(ctx, "ecal/scale"); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("snapshot-direct", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := snap.Lookup("ecal/scale"); err != nil {
				b.Fatal(err)
			}
		}
	})
}
