package conditions

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"daspos/internal/resilience"
)

// This file implements the degradation half of the paper's §3.2 duality:
// most experiments resolve conditions through a live database service,
// while ALICE ships a flat snapshot file with the data. A ServiceClient
// uses both — service mode while the service is healthy, transparent
// fallback to the last-good snapshot when it is not — so a reconstruction
// or reinterpretation job survives a conditions outage instead of dying
// mid-run. The breaker keeps a dead service from stalling every lookup on
// its timeout.

// Resolver resolves conditions lookups, possibly over a network. The live
// *DB satisfies it through DBResolver; internal/faults wraps a Resolver to
// inject outages, latency, and flapping for chaos tests.
type Resolver interface {
	Lookup(ctx context.Context, folder, tag string, run uint32) (Payload, error)
}

// DBResolver adapts a local *DB to the Resolver interface, honouring
// context cancellation the way a remote client would.
type DBResolver struct {
	DB *DB
}

// Lookup implements Resolver.
func (r DBResolver) Lookup(ctx context.Context, folder, tag string, run uint32) (Payload, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r.DB.Lookup(folder, tag, run)
}

// ClientStats counts where lookups were served from.
type ClientStats struct {
	// ServiceHits are lookups answered by the live service.
	ServiceHits uint64
	// SnapshotHits are lookups served from the snapshot or the last-good
	// cache while the service was failing or the breaker was open.
	SnapshotHits uint64
	// ServiceFailures are service calls that errored or timed out.
	ServiceFailures uint64
	// BreakerState is the breaker's admission mode at snapshot time.
	BreakerState resilience.BreakerState
}

// ClientConfig tunes a ServiceClient. The zero value gets sane defaults.
type ClientConfig struct {
	// Timeout bounds each service lookup. Values <= 0 mean 100ms.
	Timeout time.Duration
	// Breaker configures the circuit breaker guarding the service.
	Breaker resilience.BreakerConfig
}

// ServiceClient resolves conditions for one tag and run with graceful
// degradation: live service while healthy, last-good snapshot when not.
// Safe for concurrent use by reconstruction workers.
type ServiceClient struct {
	resolver Resolver
	tag      string
	run      uint32
	timeout  time.Duration
	breaker  *resilience.Breaker

	mu       sync.RWMutex
	snap     *Snapshot          // shipped baseline; may be nil
	lastGood map[string]Payload // per-folder freshest service answers
	stats    ClientStats
}

// NewServiceClient returns a client over the resolver for one tag and run.
// snap is the shipped baseline snapshot served when the service degrades;
// nil means lookups fail hard until the service has answered at least once
// per folder.
func NewServiceClient(r Resolver, tag string, run uint32, snap *Snapshot, cfg ClientConfig) *ServiceClient {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 100 * time.Millisecond
	}
	return &ServiceClient{
		resolver: r,
		tag:      tag,
		run:      run,
		timeout:  cfg.Timeout,
		breaker:  resilience.NewBreaker(cfg.Breaker),
		snap:     snap,
		lastGood: make(map[string]Payload),
	}
}

// isAuthoritativeMiss reports whether the error is the service saying "no
// such data" — an answer, not a fault, so it neither trips the breaker nor
// falls back to the snapshot (the snapshot would be staler, not wiser).
func isAuthoritativeMiss(err error) bool {
	return errors.Is(err, ErrNoFolder) || errors.Is(err, ErrNoTag) || errors.Is(err, ErrNoIoV)
}

// Lookup resolves a folder: through the live service while the breaker
// admits calls, from the last-good cache or snapshot when the service
// fails, times out, or the breaker is open.
func (c *ServiceClient) Lookup(ctx context.Context, folder string) (Payload, error) {
	if c.breaker.Allow() {
		cctx, cancel := context.WithTimeout(ctx, c.timeout)
		p, err := c.resolver.Lookup(cctx, folder, c.tag, c.run)
		cancel()
		switch {
		case err == nil:
			c.breaker.Success()
			c.mu.Lock()
			c.stats.ServiceHits++
			c.lastGood[folder] = p.clone()
			c.mu.Unlock()
			return p, nil
		case isAuthoritativeMiss(err):
			// The service answered; the data genuinely is not there.
			c.breaker.Success()
			c.mu.Lock()
			c.stats.ServiceHits++
			c.mu.Unlock()
			return nil, err
		default:
			// Fault: count it against the breaker and degrade.
			c.breaker.Failure()
			c.mu.Lock()
			c.stats.ServiceFailures++
			c.mu.Unlock()
			if ctx.Err() != nil {
				// The caller's own context died; degradation cannot help.
				return nil, ctx.Err()
			}
		}
	}
	return c.degraded(folder)
}

// degraded serves a folder from the last-good cache, then the snapshot.
func (c *ServiceClient) degraded(folder string) (Payload, error) {
	c.mu.Lock()
	c.stats.SnapshotHits++
	p, ok := c.lastGood[folder]
	snap := c.snap
	c.mu.Unlock()
	if ok {
		return p.clone(), nil
	}
	if snap != nil {
		return snap.Lookup(folder)
	}
	return nil, fmt.Errorf("%w: %q (service degraded, no snapshot)", ErrNoFolder, folder)
}

// Degraded reports whether lookups are currently being served from the
// snapshot (breaker not closed).
func (c *ServiceClient) Degraded() bool {
	return c.breaker.State() != resilience.Closed
}

// UpdateSnapshot replaces the baseline snapshot, e.g. after shipping a
// fresh one while the service is healthy.
func (c *ServiceClient) UpdateSnapshot(s *Snapshot) {
	c.mu.Lock()
	c.snap = s
	c.mu.Unlock()
}

// Stats snapshots the serving counters.
func (c *ServiceClient) Stats() ClientStats {
	c.mu.RLock()
	st := c.stats
	c.mu.RUnlock()
	st.BreakerState = c.breaker.State()
	return st
}

// Breaker exposes the underlying breaker for tests and status reports.
func (c *ServiceClient) Breaker() *resilience.Breaker { return c.breaker }
