// Package node implements one storage node of the preservation network:
// a cas.Backend served over a small HTTP wire protocol (streaming blob
// put/get, stat, node-local fixity verification, and range-bounded digest
// listing for anti-entropy sweeps).
//
// DPHEP frames sustainable preservation as a global, multi-site effort —
// no single machine is the archive. A node is therefore deliberately dumb:
// it stores marker-framed blobs exactly as the local CAS would, verifies
// fixity at its own trust boundary (a corrupt-on-the-wire write is refused
// with 422 before it can ever be served), and leaves placement, quorum,
// and repair to the cluster client above it. Every handler honours the
// request context, so a dying client or a draining server never wedges a
// node.
//
// Wire protocol (all blob bodies are the marker-framed stored form, with
// the logical payload size in the X-Daspos-Logical header):
//
//	GET    /v1/health          → 200 {"id":..,"blobs":N}
//	GET    /v1/digests?start=&end=&limit=  → 200 sorted JSON digest list in [start,end)
//	PUT    /v1/blobs/{digest}  → 204; 422 when the body fails fixity
//	GET    /v1/blobs/{digest}  → 200 body; 404 when absent
//	HEAD   /v1/blobs/{digest}  → 200/404
//	DELETE /v1/blobs/{digest}  → 204 (idempotent)
//	GET    /v1/verify/{digest} → 200 {"digest":..,"ok":..,"error":..}; 404 when absent
package node

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"daspos/internal/cas"
)

// LogicalHeader carries the uncompressed payload size of a blob body, so
// stores on both ends keep accurate logical statistics without inflating
// the blob.
const LogicalHeader = "X-Daspos-Logical"

// maxBlobBytes bounds one blob body; a put larger than this is rejected
// rather than ballooning node memory.
const maxBlobBytes = 1 << 30

// Node is one storage node: a raw blob backend plus the HTTP surface the
// cluster speaks to it.
type Node struct {
	id      string
	backend cas.Backend
}

// New returns a node with the given identity over the given backend; a nil
// backend gets a fresh sharded in-memory one.
func New(id string, backend cas.Backend) *Node {
	if backend == nil {
		backend = cas.NewShardedBackend(0)
	}
	return &Node{id: id, backend: backend}
}

// ID returns the node's identity — the name the placement ring hashes.
func (n *Node) ID() string { return n.id }

// Backend exposes the underlying blob storage (operational tooling and
// chaos tests reach through it).
func (n *Node) Backend() cas.Backend { return n.backend }

// Blobs returns the number of stored blobs.
func (n *Node) Blobs() int { return len(n.backend.Digests()) }

// Corrupt flips a byte of a stored blob — the bit-rot hook disaster drills
// drive against individual replicas.
func (n *Node) Corrupt(digest string) error {
	c, ok := n.backend.(cas.Corrupter)
	if !ok {
		return fmt.Errorf("node: backend %T does not support fault injection", n.backend)
	}
	return c.CorruptBlob(digest)
}

// Health is the health-endpoint document.
type Health struct {
	ID    string `json:"id"`
	Blobs int    `json:"blobs"`
}

// VerifyResult is the verify-endpoint document: the node-local fixity
// verdict for one blob, computed where the bytes live so an anti-entropy
// sweep does not pay blob transfer to learn a replica is healthy.
type VerifyResult struct {
	Digest string `json:"digest"`
	OK     bool   `json:"ok"`
	Error  string `json:"error,omitempty"`
}

// Handler returns the node's HTTP API.
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/health", n.handleHealth)
	mux.HandleFunc("GET /v1/digests", n.handleDigests)
	mux.HandleFunc("PUT /v1/blobs/{digest}", n.handlePut)
	mux.HandleFunc("GET /v1/blobs/{digest}", n.handleGet)
	mux.HandleFunc("DELETE /v1/blobs/{digest}", n.handleDelete)
	mux.HandleFunc("GET /v1/verify/{digest}", n.handleVerify)
	return mux
}

// validDigest bounds digest path elements to plausible lowercase-hex
// content addresses (the same 128-char ceiling cas.Load enforces).
func validDigest(d string) bool {
	if len(d) == 0 || len(d) > 128 {
		return false
	}
	for i := 0; i < len(d); i++ {
		c := d[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (n *Node) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, Health{ID: n.id, Blobs: n.Blobs()})
}

// handleDigests lists stored digests, optionally restricted to the
// half-open lexicographic range [start, end) with a result cap — the
// range walk anti-entropy sweeps page through.
func (n *Node) handleDigests(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	start, end := q.Get("start"), q.Get("end")
	limit := 0
	if s := q.Get("limit"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v < 0 {
			http.Error(w, "node: bad limit", http.StatusBadRequest)
			return
		}
		limit = v
	}
	var out []string
	for _, d := range n.backend.Digests() {
		if d < start || (end != "" && d >= end) {
			continue
		}
		out = append(out, d)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	if out == nil {
		out = []string{}
	}
	writeJSON(w, http.StatusOK, out)
}

// handlePut ingests one blob. The body is the marker-framed stored form;
// the node decodes and rehashes it before acknowledging, so a payload
// corrupted on the wire (or by a lying client) is refused with 422 instead
// of poisoning the replica set.
func (n *Node) handlePut(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if !validDigest(digest) {
		http.Error(w, "node: invalid digest", http.StatusBadRequest)
		return
	}
	logical, err := strconv.ParseInt(r.Header.Get(LogicalHeader), 10, 64)
	if err != nil || logical < 0 {
		http.Error(w, "node: missing or bad "+LogicalHeader+" header", http.StatusBadRequest)
		return
	}
	comp, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBlobBytes))
	if err != nil {
		http.Error(w, "node: reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if _, derr := cas.DecodeBlob(digest, comp); derr != nil {
		http.Error(w, "node: refused: "+derr.Error(), http.StatusUnprocessableEntity)
		return
	}
	if err := n.backend.PutBlob(digest, comp, logical); err != nil {
		http.Error(w, "node: storing: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleGet streams one stored blob (HEAD is the stat form: headers only).
// The node serves its bytes as they are — fixity is judged by the caller,
// so a corrupt replica is visible to read-repair instead of masked.
func (n *Node) handleGet(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if !validDigest(digest) {
		http.Error(w, "node: invalid digest", http.StatusBadRequest)
		return
	}
	comp, logical, err := n.backend.GetBlob(digest)
	if err != nil {
		if errors.Is(err, cas.ErrNotFound) {
			http.Error(w, "node: not found: "+digest, http.StatusNotFound)
			return
		}
		http.Error(w, "node: reading: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(LogicalHeader, strconv.FormatInt(logical, 10))
	w.Header().Set("Content-Length", strconv.Itoa(len(comp)))
	if r.Method == http.MethodHead {
		return
	}
	_, _ = w.Write(comp)
}

func (n *Node) handleDelete(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if !validDigest(digest) {
		http.Error(w, "node: invalid digest", http.StatusBadRequest)
		return
	}
	n.backend.DeleteBlob(digest)
	w.WriteHeader(http.StatusNoContent)
}

// handleVerify runs the node-local fixity check: decode and rehash where
// the bytes live, shipping only the verdict.
func (n *Node) handleVerify(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if !validDigest(digest) {
		http.Error(w, "node: invalid digest", http.StatusBadRequest)
		return
	}
	comp, _, err := n.backend.GetBlob(digest)
	if err != nil {
		if errors.Is(err, cas.ErrNotFound) {
			http.Error(w, "node: not found: "+digest, http.StatusNotFound)
			return
		}
		http.Error(w, "node: reading: "+err.Error(), http.StatusInternalServerError)
		return
	}
	res := VerifyResult{Digest: digest, OK: true}
	if _, derr := cas.DecodeBlob(digest, comp); derr != nil {
		res.OK = false
		res.Error = derr.Error()
	}
	writeJSON(w, http.StatusOK, res)
}
