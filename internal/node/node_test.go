package node

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"daspos/internal/cas"
)

// startNode spins one node over httptest and returns it with its base URL.
func startNode(t *testing.T, id string) (*Node, string) {
	t.Helper()
	n := New(id, cas.NewMemBackend())
	srv := httptest.NewServer(n.Handler())
	t.Cleanup(srv.Close)
	return n, srv.URL
}

// putBlob pushes a payload through the wire protocol and returns its
// digest and stored form.
func putBlob(t *testing.T, base string, payload []byte) (string, []byte) {
	t.Helper()
	digest := cas.Digest(payload)
	comp, err := cas.EncodeBlob(payload)
	if err != nil {
		t.Fatalf("EncodeBlob: %v", err)
	}
	req, err := http.NewRequest(http.MethodPut, base+"/v1/blobs/"+digest, bytes.NewReader(comp))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(LogicalHeader, strconv.Itoa(len(payload)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("put: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("put status %d: %s", resp.StatusCode, body)
	}
	return digest, comp
}

func TestPutGetRoundTrip(t *testing.T) {
	_, base := startNode(t, "n1")
	payload := bytes.Repeat([]byte("preserved event data "), 100)
	digest, comp := putBlob(t, base, payload)

	resp, err := http.Get(base + "/v1/blobs/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(LogicalHeader); got != strconv.Itoa(len(payload)) {
		t.Fatalf("logical header %q, want %d", got, len(payload))
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, comp) {
		t.Fatalf("served blob differs from stored form")
	}
	data, err := cas.DecodeBlob(digest, body)
	if err != nil {
		t.Fatalf("served blob fails fixity: %v", err)
	}
	if !bytes.Equal(data, payload) {
		t.Fatal("payload round-trip mismatch")
	}
}

func TestPutRejectsWireCorruption(t *testing.T) {
	n, base := startNode(t, "n1")
	payload := bytes.Repeat([]byte("x"), 4096)
	digest := cas.Digest(payload)
	comp, err := cas.EncodeBlob(payload)
	if err != nil {
		t.Fatal(err)
	}
	comp[len(comp)/2] ^= 0xFF // corrupt in flight
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/blobs/"+digest, bytes.NewReader(comp))
	req.Header.Set(LogicalHeader, strconv.Itoa(len(payload)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt put status %d, want 422", resp.StatusCode)
	}
	if n.Blobs() != 0 {
		t.Fatalf("corrupt blob was stored: %d blobs", n.Blobs())
	}
}

func TestPutRequiresLogicalHeader(t *testing.T) {
	_, base := startNode(t, "n1")
	payload := []byte("small")
	comp, _ := cas.EncodeBlob(payload)
	req, _ := http.NewRequest(http.MethodPut, base+"/v1/blobs/"+cas.Digest(payload), bytes.NewReader(comp))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("headerless put status %d, want 400", resp.StatusCode)
	}
}

func TestStatAndDelete(t *testing.T) {
	_, base := startNode(t, "n1")
	digest, _ := putBlob(t, base, []byte("stat me"))

	resp, err := http.Head(base + "/v1/blobs/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("head status %d", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/blobs/"+digest, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", resp.StatusCode)
	}

	resp, err = http.Head(base + "/v1/blobs/" + digest)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("head after delete status %d, want 404", resp.StatusCode)
	}
}

func TestVerifyReportsBitRot(t *testing.T) {
	n, base := startNode(t, "n1")
	digest, _ := putBlob(t, base, bytes.Repeat([]byte("rot"), 2048))

	var res VerifyResult
	getJSON(t, base+"/v1/verify/"+digest, &res)
	if !res.OK {
		t.Fatalf("fresh blob reported corrupt: %s", res.Error)
	}

	if err := n.Corrupt(digest); err != nil {
		t.Fatalf("Corrupt: %v", err)
	}
	getJSON(t, base+"/v1/verify/"+digest, &res)
	if res.OK {
		t.Fatal("bit-rotted blob reported healthy")
	}
	if res.Error == "" {
		t.Fatal("corrupt verdict carries no error detail")
	}
}

func TestDigestRangeListing(t *testing.T) {
	_, base := startNode(t, "n1")
	var digests []string
	for i := 0; i < 20; i++ {
		d, _ := putBlob(t, base, []byte(fmt.Sprintf("blob %d", i)))
		digests = append(digests, d)
	}

	var all []string
	getJSON(t, base+"/v1/digests", &all)
	if len(all) != 20 {
		t.Fatalf("full listing: %d digests, want 20", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatal("listing not sorted")
		}
	}

	// Walking the 16 hex-prefix ranges must partition the full set.
	var walked []string
	for _, r := range [][2]string{
		{"", "1"}, {"1", "2"}, {"2", "3"}, {"3", "4"}, {"4", "5"}, {"5", "6"},
		{"6", "7"}, {"7", "8"}, {"8", "9"}, {"9", "a"}, {"a", "b"}, {"b", "c"},
		{"c", "d"}, {"d", "e"}, {"e", "f"}, {"f", ""},
	} {
		var page []string
		getJSON(t, base+"/v1/digests?start="+r[0]+"&end="+r[1], &page)
		walked = append(walked, page...)
	}
	if len(walked) != len(all) {
		t.Fatalf("range walk covers %d digests, want %d", len(walked), len(all))
	}
	for i, d := range walked {
		if d != all[i] {
			t.Fatalf("range walk order diverges at %d", i)
		}
	}

	var limited []string
	getJSON(t, base+"/v1/digests?limit=5", &limited)
	if len(limited) != 5 {
		t.Fatalf("limited listing: %d, want 5", len(limited))
	}
}

func TestHealth(t *testing.T) {
	_, base := startNode(t, "the-node")
	putBlob(t, base, []byte("one"))
	var h Health
	getJSON(t, base+"/v1/health", &h)
	if h.ID != "the-node" || h.Blobs != 1 {
		t.Fatalf("health = %+v", h)
	}
}

func TestInvalidDigestRejected(t *testing.T) {
	_, base := startNode(t, "n1")
	for _, bad := range []string{"UPPER", "zz", "../etc"} {
		resp, err := http.Get(base + "/v1/blobs/" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("digest %q status %d, want 400/404", bad, resp.StatusCode)
		}
	}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}
