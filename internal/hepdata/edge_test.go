package hepdata

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
)

// Edge cases of the uncertainty model and the CSV export: empty error
// lists, asymmetric-only components, zero-width bins — the shapes real
// HepData submissions contain and naive exporters break on.

func TestTotalErrorEdgeCases(t *testing.T) {
	// Empty error list is exactly zero, not NaN.
	if got := (Point{Y: 3}).TotalError(); got != 0 {
		t.Fatalf("no-error point: %v", got)
	}
	// Asymmetric-only component: symmetric average before quadrature.
	p := Point{Y: 10, Errors: []Uncertainty{{Label: "sys", Plus: 0.3, Minus: 0.1}}}
	if got, want := p.TotalError(), 0.2; math.Abs(got-want) > 1e-12 {
		t.Fatalf("asymmetric-only: %v want %v", got, want)
	}
	// Mixed symmetric and asymmetric components combine in quadrature.
	p.Errors = append(p.Errors, Uncertainty{Label: "stat", Plus: 0.4, Minus: 0.4})
	want := math.Sqrt(0.2*0.2 + 0.4*0.4)
	if got := p.TotalError(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("mixed: %v want %v", got, want)
	}
	// A zero-valued component contributes nothing.
	p.Errors = append(p.Errors, Uncertainty{Label: "lumi"})
	if got := p.TotalError(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("zero component moved the total: %v", got)
	}
}

func TestCSVEdgeCases(t *testing.T) {
	tab := Table{
		Name:    "Edge",
		XHeader: "M [GEV]",
		YHeader: "SIG [PB]",
		Points: []Point{
			// Zero-width bin: xlo == x == xhi, a threshold measurement.
			{X: 91.2, XLo: 91.2, XHi: 91.2, Y: 41.5, Errors: []Uncertainty{{Label: "stat", Plus: 0.3, Minus: 0.3}}},
			// No uncertainties at all.
			{X: 100, XLo: 95, XHi: 105, Y: 12},
			// Asymmetric only.
			{X: 120, XLo: 110, XHi: 130, Y: 2, Errors: []Uncertainty{{Label: "sys", Plus: 0.6, Minus: 0.2}}},
		},
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(tab.CSV(), "\n"), "\n")
	rows := lines[len(lines)-3:]
	if rows[0] != "91.2,91.2,91.2,41.5,0.3" {
		t.Fatalf("zero-width bin row: %q", rows[0])
	}
	if rows[1] != "95,100,105,12,0" {
		t.Fatalf("error-free row: %q", rows[1])
	}
	if rows[2] != "110,120,130,2,0.4" {
		t.Fatalf("asymmetric row: %q", rows[2])
	}
}

// TestArchiveConcurrentAccess hammers the archive from writers and
// readers at once; run with -race. Reads must always see a consistent
// sorted listing and never a torn record.
func TestArchiveConcurrentAccess(t *testing.T) {
	a := NewArchive()
	const writers, perWriter = 4, 25
	var wg, writerWg sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWg.Add(1)
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < perWriter; i++ {
				rec := &Record{
					InspireID:     fmt.Sprintf("%d%03d", w+1, i),
					Title:         "Concurrent submission",
					Collaboration: "DASPOS-GPD",
					Tables: []Table{{
						Name:   "T",
						Points: []Point{{X: 1, XLo: 0, XHi: 2, Y: 1}},
					}},
				}
				if err := a.Submit(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent reader: listings stay sorted mid-write
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			ids := a.IDsAfter("", 1000)
			if !sort.StringsAreSorted(ids) {
				t.Error("listing unsorted under concurrent writes")
				return
			}
			a.Search("concurrent")
		}
	}()
	writerWg.Wait()
	close(stop)
	wg.Wait()
	if a.Len() != writers*perWriter {
		t.Fatalf("archive has %d records", a.Len())
	}
	// Submit deep-copies: mutating the caller's record afterwards must not
	// reach the archived copy.
	rec := &Record{
		InspireID:     "7777777",
		Title:         "Original title",
		Collaboration: "DASPOS-GPD",
		Tables:        []Table{{Name: "T", Points: []Point{{X: 1, XLo: 0, XHi: 2, Y: 5}}}},
	}
	if err := a.Submit(rec); err != nil {
		t.Fatal(err)
	}
	rec.Title = "Mutated"
	rec.Tables[0].Points[0].Y = -1
	got, err := a.Get("ins7777777")
	if err != nil {
		t.Fatal(err)
	}
	if got.Title != "Original title" || got.Tables[0].Points[0].Y != 5 {
		t.Fatalf("archived record shares memory with the caller: %+v", got)
	}
}

// TestIDsAfterKeyset pins the keyset-listing primitive: strictly-after
// semantics, stable order, and exact page boundaries.
func TestIDsAfterKeyset(t *testing.T) {
	a := NewArchive()
	for _, id := range []string{"300", "100", "200", "500", "400"} {
		rec := &Record{
			InspireID:     id,
			Title:         "t",
			Collaboration: "DASPOS-GPD",
			Tables:        []Table{{Name: "T", Points: []Point{{X: 1, XLo: 0, XHi: 2, Y: 1}}}},
		}
		if err := a.Submit(rec); err != nil {
			t.Fatal(err)
		}
	}
	page1 := a.IDsAfter("", 2)
	if len(page1) != 2 || page1[0] != "ins100" || page1[1] != "ins200" {
		t.Fatalf("page 1: %v", page1)
	}
	page2 := a.IDsAfter(page1[1], 2)
	if len(page2) != 2 || page2[0] != "ins300" || page2[1] != "ins400" {
		t.Fatalf("page 2: %v", page2)
	}
	page3 := a.IDsAfter(page2[1], 2)
	if len(page3) != 1 || page3[0] != "ins500" {
		t.Fatalf("page 3: %v", page3)
	}
	// An anchor between keys resumes at the next one; an anchor past the
	// end returns nothing.
	if got := a.IDsAfter("ins250", 10); len(got) != 3 || got[0] != "ins300" {
		t.Fatalf("between-keys anchor: %v", got)
	}
	if got := a.IDsAfter("ins999", 10); len(got) != 0 {
		t.Fatalf("past-the-end anchor: %v", got)
	}
}
