package hepdata

import (
	"math"
	"strings"
	"testing"

	"daspos/internal/hist"
)

func zTable() Table {
	return Table{
		Name:        "Table1",
		Description: "Z cross section vs pT",
		XHeader:     "PT [GEV]",
		YHeader:     "D(SIG)/D(PT) [PB/GEV]",
		Reactions:   []string{"P P --> Z0 X"},
		Observables: []string{"DSIG/DPT"},
		Points: []Point{
			{X: 5, XLo: 0, XHi: 10, Y: 12.3, Errors: []Uncertainty{{Label: "stat", Plus: 0.5, Minus: 0.5}, {Label: "sys", Plus: 0.4, Minus: 0.3}}},
			{X: 15, XLo: 10, XHi: 20, Y: 6.1, Errors: []Uncertainty{{Label: "stat", Plus: 0.3, Minus: 0.3}}},
		},
	}
}

func searchRecord() *Record {
	return &Record{
		InspireID:     "1200001",
		Title:         "Measurement of the Z boson transverse momentum",
		Collaboration: "DASPOS-GPD",
		Year:          2013,
		Abstract:      "Differential cross sections for Z production.",
		Tables:        []Table{zTable()},
	}
}

func TestPointTotalError(t *testing.T) {
	p := zTable().Points[0]
	want := math.Sqrt(0.5*0.5 + 0.35*0.35)
	if math.Abs(p.TotalError()-want) > 1e-12 {
		t.Fatalf("total error %v want %v", p.TotalError(), want)
	}
	if (Point{}).TotalError() != 0 {
		t.Fatal("empty point error")
	}
}

func TestTableValidate(t *testing.T) {
	good := zTable()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := zTable()
	bad.Name = ""
	if err := bad.Validate(); err == nil {
		t.Fatal("nameless table validated")
	}
	bad2 := zTable()
	bad2.Points = nil
	if err := bad2.Validate(); err == nil {
		t.Fatal("empty table validated")
	}
	bad3 := zTable()
	bad3.Points[0].XLo = 7 // x=5 outside [7,10]
	if err := bad3.Validate(); err == nil {
		t.Fatal("inconsistent bin validated")
	}
	bad4 := zTable()
	bad4.Points[0].Errors[0].Plus = -1
	if err := bad4.Validate(); err == nil {
		t.Fatal("negative uncertainty validated")
	}
}

func TestCSVExport(t *testing.T) {
	tab := zTable()
	csv := tab.CSV()
	if !strings.Contains(csv, "xlo,x,xhi,y,err_total") {
		t.Fatalf("header missing:\n%s", csv)
	}
	if !strings.Contains(csv, "0,5,10,12.3,") {
		t.Fatalf("row missing:\n%s", csv)
	}
	if len(strings.Split(strings.TrimSpace(csv), "\n")) != 5 {
		t.Fatalf("row count:\n%s", csv)
	}
}

func TestFromH1D(t *testing.T) {
	h := hist.NewH1D("m", 4, 0, 8)
	h.Fill(1)
	h.Fill(3)
	h.Fill(3)
	tab := FromH1D(h, "TableH", "M [GEV]", "N")
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tab.Points) != 4 {
		t.Fatalf("points: %d", len(tab.Points))
	}
	if tab.Points[1].Y != 2 || tab.Points[1].X != 3 {
		t.Fatalf("point 1: %+v", tab.Points[1])
	}
	if tab.Points[1].TotalError() != math.Sqrt(2) {
		t.Fatalf("stat error: %v", tab.Points[1].TotalError())
	}
	if tab.Points[0].XLo != 0 || tab.Points[3].XHi != 8 {
		t.Fatal("bin edges wrong")
	}
}

func TestSubmitAndGet(t *testing.T) {
	a := NewArchive()
	if err := a.Submit(searchRecord()); err != nil {
		t.Fatal(err)
	}
	r, err := a.Get("ins1200001")
	if err != nil {
		t.Fatal(err)
	}
	if r.Title == "" || r.InspireURL() != "https://inspirehep.net/record/1200001" {
		t.Fatalf("record: %+v", r)
	}
	if err := a.Submit(searchRecord()); err == nil {
		t.Fatal("duplicate submission accepted")
	}
	if _, err := a.Get("ins999"); err == nil {
		t.Fatal("phantom record")
	}
}

func TestSubmitValidation(t *testing.T) {
	a := NewArchive()
	r := searchRecord()
	r.InspireID = ""
	if err := a.Submit(r); err == nil {
		t.Fatal("record without Inspire ID accepted")
	}
	r2 := searchRecord()
	r2.Tables = append(r2.Tables, zTable()) // duplicate table name
	if err := a.Submit(r2); err == nil {
		t.Fatal("duplicate table names accepted")
	}
	r3 := searchRecord()
	r3.Tables = nil
	if err := a.Submit(r3); err == nil {
		t.Fatal("tableless record accepted")
	}
}

func TestTableLookup(t *testing.T) {
	a := NewArchive()
	_ = a.Submit(searchRecord())
	tab, err := a.Table("ins1200001", "Table1")
	if err != nil {
		t.Fatal(err)
	}
	if tab.XHeader != "PT [GEV]" {
		t.Fatalf("table: %+v", tab)
	}
	if _, err := a.Table("ins1200001", "TableX"); err == nil {
		t.Fatal("phantom table")
	}
}

func TestSearch(t *testing.T) {
	a := NewArchive()
	_ = a.Submit(searchRecord())
	r2 := searchRecord()
	r2.InspireID = "1300077"
	r2.Title = "Search for new resonances in dimuon events"
	r2.Tables[0].Reactions = []string{"P P --> ZPRIME X"}
	_ = a.Submit(r2)

	if got := a.Search("transverse momentum"); len(got) != 1 || got[0].InspireID != "1200001" {
		t.Fatalf("title search: %d", len(got))
	}
	if got := a.Search("zprime"); len(got) != 1 || got[0].InspireID != "1300077" {
		t.Fatalf("reaction search: %d", len(got))
	}
	if got := a.Search(""); len(got) != 2 {
		t.Fatalf("all: %d", len(got))
	}
	if got := a.Search("warp drive"); len(got) != 0 {
		t.Fatalf("miss: %d", len(got))
	}
}

func TestLargeSearchPayload(t *testing.T) {
	// The "ATLAS search analysis with a very large amount of information"
	// use case: tables plus bulky auxiliary files.
	r := searchRecord()
	r.InspireID = "1400001"
	r.Aux = map[string][]byte{
		"cutflows/signal_region.json": make([]byte, 200000),
		"efficiency/grid_m_vs_x.csv":  make([]byte, 500000),
		"likelihood/workspace.json":   make([]byte, 900000),
	}
	a := NewArchive()
	if err := a.Submit(r); err != nil {
		t.Fatal(err)
	}
	got, _ := a.Get("ins1400001")
	if got.AuxBytes() != 1600000 {
		t.Fatalf("aux bytes: %d", got.AuxBytes())
	}
}

func TestRecordJSONRoundTrip(t *testing.T) {
	r := searchRecord()
	r.Aux = map[string][]byte{"x.bin": {1, 2, 3}}
	data, err := EncodeRecord(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != r.ID() || len(got.Tables) != 1 || len(got.Aux["x.bin"]) != 3 {
		t.Fatal("round trip lost content")
	}
	if _, err := DecodeRecord([]byte("{bad")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := DecodeRecord([]byte(`{"inspire_id":"1","title":"t","collaboration":"c"}`)); err == nil {
		t.Fatal("invalid record decoded")
	}
}

func BenchmarkSubmitQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a := NewArchive()
		if err := a.Submit(searchRecord()); err != nil {
			b.Fatal(err)
		}
		if got := a.Search("Z boson"); len(got) != 1 {
			b.Fatal("search failed")
		}
	}
}

func TestToH1DRoundTrip(t *testing.T) {
	h := hist.NewH1D("spec", 20, 0, 100)
	for i := 0; i < 20; i++ {
		h.FillW(float64(i*5)+1, float64(40-i))
	}
	tab := FromH1D(h, "spec", "X", "Y")
	back, err := tab.ToH1D()
	if err != nil {
		t.Fatal(err)
	}
	if back.NBins != h.NBins || back.Lo != h.Lo || back.Hi != h.Hi {
		t.Fatalf("binning: %+v", back)
	}
	for i := 0; i < h.NBins; i++ {
		if math.Abs(back.SumW[i]-h.SumW[i]) > 1e-12 {
			t.Fatalf("bin %d content %v vs %v", i, back.SumW[i], h.SumW[i])
		}
		if math.Abs(back.BinError(i)-h.BinError(i)) > 1e-9 {
			t.Fatalf("bin %d error %v vs %v", i, back.BinError(i), h.BinError(i))
		}
	}
}

func TestToH1DRejectsIrregularBinning(t *testing.T) {
	tab := zTable() // bins 0-10 and 10-20: uniform, should pass
	if _, err := tab.ToH1D(); err != nil {
		t.Fatal(err)
	}
	gap := zTable()
	gap.Points[1].XLo, gap.Points[1].X, gap.Points[1].XHi = 15, 18, 25
	if _, err := gap.ToH1D(); err == nil {
		t.Fatal("non-contiguous bins accepted")
	}
	uneven := zTable()
	uneven.Points[1].XHi = 40
	if _, err := uneven.ToH1D(); err == nil {
		t.Fatal("non-uniform bins accepted")
	}
	empty := Table{Name: "x"}
	if _, err := empty.ToH1D(); err == nil {
		t.Fatal("empty table converted")
	}
}
