// Package hepdata implements the HepData-style reactions database of
// §2.3: a public archive of published measurement tables — "total and
// differential cross section measurements to acceptance/efficiency grids
// in mass parameter spaces" — cross-linked to the literature (INSPIRE)
// and exportable in multiple formats. It also supports the use case the
// workshop highlighted as stretching the original design: a search
// analysis uploading a large auxiliary payload (cut flows, efficiency
// grids, likelihood inputs) alongside its tables.
package hepdata

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"

	"daspos/internal/hist"
)

// Uncertainty is one (possibly asymmetric) error component on a point.
type Uncertainty struct {
	// Label names the component ("stat", "sys,lumi", ...).
	Label string `json:"label"`
	// Plus and Minus are the up/down magnitudes (both >= 0).
	Plus  float64 `json:"plus"`
	Minus float64 `json:"minus"`
}

// Point is one row of a data table.
type Point struct {
	// X is the independent-variable value; [XLo, XHi] its bin.
	X   float64 `json:"x"`
	XLo float64 `json:"x_lo"`
	XHi float64 `json:"x_hi"`
	// Y is the measured value.
	Y float64 `json:"y"`
	// Errors are the uncertainty components on Y.
	Errors []Uncertainty `json:"errors,omitempty"`
}

// TotalError returns the quadrature sum of the point's symmetric-averaged
// uncertainty components.
func (p Point) TotalError() float64 {
	var sum2 float64
	for _, e := range p.Errors {
		avg := (e.Plus + e.Minus) / 2
		sum2 += avg * avg
	}
	return math.Sqrt(sum2)
}

// Table is one measurement table of a record.
type Table struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	// XHeader and YHeader document the variables in the HepData
	// convention, e.g. "PT [GEV]" and "D(SIG)/D(PT) [PB/GEV]".
	XHeader string `json:"x_header"`
	YHeader string `json:"y_header"`
	// Reactions are the process strings, e.g. "P P --> Z0 X".
	Reactions []string `json:"reactions,omitempty"`
	// Observables label what is measured ("SIG", "DSIG/DPT", "EFF").
	Observables []string `json:"observables,omitempty"`
	Points      []Point  `json:"points"`
}

// Validate checks the table's structural invariants.
func (t *Table) Validate() error {
	if t.Name == "" {
		return fmt.Errorf("hepdata: table without a name")
	}
	if len(t.Points) == 0 {
		return fmt.Errorf("hepdata: table %q has no points", t.Name)
	}
	for i, p := range t.Points {
		if p.XLo > p.X || p.X > p.XHi {
			return fmt.Errorf("hepdata: table %q point %d: x=%v outside bin [%v,%v]", t.Name, i, p.X, p.XLo, p.XHi)
		}
		for _, e := range p.Errors {
			if e.Plus < 0 || e.Minus < 0 {
				return fmt.Errorf("hepdata: table %q point %d: negative uncertainty", t.Name, i)
			}
		}
	}
	return nil
}

// CSV renders the table with one uncertainty column per labelled
// component (quadrature total when labels vary by point).
func (t *Table) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n# %s\n", t.Name, t.Description)
	fmt.Fprintf(&b, "xlo,x,xhi,y,err_total\n")
	for _, p := range t.Points {
		fmt.Fprintf(&b, "%g,%g,%g,%g,%g\n", p.XLo, p.X, p.XHi, p.Y, p.TotalError())
	}
	return b.String()
}

// FromH1D converts a normalized histogram (a preserved analysis output)
// into a submission table, with statistical errors.
func FromH1D(h *hist.H1D, name, xHeader, yHeader string) Table {
	t := Table{Name: name, XHeader: xHeader, YHeader: yHeader}
	w := h.BinWidth()
	for i := 0; i < h.NBins; i++ {
		lo := h.Lo + float64(i)*w
		t.Points = append(t.Points, Point{
			X: h.BinCenter(i), XLo: lo, XHi: lo + w,
			Y:      h.SumW[i],
			Errors: []Uncertainty{{Label: "stat", Plus: h.BinError(i), Minus: h.BinError(i)}},
		})
	}
	return t
}

// ToH1D converts a uniformly binned table back into a histogram, the
// inverse of FromH1D: how a RIVET-style analysis turns an archived HepData
// table into reference data. It fails when the binning is not contiguous
// and uniform within tolerance.
func (t *Table) ToH1D() (*hist.H1D, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := len(t.Points)
	width := t.Points[0].XHi - t.Points[0].XLo
	if width <= 0 {
		return nil, fmt.Errorf("hepdata: table %q has non-positive bin width", t.Name)
	}
	for i, p := range t.Points {
		if math.Abs((p.XHi-p.XLo)-width) > 1e-9*width {
			return nil, fmt.Errorf("hepdata: table %q bin %d not uniform", t.Name, i)
		}
		if i > 0 && math.Abs(p.XLo-t.Points[i-1].XHi) > 1e-9*width {
			return nil, fmt.Errorf("hepdata: table %q bins not contiguous at %d", t.Name, i)
		}
	}
	h := hist.NewH1D(t.Name, n, t.Points[0].XLo, t.Points[n-1].XHi)
	for i, p := range t.Points {
		h.SumW[i] = p.Y
		e := p.TotalError()
		h.SumW2[i] = e * e
	}
	h.Entries = int64(n)
	return h, nil
}

// Record is one publication's HepData entry.
type Record struct {
	// InspireID is the literature key; the archive addresses records as
	// "ins<InspireID>".
	InspireID     string  `json:"inspire_id"`
	Title         string  `json:"title"`
	Collaboration string  `json:"collaboration"`
	Year          int     `json:"year"`
	Abstract      string  `json:"abstract,omitempty"`
	Tables        []Table `json:"tables"`
	// Aux carries the auxiliary payload by path: the "large amount of
	// information uploaded" search-preservation use case.
	Aux map[string][]byte `json:"aux,omitempty"`
}

// ID returns the archive key.
func (r *Record) ID() string { return "ins" + r.InspireID }

// InspireURL returns the literature cross-link.
func (r *Record) InspireURL() string {
	return "https://inspirehep.net/record/" + r.InspireID
}

// Validate checks the record.
func (r *Record) Validate() error {
	if r.InspireID == "" {
		return fmt.Errorf("hepdata: record without Inspire ID")
	}
	if r.Title == "" || r.Collaboration == "" {
		return fmt.Errorf("hepdata: record %s missing title or collaboration", r.ID())
	}
	if len(r.Tables) == 0 {
		return fmt.Errorf("hepdata: record %s has no tables", r.ID())
	}
	seen := make(map[string]bool)
	for i := range r.Tables {
		t := &r.Tables[i]
		if err := t.Validate(); err != nil {
			return err
		}
		if seen[t.Name] {
			return fmt.Errorf("hepdata: record %s has duplicate table %q", r.ID(), t.Name)
		}
		seen[t.Name] = true
	}
	return nil
}

// AuxBytes returns the total auxiliary payload size.
func (r *Record) AuxBytes() int {
	n := 0
	for _, b := range r.Aux {
		n += len(b)
	}
	return n
}

// Clone returns a deep copy of the record: tables, points, error
// components, and auxiliary payloads all get fresh backing storage, so
// mutating the original after submission cannot reach archived state.
func (r *Record) Clone() *Record {
	cp := *r
	cp.Tables = make([]Table, len(r.Tables))
	for i, t := range r.Tables {
		ct := t
		ct.Reactions = append([]string(nil), t.Reactions...)
		ct.Observables = append([]string(nil), t.Observables...)
		ct.Points = make([]Point, len(t.Points))
		for j, p := range t.Points {
			pp := p
			pp.Errors = append([]Uncertainty(nil), p.Errors...)
			ct.Points[j] = pp
		}
		cp.Tables[i] = ct
	}
	if r.Aux != nil {
		cp.Aux = make(map[string][]byte, len(r.Aux))
		for k, v := range r.Aux {
			cp.Aux[k] = append([]byte(nil), v...)
		}
	}
	return &cp
}

// ErrNoRecord is returned for unknown record IDs.
var ErrNoRecord = errors.New("hepdata: no such record")

// Archive is the reactions database. It is safe for concurrent use: reads
// take a shared lock, Submit deep-copies the record so later caller-side
// mutation cannot reach archived state, and returned *Record values are
// read-only by contract (the serving tier never mutates them).
type Archive struct {
	mu      sync.RWMutex
	records map[string]*Record
	// ids mirrors the map keys in sorted order, maintained on Submit, so
	// listings and keyset pagination are O(log n + page) instead of a full
	// sort per call.
	ids []string
}

// NewArchive returns an empty reactions database.
func NewArchive() *Archive {
	return &Archive{records: make(map[string]*Record)}
}

// Submit validates and stores a deep copy of the record.
func (a *Archive) Submit(r *Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	id := r.ID()
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, dup := a.records[id]; dup {
		return fmt.Errorf("hepdata: record %s already submitted", id)
	}
	a.records[id] = r.Clone()
	at := sort.SearchStrings(a.ids, id)
	a.ids = append(a.ids, "")
	copy(a.ids[at+1:], a.ids[at:])
	a.ids[at] = id
	return nil
}

// Len returns the number of archived records.
func (a *Archive) Len() int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return len(a.records)
}

// Get returns a record by archive key ("ins<id>"). The returned record is
// shared and must not be mutated.
func (a *Archive) Get(id string) (*Record, error) {
	a.mu.RLock()
	r, ok := a.records[id]
	a.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoRecord, id)
	}
	return r, nil
}

// Table returns one named table of a record.
func (a *Archive) Table(id, table string) (*Table, error) {
	r, err := a.Get(id)
	if err != nil {
		return nil, err
	}
	for i := range r.Tables {
		if r.Tables[i].Name == table {
			return &r.Tables[i], nil
		}
	}
	return nil, fmt.Errorf("hepdata: record %s has no table %q", id, table)
}

// IDs returns the sorted record keys.
func (a *Archive) IDs() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return append([]string(nil), a.ids...)
}

// IDsAfter returns up to limit sorted record keys strictly greater than
// after (empty starts at the beginning; limit <= 0 means no bound). This
// is the keyset-pagination primitive: because keys are returned in sorted
// order from a strictly-greater anchor, a paginated walk sees every record
// that existed when it started exactly once, no matter how many records
// are published between pages.
func (a *Archive) IDsAfter(after string, limit int) []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	at := sort.SearchStrings(a.ids, after)
	// SearchStrings finds the leftmost insertion point; skip an exact match
	// so the anchor itself is excluded.
	if at < len(a.ids) && a.ids[at] == after {
		at++
	}
	end := len(a.ids)
	if limit > 0 && at+limit < end {
		end = at + limit
	}
	return append([]string(nil), a.ids[at:end]...)
}

// Search matches records whose title, collaboration, abstract, reactions,
// or observables contain the query (case-insensitive). Results come back
// in record-key order, so the listing is deterministic. This is the linear
// scan the queryserve inverted index replaces on the serving path; it
// remains the reference implementation and the benchmark baseline.
func (a *Archive) Search(query string) []*Record {
	q := strings.ToLower(query)
	a.mu.RLock()
	defer a.mu.RUnlock()
	var out []*Record
	for _, id := range a.ids {
		r := a.records[id]
		hay := strings.ToLower(r.Title + " " + r.Collaboration + " " + r.Abstract)
		for _, t := range r.Tables {
			hay += " " + strings.ToLower(strings.Join(t.Reactions, " "))
			hay += " " + strings.ToLower(strings.Join(t.Observables, " "))
		}
		if q == "" || strings.Contains(hay, q) {
			out = append(out, r)
		}
	}
	return out
}

// EncodeRecord serializes a record as submission JSON.
func EncodeRecord(r *Record) ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(r, "", "  ")
}

// DecodeRecord parses and validates submission JSON.
func DecodeRecord(data []byte) (*Record, error) {
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("hepdata: parsing record: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}
