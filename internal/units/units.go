// Package units defines the unit conventions and the PDG particle table
// shared by the DASPOS substrate.
//
// Conventions: energies and momenta in GeV, masses in GeV/c², lengths in
// millimetres, times in nanoseconds, magnetic fields in tesla. Particle
// species are identified by their PDG Monte Carlo numbering-scheme codes,
// the same identifiers the HepMC-style event record preserves on disk.
package units

import "fmt"

// Physical constants.
const (
	// SpeedOfLight is c in mm/ns.
	SpeedOfLight = 299.792458
	// GeV is the base energy unit; MeV and TeV are provided for clarity
	// when constructing thresholds.
	GeV = 1.0
	MeV = 1e-3 * GeV
	TeV = 1e3 * GeV
	// Millimetre and Nanosecond are the base length and time units.
	Millimetre = 1.0
	Nanosecond = 1.0
	Micrometre = 1e-3 * Millimetre
	Metre      = 1e3 * Millimetre
	Picosecond = 1e-3 * Nanosecond
)

// PDG codes for the particle species the toy generators and the detector
// simulation know about. Antiparticles carry the negated code.
const (
	PDGDown       = 1
	PDGUp         = 2
	PDGStrange    = 3
	PDGCharm      = 4
	PDGBottom     = 5
	PDGTop        = 6
	PDGElectron   = 11
	PDGNuE        = 12
	PDGMuon       = 13
	PDGNuMu       = 14
	PDGTau        = 15
	PDGNuTau      = 16
	PDGGluon      = 21
	PDGPhoton     = 22
	PDGZ          = 23
	PDGW          = 24
	PDGHiggs      = 25
	PDGZPrime     = 32
	PDGPiZero     = 111
	PDGPiPlus     = 211
	PDGKZeroShort = 310
	PDGKZeroLong  = 130
	PDGKPlus      = 321
	PDGDZero      = 421
	PDGDPlus      = 411
	PDGProton     = 2212
	PDGNeutron    = 2112
	PDGLambda     = 3122
)

// Particle describes one species in the PDG table.
type Particle struct {
	PDG      int
	Name     string
	Mass     float64 // GeV
	Charge   float64 // units of e
	Lifetime float64 // mean proper lifetime in ns; 0 = stable or prompt
	// Stable marks species the detector simulation treats as reaching the
	// detector (electrons, muons, photons, charged hadrons, neutrons,
	// K-long, and neutrinos, which escape unseen).
	Stable bool
}

var table = map[int]Particle{
	PDGDown:       {PDGDown, "d", 0.0047, -1.0 / 3, 0, false},
	PDGUp:         {PDGUp, "u", 0.0022, 2.0 / 3, 0, false},
	PDGStrange:    {PDGStrange, "s", 0.095, -1.0 / 3, 0, false},
	PDGCharm:      {PDGCharm, "c", 1.27, 2.0 / 3, 0, false},
	PDGBottom:     {PDGBottom, "b", 4.18, -1.0 / 3, 0, false},
	PDGTop:        {PDGTop, "t", 172.8, 2.0 / 3, 0, false},
	PDGElectron:   {PDGElectron, "e-", 0.000511, -1, 0, true},
	PDGNuE:        {PDGNuE, "nu_e", 0, 0, 0, true},
	PDGMuon:       {PDGMuon, "mu-", 0.10566, -1, 2197.0, true},
	PDGNuMu:       {PDGNuMu, "nu_mu", 0, 0, 0, true},
	PDGTau:        {PDGTau, "tau-", 1.77686, -1, 2.903e-4, false},
	PDGNuTau:      {PDGNuTau, "nu_tau", 0, 0, 0, true},
	PDGGluon:      {PDGGluon, "g", 0, 0, 0, false},
	PDGPhoton:     {PDGPhoton, "gamma", 0, 0, 0, true},
	PDGZ:          {PDGZ, "Z0", 91.1876, 0, 0, false},
	PDGW:          {PDGW, "W+", 80.377, 1, 0, false},
	PDGHiggs:      {PDGHiggs, "H0", 125.25, 0, 0, false},
	PDGZPrime:     {PDGZPrime, "Z'", 0, 0, 0, false}, // mass set per model
	PDGPiZero:     {PDGPiZero, "pi0", 0.13498, 0, 0, false},
	PDGPiPlus:     {PDGPiPlus, "pi+", 0.13957, 1, 26.03, true},
	PDGKZeroShort: {PDGKZeroShort, "K0_S", 0.49761, 0, 0.08954, false},
	PDGKZeroLong:  {PDGKZeroLong, "K0_L", 0.49761, 0, 51.16, true},
	PDGKPlus:      {PDGKPlus, "K+", 0.49368, 1, 12.38, true},
	PDGDZero:      {PDGDZero, "D0", 1.86484, 0, 4.101e-4, false},
	PDGDPlus:      {PDGDPlus, "D+", 1.86966, 1, 1.033e-3, false},
	PDGProton:     {PDGProton, "p", 0.93827, 1, 0, true},
	PDGNeutron:    {PDGNeutron, "n", 0.93957, 0, 879.4e9, true},
	PDGLambda:     {PDGLambda, "Lambda0", 1.11568, 0, 0.2632, false},
}

// Lookup returns the particle record for a PDG code. Antiparticle codes
// (negative) resolve to the particle record with charge negated and the
// name suffixed. The second return reports whether the species is known.
func Lookup(pdg int) (Particle, bool) {
	code := pdg
	anti := false
	if code < 0 {
		code = -code
		anti = true
	}
	p, ok := table[code]
	if !ok {
		return Particle{PDG: pdg, Name: fmt.Sprintf("pdg(%d)", pdg)}, false
	}
	if anti {
		p.PDG = pdg
		p.Charge = -p.Charge
		p.Name = antiName(p.Name)
	}
	return p, true
}

func antiName(name string) string {
	switch {
	case len(name) > 0 && name[len(name)-1] == '-':
		return name[:len(name)-1] + "+"
	case len(name) > 0 && name[len(name)-1] == '+':
		return name[:len(name)-1] + "-"
	default:
		return name + "~"
	}
}

// Mass returns the PDG mass for a code, or 0 for unknown species.
func Mass(pdg int) float64 {
	p, _ := Lookup(pdg)
	return p.Mass
}

// Charge returns the electric charge for a code in units of e.
func Charge(pdg int) float64 {
	p, _ := Lookup(pdg)
	return p.Charge
}

// Name returns the human-readable species name for a code.
func Name(pdg int) string {
	p, _ := Lookup(pdg)
	return p.Name
}

// IsStable reports whether the species reaches the detector rather than
// decaying promptly in simulation terms.
func IsStable(pdg int) bool {
	p, ok := Lookup(pdg)
	return ok && p.Stable
}

// IsNeutrino reports whether the code is a neutrino species (invisible to
// the detector; contributes to missing transverse momentum).
func IsNeutrino(pdg int) bool {
	switch pdg {
	case PDGNuE, -PDGNuE, PDGNuMu, -PDGNuMu, PDGNuTau, -PDGNuTau:
		return true
	}
	return false
}

// IsCharged reports whether the species carries electric charge.
func IsCharged(pdg int) bool { return Charge(pdg) != 0 }

// Known returns the PDG codes of all species in the table, for enumeration
// in tests and format documentation.
func Known() []int {
	out := make([]int, 0, len(table))
	for code := range table {
		out = append(out, code)
	}
	return out
}
