package units

import (
	"testing"
	"testing/quick"
)

func TestLookupKnown(t *testing.T) {
	p, ok := Lookup(PDGMuon)
	if !ok {
		t.Fatal("muon not found")
	}
	if p.Name != "mu-" || p.Charge != -1 {
		t.Fatalf("muon record: %+v", p)
	}
}

func TestLookupAntiparticle(t *testing.T) {
	p, ok := Lookup(-PDGMuon)
	if !ok {
		t.Fatal("anti-muon not found")
	}
	if p.Charge != 1 {
		t.Fatalf("anti-muon charge: %v", p.Charge)
	}
	if p.Name != "mu+" {
		t.Fatalf("anti-muon name: %v", p.Name)
	}
	if p.PDG != -PDGMuon {
		t.Fatalf("anti-muon pdg: %v", p.PDG)
	}
}

func TestLookupUnknown(t *testing.T) {
	p, ok := Lookup(999999)
	if ok {
		t.Fatal("unknown code reported as known")
	}
	if p.Name == "" {
		t.Fatal("unknown code must still get a placeholder name")
	}
}

func TestAntiNameConventions(t *testing.T) {
	cases := map[int]string{
		-PDGElectron: "e+",
		-PDGPiPlus:   "pi-",
		-PDGProton:   "p~",
		-PDGW:        "W-",
	}
	for code, want := range cases {
		if got := Name(code); got != want {
			t.Errorf("Name(%d)=%q want %q", code, got, want)
		}
	}
}

func TestChargeConjugationIsOdd(t *testing.T) {
	if err := quick.Check(func(idx uint8) bool {
		codes := Known()
		code := codes[int(idx)%len(codes)]
		return Charge(code) == -Charge(-code)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMassIsChargeConjugationEven(t *testing.T) {
	for _, code := range Known() {
		if Mass(code) != Mass(-code) {
			t.Errorf("mass of %d differs from antiparticle", code)
		}
	}
}

func TestNeutrinosInvisibleAndNeutral(t *testing.T) {
	for _, code := range []int{PDGNuE, PDGNuMu, PDGNuTau, -PDGNuE, -PDGNuMu, -PDGNuTau} {
		if !IsNeutrino(code) {
			t.Errorf("%d not flagged as neutrino", code)
		}
		if IsCharged(code) {
			t.Errorf("neutrino %d flagged as charged", code)
		}
	}
	if IsNeutrino(PDGMuon) {
		t.Error("muon flagged as neutrino")
	}
}

func TestStability(t *testing.T) {
	stable := []int{PDGElectron, PDGMuon, PDGPhoton, PDGPiPlus, PDGKPlus, PDGProton, PDGKZeroLong}
	for _, c := range stable {
		if !IsStable(c) {
			t.Errorf("%s should be detector-stable", Name(c))
		}
	}
	unstable := []int{PDGZ, PDGW, PDGHiggs, PDGDZero, PDGKZeroShort, PDGLambda, PDGTau, PDGPiZero}
	for _, c := range unstable {
		if IsStable(c) {
			t.Errorf("%s should not be detector-stable", Name(c))
		}
	}
}

func TestPhysicalMassOrdering(t *testing.T) {
	// Sanity anchors: the table must encode real PDG ordering, since the
	// master-class exercises reconstruct these resonances.
	if !(Mass(PDGZ) > Mass(PDGW)) {
		t.Error("mZ must exceed mW")
	}
	if !(Mass(PDGHiggs) > Mass(PDGZ)) {
		t.Error("mH must exceed mZ")
	}
	if !(Mass(PDGDZero) > Mass(PDGKPlus)) {
		t.Error("mD0 must exceed mK+")
	}
	if Mass(PDGPhoton) != 0 || Mass(PDGGluon) != 0 {
		t.Error("gauge bosons photon/gluon must be massless")
	}
}

func TestKnownCoversTable(t *testing.T) {
	codes := Known()
	if len(codes) < 20 {
		t.Fatalf("particle table suspiciously small: %d", len(codes))
	}
	for _, c := range codes {
		if _, ok := Lookup(c); !ok {
			t.Errorf("Known() returned unknown code %d", c)
		}
	}
}

func TestSpeedOfLight(t *testing.T) {
	// c·τ for the K0_S should be ~26.8 mm, a number the V0-finder master
	// class depends on.
	ctau := SpeedOfLight * 0.08954
	if ctau < 26 || ctau > 27.5 {
		t.Fatalf("K0_S ctau = %v mm, expected ~26.8", ctau)
	}
}
