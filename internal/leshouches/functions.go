package leshouches

import (
	"math"
	"sort"
	"sync"

	"daspos/internal/datamodel"
	"daspos/internal/stats"
)

// Encapsulated functions (Rec 1b: "well-encapsulated functions ...
// necessary to reproduce or use the results"). Functions are versioned by
// name in a global registry; analysis records reference them by name so a
// record stays valid as long as the platform carries the function — no
// analyst code needs preserving.

// Function is one registered, documented function over a float vector.
type Function struct {
	// Name is the registry key, including a version suffix when behaviour
	// changes, e.g. "effective_mass.v1".
	Name string
	// Doc states the contract unambiguously.
	Doc string
	// Arity is the required argument count; negative means variadic with
	// at least -Arity arguments.
	Arity int
	// Eval computes the function.
	Eval func(args []float64) float64
}

var (
	funcMu    sync.RWMutex
	functions = make(map[string]Function)
)

// RegisterFunction adds a function to the platform registry. It panics on
// duplicates: silently replacing an encapsulated function would corrupt
// every archived record referencing it.
func RegisterFunction(f Function) {
	funcMu.Lock()
	defer funcMu.Unlock()
	if _, dup := functions[f.Name]; dup {
		panic("leshouches: duplicate function " + f.Name)
	}
	functions[f.Name] = f
}

// LookupFunction resolves a registered function.
func LookupFunction(name string) (Function, bool) {
	funcMu.RLock()
	defer funcMu.RUnlock()
	f, ok := functions[name]
	return f, ok
}

// Functions returns the sorted registry keys.
func Functions() []string {
	funcMu.RLock()
	defer funcMu.RUnlock()
	out := make([]string, 0, len(functions))
	for n := range functions {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Call evaluates a registered function, checking arity.
func Call(name string, args ...float64) (float64, bool) {
	f, ok := LookupFunction(name)
	if !ok {
		return 0, false
	}
	if f.Arity >= 0 && len(args) != f.Arity {
		return 0, false
	}
	if f.Arity < 0 && len(args) < -f.Arity {
		return 0, false
	}
	return f.Eval(args), true
}

func init() {
	RegisterFunction(Function{
		Name:  "effective_mass.v1",
		Doc:   "Scalar sum of all arguments (object pTs plus MET), in GeV.",
		Arity: -1,
		Eval: func(args []float64) float64 {
			s := 0.0
			for _, a := range args {
				s += a
			}
			return s
		},
	})
	RegisterFunction(Function{
		Name:  "razor_mr.v1",
		Doc:   "sqrt((|p1|+|p2|)^2 - (pz1+pz2)^2) for args [p1,pz1,p2,pz2].",
		Arity: 4,
		Eval: func(a []float64) float64 {
			v := (a[0]+a[2])*(a[0]+a[2]) - (a[1]+a[3])*(a[1]+a[3])
			if v <= 0 {
				return 0
			}
			return math.Sqrt(v)
		},
	})
	RegisterFunction(Function{
		Name:  "significance_naive.v1",
		Doc:   "(n-b)/sqrt(b + db^2) for args [n, b, db].",
		Arity: 3,
		Eval:  func(a []float64) float64 { return stats.Significance(int(a[0]), a[1], a[2]) },
	})
	RegisterFunction(Function{
		Name:  "cls_upper_limit95.v1",
		Doc:   "95% CL CLs upper limit on signal events for args [nObs, background].",
		Arity: 2,
		Eval:  func(a []float64) float64 { return stats.UpperLimit(int(a[0]), a[1], 0.95) },
	})
}

// Reinterpretation is the theorist's use case: apply an archived record's
// selection to a new model's events and extract the constraint.
type Reinterpretation struct {
	// Analysis is the archived record applied.
	Analysis string
	// Generated and Selected count the new-model sample.
	Generated, Selected int
	// Acceptance is Selected/Generated.
	Acceptance float64
	// UpperLimitEvents is the 95% CL CLs limit on signal events given the
	// record's observed count and background.
	UpperLimitEvents float64
	// UpperLimitXsecPb is the limit divided by (acceptance × luminosity),
	// in picobarns, when luminosity (in /pb) is positive and acceptance
	// nonzero; 0 otherwise.
	UpperLimitXsecPb float64
}

// Reinterpret runs an archived analysis over new-model events and
// extracts the cross-section constraint — the theorist re-running "an
// analysis on a new model in order to understand what constraints
// existing data places on new physics ideas". luminosityPb is the
// integrated luminosity in inverse picobarns.
func Reinterpret(r *AnalysisRecord, events []*datamodel.Event, luminosityPb float64) (Reinterpretation, error) {
	out := Reinterpretation{Analysis: r.Name, Generated: len(events)}
	for _, e := range events {
		ok, err := r.Pass(e)
		if err != nil {
			return out, err
		}
		if ok {
			out.Selected++
		}
	}
	if out.Generated > 0 {
		out.Acceptance = float64(out.Selected) / float64(out.Generated)
	}
	out.UpperLimitEvents = stats.UpperLimit(r.ObservedEvents, r.Background, 0.95)
	if luminosityPb > 0 && out.Acceptance > 0 {
		out.UpperLimitXsecPb = out.UpperLimitEvents / (out.Acceptance * luminosityPb)
	}
	return out, nil
}

// ExpectedLimitBand computes the record's background-only expected 95% CL
// limit band (−1σ, median, +1σ) from pseudo-experiments: the number a
// search quotes beside its observed limit. Inject a deterministic Poisson
// deviate (e.g. xrand.Rand.Poisson) for reproducibility.
func (r *AnalysisRecord) ExpectedLimitBand(trials int, poissonDeviate func(mean float64) int) (lo, median, hi float64) {
	return stats.ExpectedLimits(r.Background, 0.95, trials, poissonDeviate)
}
