// Package leshouches implements the analysis database called for by the
// Les Houches recommendations the paper quotes (§2.3):
//
//	Rec. 1a — "basic object definitions and event selection should be
//	clearly displayed ... preferably in tabular form, and kinematic
//	variables utilized should be unambiguously defined."
//	Rec. 1b — "identify, develop and adopt a common platform to store
//	analysis databases, collecting object definitions, cuts, and all
//	other information, including well-encapsulated functions, necessary
//	to reproduce or use the results of the analyses."
//
// An AnalysisRecord is exactly that: named object definitions, an event
// selection over them expressed in a closed variable catalogue, efficiency
// grids over model-parameter planes, and references to encapsulated
// functions from a versioned registry. Records serialize to JSON, so the
// database preserves analyses "at the abstract level of analysis objects,
// rather than ... a specific code base".
package leshouches

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"daspos/internal/datamodel"
	"daspos/internal/fourvec"
)

// ObjectDefinition is one named physics-object selection (Rec 1a's
// "basic object definitions").
type ObjectDefinition struct {
	// Name is the handle cuts refer to, e.g. "signal_muon".
	Name string `json:"name"`
	// Type is the candidate type selected.
	Type datamodel.ObjectType `json:"type"`
	// MinPt and MaxAbsEta are the kinematic acceptance (GeV, unitless).
	MinPt     float64 `json:"min_pt"`
	MaxAbsEta float64 `json:"max_abs_eta,omitempty"`
	// MaxIsolation, when positive, is the maximum cone activity (GeV).
	MaxIsolation float64 `json:"max_isolation,omitempty"`
	// MinQuality, when positive, is the minimum identification score.
	MinQuality float64 `json:"min_quality,omitempty"`
}

// Select returns the event's candidates passing the definition, sorted by
// decreasing pT.
func (d ObjectDefinition) Select(e *datamodel.Event) []datamodel.Candidate {
	var out []datamodel.Candidate
	for _, c := range e.Candidates {
		if c.Type != d.Type {
			continue
		}
		if c.P.Pt() < d.MinPt {
			continue
		}
		if d.MaxAbsEta > 0 && math.Abs(c.P.Eta()) > d.MaxAbsEta {
			continue
		}
		if d.MaxIsolation > 0 && c.Isolation > d.MaxIsolation {
			continue
		}
		if d.MinQuality > 0 && c.Quality < d.MinQuality {
			continue
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].P.Pt() > out[j].P.Pt() })
	return out
}

// Cut is one event-selection requirement over defined objects. The
// variable grammar is closed and documented (Rec 1a's "unambiguously
// defined"):
//
//	count:<obj>        number of selected <obj>
//	leading_pt:<obj>   pT of the leading <obj> (0 if none)
//	inv_mass:<obj>     invariant mass of the two leading <obj> (0 if <2)
//	os_pair:<obj>      1 if the two leading <obj> have opposite charge
//	mt:<obj>           transverse mass of leading <obj> and MET
//	met                missing transverse momentum
type Cut struct {
	Variable string  `json:"variable"`
	Op       string  `json:"op"`
	Value    float64 `json:"value"`
}

// String renders the cut in conventional notation.
func (c Cut) String() string { return fmt.Sprintf("%s %s %g", c.Variable, c.Op, c.Value) }

// evalVariable computes a grammar variable given the selected objects.
func evalVariable(name string, e *datamodel.Event, objects map[string][]datamodel.Candidate) (float64, error) {
	if name == "met" {
		return e.Missing.Pt, nil
	}
	parts := strings.SplitN(name, ":", 2)
	if len(parts) != 2 {
		return 0, fmt.Errorf("leshouches: unknown variable %q", name)
	}
	sel, ok := objects[parts[1]]
	if !ok {
		return 0, fmt.Errorf("leshouches: cut references undefined object %q", parts[1])
	}
	switch parts[0] {
	case "count":
		return float64(len(sel)), nil
	case "leading_pt":
		if len(sel) == 0 {
			return 0, nil
		}
		return sel[0].P.Pt(), nil
	case "inv_mass":
		if len(sel) < 2 {
			return 0, nil
		}
		return fourvec.InvariantMass(sel[0].P, sel[1].P), nil
	case "os_pair":
		if len(sel) < 2 {
			return 0, nil
		}
		if sel[0].Charge*sel[1].Charge < 0 {
			return 1, nil
		}
		return 0, nil
	case "mt":
		if len(sel) == 0 {
			return 0, nil
		}
		miss := fourvec.PtEtaPhiM(e.Missing.Pt, 0, e.Missing.Phi, 0)
		return fourvec.TransverseMass(sel[0].P, miss), nil
	default:
		return 0, fmt.Errorf("leshouches: unknown variable kind %q", parts[0])
	}
}

func compare(v float64, op string, target float64) (bool, error) {
	switch op {
	case ">":
		return v > target, nil
	case ">=":
		return v >= target, nil
	case "<":
		return v < target, nil
	case "<=":
		return v <= target, nil
	case "==":
		return v == target, nil
	case "!=":
		return v != target, nil
	default:
		return false, fmt.Errorf("leshouches: unknown operator %q", op)
	}
}

// EfficiencyGrid is a signal acceptance×efficiency map over a 2D model
// parameter plane — the "acceptance/efficiency grids in mass parameter
// spaces for Supersymmetry searches" HepData hosts.
type EfficiencyGrid struct {
	Name   string  `json:"name"`
	XLabel string  `json:"x_label"`
	YLabel string  `json:"y_label"`
	NX     int     `json:"nx"`
	XLo    float64 `json:"x_lo"`
	XHi    float64 `json:"x_hi"`
	NY     int     `json:"ny"`
	YLo    float64 `json:"y_lo"`
	YHi    float64 `json:"y_hi"`
	// Pass and Total are row-major event counts per cell.
	Pass  []float64 `json:"pass"`
	Total []float64 `json:"total"`
}

// NewEfficiencyGrid returns an empty grid.
func NewEfficiencyGrid(name string, nx int, xlo, xhi float64, ny int, ylo, yhi float64) *EfficiencyGrid {
	return &EfficiencyGrid{
		Name: name, NX: nx, XLo: xlo, XHi: xhi, NY: ny, YLo: ylo, YHi: yhi,
		Pass: make([]float64, nx*ny), Total: make([]float64, nx*ny),
	}
}

// cell returns the flattened index of (x, y), or -1 when out of range.
func (g *EfficiencyGrid) cell(x, y float64) int {
	if x < g.XLo || x >= g.XHi || y < g.YLo || y >= g.YHi {
		return -1
	}
	ix := int(float64(g.NX) * (x - g.XLo) / (g.XHi - g.XLo))
	iy := int(float64(g.NY) * (y - g.YLo) / (g.YHi - g.YLo))
	if ix >= g.NX {
		ix = g.NX - 1
	}
	if iy >= g.NY {
		iy = g.NY - 1
	}
	return iy*g.NX + ix
}

// Record adds one model point's outcome.
func (g *EfficiencyGrid) Record(x, y float64, passed bool) {
	i := g.cell(x, y)
	if i < 0 {
		return
	}
	g.Total[i]++
	if passed {
		g.Pass[i]++
	}
}

// Efficiency returns the acceptance×efficiency at a model point and
// whether the cell has any statistics.
func (g *EfficiencyGrid) Efficiency(x, y float64) (float64, bool) {
	i := g.cell(x, y)
	if i < 0 || g.Total[i] == 0 {
		return 0, false
	}
	return g.Pass[i] / g.Total[i], true
}

// AnalysisRecord is one preserved analysis in the database.
type AnalysisRecord struct {
	// Name is the database key.
	Name string `json:"name"`
	// InspireID links the record to the publication.
	InspireID   string `json:"inspire_id,omitempty"`
	Description string `json:"description,omitempty"`
	// Objects are the basic object definitions (Rec 1a).
	Objects []ObjectDefinition `json:"objects"`
	// Selection is the ordered cut flow over the defined objects.
	Selection []Cut `json:"selection"`
	// Grids are published efficiency maps.
	Grids []*EfficiencyGrid `json:"grids,omitempty"`
	// Functions names the encapsulated functions the analysis uses, from
	// the registry (Rec 1b).
	Functions []string `json:"functions,omitempty"`
	// Background and BackgroundError are the expected SM background in
	// the signal region, for limit setting.
	Background      float64 `json:"background"`
	BackgroundError float64 `json:"background_error"`
	// ObservedEvents is the published signal-region count.
	ObservedEvents int `json:"observed_events"`
}

// Validate checks internal consistency: unique object names, cuts that
// reference defined objects, known operators and functions.
func (r *AnalysisRecord) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("leshouches: record without a name")
	}
	objs := make(map[string]bool)
	for _, o := range r.Objects {
		if o.Name == "" {
			return fmt.Errorf("leshouches: record %q has unnamed object", r.Name)
		}
		if objs[o.Name] {
			return fmt.Errorf("leshouches: record %q duplicates object %q", r.Name, o.Name)
		}
		objs[o.Name] = true
	}
	for _, c := range r.Selection {
		if _, err := compare(0, c.Op, 0); err != nil {
			return fmt.Errorf("leshouches: record %q: %w", r.Name, err)
		}
		if c.Variable == "met" {
			continue
		}
		parts := strings.SplitN(c.Variable, ":", 2)
		if len(parts) != 2 || !objs[parts[1]] {
			return fmt.Errorf("leshouches: record %q cut %q references undefined object", r.Name, c.Variable)
		}
		switch parts[0] {
		case "count", "leading_pt", "inv_mass", "os_pair", "mt":
		default:
			return fmt.Errorf("leshouches: record %q cut %q uses unknown variable kind", r.Name, c.Variable)
		}
	}
	for _, fn := range r.Functions {
		if _, ok := LookupFunction(fn); !ok {
			return fmt.Errorf("leshouches: record %q references unknown function %q", r.Name, fn)
		}
	}
	return nil
}

// Pass evaluates the full selection on one event.
func (r *AnalysisRecord) Pass(e *datamodel.Event) (bool, error) {
	objects := make(map[string][]datamodel.Candidate, len(r.Objects))
	for _, o := range r.Objects {
		objects[o.Name] = o.Select(e)
	}
	for _, c := range r.Selection {
		v, err := evalVariable(c.Variable, e, objects)
		if err != nil {
			return false, err
		}
		ok, err := compare(v, c.Op, c.Value)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// CutFlow returns survivors after each cut prefix (index 0 = input).
func (r *AnalysisRecord) CutFlow(events []*datamodel.Event) ([]int, error) {
	counts := make([]int, len(r.Selection)+1)
	counts[0] = len(events)
	for _, e := range events {
		objects := make(map[string][]datamodel.Candidate, len(r.Objects))
		for _, o := range r.Objects {
			objects[o.Name] = o.Select(e)
		}
		for i, c := range r.Selection {
			v, err := evalVariable(c.Variable, e, objects)
			if err != nil {
				return nil, err
			}
			ok, err := compare(v, c.Op, c.Value)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			counts[i+1]++
		}
	}
	return counts, nil
}

// Encode serializes the record for the common platform.
func (r *AnalysisRecord) Encode() ([]byte, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(r, "", "  ")
}

// DecodeRecord parses and validates an archived record.
func DecodeRecord(data []byte) (*AnalysisRecord, error) {
	var r AnalysisRecord
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("leshouches: parsing record: %w", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Database is the common analysis platform of Rec 1b.
type Database struct {
	records map[string]*AnalysisRecord
}

// NewDatabase returns an empty analysis database.
func NewDatabase() *Database {
	return &Database{records: make(map[string]*AnalysisRecord)}
}

// Store validates and adds a record.
func (db *Database) Store(r *AnalysisRecord) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if _, dup := db.records[r.Name]; dup {
		return fmt.Errorf("leshouches: record %q already stored", r.Name)
	}
	db.records[r.Name] = r
	return nil
}

// Get returns a stored record.
func (db *Database) Get(name string) (*AnalysisRecord, bool) {
	r, ok := db.records[name]
	return r, ok
}

// Names returns the sorted record names.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.records))
	for n := range db.records {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
