package leshouches

import (
	"math"
	"strings"
	"testing"

	"daspos/internal/datamodel"
	"daspos/internal/fourvec"
	"daspos/internal/stats"
	"daspos/internal/xrand"
)

// dimuonSearch is a typical archived search: two isolated opposite-sign
// muons with a high invariant mass.
func dimuonSearch() *AnalysisRecord {
	return &AnalysisRecord{
		Name:        "GPD_2013_DIMUON_HIGHMASS",
		InspireID:   "1300077",
		Description: "High-mass dimuon resonance search",
		Objects: []ObjectDefinition{
			{Name: "sig_muon", Type: datamodel.ObjMuon, MinPt: 25, MaxAbsEta: 2.4, MaxIsolation: 10, MinQuality: 0.5},
		},
		Selection: []Cut{
			{Variable: "count:sig_muon", Op: ">=", Value: 2},
			{Variable: "os_pair:sig_muon", Op: "==", Value: 1},
			{Variable: "inv_mass:sig_muon", Op: ">", Value: 400},
		},
		Functions:       []string{"cls_upper_limit95.v1"},
		Background:      4.2,
		BackgroundError: 1.1,
		ObservedEvents:  5,
	}
}

// dimuonEvent builds an AOD event with two muons at the given pTs and
// pair mass controlled by opening angle.
func dimuonEvent(pt1, pt2 float64, opposite bool, massive bool) *datamodel.Event {
	phi2 := 0.3
	if massive {
		phi2 = math.Pi - 0.05 // back-to-back -> high mass
	}
	q2 := 1.0
	if !opposite {
		q2 = -1
	}
	return &datamodel.Event{
		Tier: datamodel.TierAOD,
		Candidates: []datamodel.Candidate{
			{Type: datamodel.ObjMuon, P: fourvec.PtEtaPhiM(pt1, 0.3, 0, 0.105), Charge: -1, Quality: 0.9, Isolation: 2},
			{Type: datamodel.ObjMuon, P: fourvec.PtEtaPhiM(pt2, -0.4, phi2, 0.105), Charge: q2, Quality: 0.9, Isolation: 3},
		},
		Missing: datamodel.MET{Pt: 15, Phi: 1.0},
	}
}

func TestObjectDefinitionSelect(t *testing.T) {
	d := ObjectDefinition{Name: "m", Type: datamodel.ObjMuon, MinPt: 20, MaxAbsEta: 2.0, MaxIsolation: 5, MinQuality: 0.8}
	e := &datamodel.Event{Candidates: []datamodel.Candidate{
		{Type: datamodel.ObjMuon, P: fourvec.PtEtaPhiM(30, 0.5, 0, 0.105), Quality: 0.9, Isolation: 2},  // pass
		{Type: datamodel.ObjMuon, P: fourvec.PtEtaPhiM(10, 0.5, 0, 0.105), Quality: 0.9, Isolation: 2},  // pt
		{Type: datamodel.ObjMuon, P: fourvec.PtEtaPhiM(30, 2.5, 0, 0.105), Quality: 0.9, Isolation: 2},  // eta
		{Type: datamodel.ObjMuon, P: fourvec.PtEtaPhiM(30, 0.5, 0, 0.105), Quality: 0.5, Isolation: 2},  // quality
		{Type: datamodel.ObjMuon, P: fourvec.PtEtaPhiM(30, 0.5, 0, 0.105), Quality: 0.9, Isolation: 20}, // iso
		{Type: datamodel.ObjJet, P: fourvec.PtEtaPhiM(50, 0.5, 0, 5), Quality: 0.9},                     // type
		{Type: datamodel.ObjMuon, P: fourvec.PtEtaPhiM(45, -0.5, 1, 0.105), Quality: 0.9, Isolation: 1}, // pass (leading)
	}}
	sel := d.Select(e)
	if len(sel) != 2 {
		t.Fatalf("selected %d", len(sel))
	}
	if sel[0].P.Pt() < sel[1].P.Pt() {
		t.Fatal("not sorted by pT")
	}
}

func TestRecordValidate(t *testing.T) {
	if err := dimuonSearch().Validate(); err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(*AnalysisRecord)) error {
		r := dimuonSearch()
		f(r)
		return r.Validate()
	}
	if err := mutate(func(r *AnalysisRecord) { r.Name = "" }); err == nil {
		t.Error("nameless record validated")
	}
	if err := mutate(func(r *AnalysisRecord) { r.Objects = append(r.Objects, r.Objects[0]) }); err == nil {
		t.Error("duplicate object validated")
	}
	if err := mutate(func(r *AnalysisRecord) { r.Selection[0].Variable = "count:ghost" }); err == nil {
		t.Error("cut on undefined object validated")
	}
	if err := mutate(func(r *AnalysisRecord) { r.Selection[0].Variable = "warp:sig_muon" }); err == nil {
		t.Error("unknown variable kind validated")
	}
	if err := mutate(func(r *AnalysisRecord) { r.Selection[0].Op = "~" }); err == nil {
		t.Error("unknown operator validated")
	}
	if err := mutate(func(r *AnalysisRecord) { r.Functions = []string{"ghost.v1"} }); err == nil {
		t.Error("unknown function reference validated")
	}
}

func TestSelectionSemantics(t *testing.T) {
	r := dimuonSearch()
	cases := []struct {
		ev   *datamodel.Event
		want bool
		why  string
	}{
		{dimuonEvent(250, 240, true, true), true, "good high-mass OS pair"},
		{dimuonEvent(250, 240, false, true), false, "same-sign pair"},
		{dimuonEvent(250, 240, true, false), false, "low mass"},
		{dimuonEvent(250, 10, true, true), false, "subleading below threshold"},
		{&datamodel.Event{}, false, "empty event"},
	}
	for _, c := range cases {
		got, err := r.Pass(c.ev)
		if err != nil {
			t.Fatalf("%s: %v", c.why, err)
		}
		if got != c.want {
			t.Errorf("%s: got %v", c.why, got)
		}
	}
}

func TestCutFlow(t *testing.T) {
	r := dimuonSearch()
	events := []*datamodel.Event{
		dimuonEvent(250, 240, true, true),
		dimuonEvent(250, 240, false, true),
		dimuonEvent(250, 240, true, false),
		{},
	}
	flow, err := r.CutFlow(events)
	if err != nil {
		t.Fatal(err)
	}
	// input=4; >=2 muons: 3; OS: 2; mass: 1.
	want := []int{4, 3, 2, 1}
	for i := range want {
		if flow[i] != want[i] {
			t.Fatalf("cutflow %v want %v", flow, want)
		}
	}
}

func TestMtAndMetVariables(t *testing.T) {
	r := &AnalysisRecord{
		Name: "W_SEARCH",
		Objects: []ObjectDefinition{
			{Name: "mu", Type: datamodel.ObjMuon, MinPt: 20},
		},
		Selection: []Cut{
			{Variable: "met", Op: ">", Value: 20},
			{Variable: "mt:mu", Op: ">", Value: 40},
		},
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	e := &datamodel.Event{
		Candidates: []datamodel.Candidate{
			{Type: datamodel.ObjMuon, P: fourvec.PtEtaPhiM(40, 0, 0, 0.105), Charge: -1},
		},
		Missing: datamodel.MET{Pt: 40, Phi: math.Pi},
	}
	ok, err := r.Pass(e)
	if err != nil || !ok {
		t.Fatalf("W-like event failed: %v %v", ok, err)
	}
	e.Missing.Phi = 0 // MET parallel to muon: mT ~ 0
	ok, _ = r.Pass(e)
	if ok {
		t.Fatal("parallel-MET event passed mT cut")
	}
}

func TestEfficiencyGrid(t *testing.T) {
	g := NewEfficiencyGrid("acc", 10, 0, 1000, 10, 0, 1000)
	for i := 0; i < 100; i++ {
		g.Record(250, 250, i < 40) // 40% in cell
		g.Record(750, 750, i < 80) // 80% in cell
	}
	if eff, ok := g.Efficiency(250, 250); !ok || math.Abs(eff-0.4) > 1e-12 {
		t.Fatalf("eff(250,250)=%v ok=%v", eff, ok)
	}
	if eff, ok := g.Efficiency(750, 750); !ok || math.Abs(eff-0.8) > 1e-12 {
		t.Fatalf("eff(750,750)=%v ok=%v", eff, ok)
	}
	if _, ok := g.Efficiency(50, 950); ok {
		t.Fatal("empty cell reported statistics")
	}
	g.Record(-5, 0, true) // out of range: dropped
	if _, ok := g.Efficiency(-5, 0); ok {
		t.Fatal("out-of-range lookup succeeded")
	}
}

func TestRecordJSONRoundTrip(t *testing.T) {
	r := dimuonSearch()
	g := NewEfficiencyGrid("acc", 4, 0, 2000, 4, 0, 2000)
	g.Record(500, 500, true)
	r.Grids = []*EfficiencyGrid{g}
	data, err := r.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"inv_mass:sig_muon"`) {
		t.Fatalf("encoding incomplete:\n%s", data)
	}
	got, err := DecodeRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != r.Name || len(got.Selection) != 3 || len(got.Grids) != 1 {
		t.Fatal("round trip lost content")
	}
	if eff, ok := got.Grids[0].Efficiency(500, 500); !ok || eff != 1 {
		t.Fatal("grid content lost")
	}
	if _, err := DecodeRecord([]byte("{bad")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := DecodeRecord([]byte(`{"name":"x","selection":[{"variable":"count:ghost","op":">","value":1}]}`)); err == nil {
		t.Fatal("invalid record decoded")
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	if err := db.Store(dimuonSearch()); err != nil {
		t.Fatal(err)
	}
	if err := db.Store(dimuonSearch()); err == nil {
		t.Fatal("duplicate stored")
	}
	if _, ok := db.Get("GPD_2013_DIMUON_HIGHMASS"); !ok {
		t.Fatal("record missing")
	}
	if names := db.Names(); len(names) != 1 {
		t.Fatalf("names: %v", names)
	}
	bad := dimuonSearch()
	bad.Name = "BAD"
	bad.Selection[0].Op = "~"
	if err := db.Store(bad); err == nil {
		t.Fatal("invalid record stored")
	}
}

func TestFunctionRegistry(t *testing.T) {
	names := Functions()
	if len(names) < 4 {
		t.Fatalf("registry: %v", names)
	}
	for _, n := range names {
		f, ok := LookupFunction(n)
		if !ok || f.Doc == "" {
			t.Errorf("function %s undocumented", n)
		}
	}
	if v, ok := Call("effective_mass.v1", 100, 50, 25); !ok || v != 175 {
		t.Fatalf("effective_mass: %v %v", v, ok)
	}
	if _, ok := Call("effective_mass.v1"); ok {
		t.Fatal("variadic minimum not enforced")
	}
	if v, ok := Call("razor_mr.v1", 100, 0, 100, 0); !ok || v != 200 {
		t.Fatalf("razor: %v %v", v, ok)
	}
	if _, ok := Call("razor_mr.v1", 1, 2); ok {
		t.Fatal("arity not enforced")
	}
	if _, ok := Call("ghost.v1", 1); ok {
		t.Fatal("unknown function callable")
	}
	if v, ok := Call("cls_upper_limit95.v1", 0, 0); !ok || math.Abs(v-3.0) > 0.1 {
		t.Fatalf("UL(0,0): %v %v", v, ok)
	}
}

func TestDuplicateFunctionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate function registration did not panic")
		}
	}()
	RegisterFunction(Function{Name: "effective_mass.v1"})
}

func TestReinterpret(t *testing.T) {
	r := dimuonSearch()
	var events []*datamodel.Event
	// 40 passing, 60 failing events.
	for i := 0; i < 40; i++ {
		events = append(events, dimuonEvent(250, 240, true, true))
	}
	for i := 0; i < 60; i++ {
		events = append(events, dimuonEvent(250, 240, true, false))
	}
	res, err := Reinterpret(r, events, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selected != 40 || math.Abs(res.Acceptance-0.4) > 1e-12 {
		t.Fatalf("acceptance: %+v", res)
	}
	if res.UpperLimitEvents <= 0 {
		t.Fatal("no limit computed")
	}
	want := res.UpperLimitEvents / (0.4 * 20000)
	if math.Abs(res.UpperLimitXsecPb-want) > 1e-12 {
		t.Fatalf("xsec limit %v want %v", res.UpperLimitXsecPb, want)
	}
	// Zero acceptance: no cross-section limit claimable.
	res2, err := Reinterpret(r, events[40:], 20000)
	if err != nil {
		t.Fatal(err)
	}
	if res2.UpperLimitXsecPb != 0 {
		t.Fatal("limit claimed with zero acceptance")
	}
}

func BenchmarkPass(b *testing.B) {
	r := dimuonSearch()
	e := dimuonEvent(250, 240, true, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Pass(e); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExpectedLimitBand(t *testing.T) {
	r := dimuonSearch()
	rng := xrand.New(7)
	lo, median, hi := r.ExpectedLimitBand(300, rng.Poisson)
	if !(lo <= median && median <= hi) || lo == hi {
		t.Fatalf("band: %v %v %v", lo, median, hi)
	}
	// Observed n=5 on b=4.2 is unexceptional: the observed limit must sit
	// inside a generous band around the expectation.
	obs := stats.UpperLimit(r.ObservedEvents, r.Background, 0.95)
	if obs < lo/2 || obs > hi*2 {
		t.Fatalf("observed %v outside band [%v, %v]", obs, lo, hi)
	}
}
