// Package checkpoint makes a whole pipeline run a durable, resumable
// unit: a journaled run ledger that records each workflow step's
// lifecycle (started → artifacts committed → done) in an append-only
// journal, with every artifact payload committed to a content-addressed
// object store via write-temp-then-rename before the journal line that
// announces it is appended.
//
// The DASPOS demand that an archived analysis chain stay re-executable
// years later is, day to day, a demand that it survive the mundane
// failures of long-running processing: a process killed mid-step, a torn
// write, a half-committed artifact. The ledger's commit protocol is
// ordered so that a crash at *any* instruction leaves a recoverable
// state:
//
//  1. the artifact payload is written to a temp file in objects/,
//     fsynced, renamed to its SHA-256 digest, and the directory fsynced;
//  2. only then is the journal record describing it appended and the
//     journal fsynced.
//
// Replay therefore never trusts a record whose payload could be missing,
// and a journal line cut short by the crash (no trailing newline) is
// dropped and truncated away on the next Open — exactly the recovery
// discipline of the recast request journal, promoted to whole pipeline
// runs. A malformed record in the middle of the journal, by contrast, is
// real corruption and fails Open loudly.
//
// Steps are keyed by StepKey over (step name, config digest, input
// digests), so a resumed run only skips a step when the same code
// configuration ran over byte-identical inputs — and even then only
// after the recorded artifacts pass fixity (re-hash equals recorded
// digest). A checkpoint that fails fixity simply forces re-execution.
package checkpoint

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// StepState is a step's recorded lifecycle position.
type StepState int

// Lifecycle states. A step that appears in the journal only via "start"
// was interrupted; only StepDone is skippable on resume.
const (
	StepUnknown StepState = iota
	StepStarted
	StepDone
)

// String renders the state for status reports.
func (s StepState) String() string {
	switch s {
	case StepStarted:
		return "started"
	case StepDone:
		return "done"
	default:
		return "unknown"
	}
}

// ArtifactRecord is the journal's description of one committed artifact.
// Digest doubles as the object-store file name.
type ArtifactRecord struct {
	Name   string `json:"name"`
	Tier   string `json:"tier"`
	Events int    `json:"events"`
	Bytes  int64  `json:"bytes"`
	Digest string `json:"digest"`
}

// StepInfo is one step's replayed ledger state.
type StepInfo struct {
	Step      string
	Key       string
	State     StepState
	Artifacts []ArtifactRecord
	// External is the step's external-dependency census, recorded on the
	// done line so resumed runs keep complete provenance.
	External []string
}

// journalRecord is one JSON line of the journal.
type journalRecord struct {
	Kind     string          `json:"kind"` // "start", "artifact", "done"
	Step     string          `json:"step"`
	Key      string          `json:"key"`
	Artifact *ArtifactRecord `json:"artifact,omitempty"`
	External []string        `json:"external,omitempty"`
}

// StepKey derives the ledger key identifying one step execution: the
// step's name, its configuration digest, and the digests of its inputs in
// declared order. Any change to code configuration or input bytes yields
// a different key, so stale checkpoints can never satisfy a resumed run.
func StepKey(step, configDigest string, inputDigests []string) string {
	h := sha256.New()
	fmt.Fprintf(h, "step=%s\nconfig=%s\n", step, configDigest)
	for _, d := range inputDigests {
		fmt.Fprintf(h, "input=%s\n", d)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Ledger is the durable run ledger: an append-only journal plus a
// content-addressed object store under one checkpoint directory. Safe for
// concurrent readers of the replayed state; appends are serialized.
type Ledger struct {
	dir     string
	journal *os.File

	mu    sync.Mutex
	steps map[string]*StepInfo
	order []string // keys in first-seen order, for status reports
	kill  func(point string)
}

const (
	journalName = "journal.log"
	objectsName = "objects"
)

// Open creates or recovers the ledger in dir. Recovery replays the
// journal, drops a crash-torn final record (truncating the file back to
// its last durable line so later appends start clean), removes stale
// temp objects, and fails on mid-stream corruption.
func Open(dir string) (*Ledger, error) {
	objDir := filepath.Join(dir, objectsName)
	if err := os.MkdirAll(objDir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", objDir, err)
	}
	// Temp objects are pre-rename leftovers of a crash: never referenced
	// by any journal record, safe to discard.
	if tmps, err := filepath.Glob(filepath.Join(objDir, "tmp-*")); err == nil {
		for _, p := range tmps {
			os.Remove(p)
		}
	}

	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("checkpoint: reading journal: %w", err)
	}
	l := &Ledger{dir: dir, steps: make(map[string]*StepInfo)}
	valid, err := l.replay(data)
	if err != nil {
		return nil, err
	}
	if valid < int64(len(data)) {
		// Torn tail: cut the journal back to its last durable record so
		// the next append does not concatenate onto a partial line.
		if err := os.Truncate(path, valid); err != nil {
			return nil, fmt.Errorf("checkpoint: truncating torn journal tail: %w", err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: opening journal: %w", err)
	}
	l.journal = f
	return l, nil
}

// Close releases the journal handle. The ledger directory remains valid
// for a later Open.
func (l *Ledger) Close() error {
	if l.journal == nil {
		return nil
	}
	err := l.journal.Close()
	l.journal = nil
	return err
}

// Dir returns the checkpoint directory.
func (l *Ledger) Dir() string { return l.dir }

// SetKill installs a fault hook invoked at every instrumented instruction
// of the commit protocol (see the "journal.*" and "object.*" point names
// in this file). The chaos tests arm it with faults.Killer to die at a
// seeded instruction; production runs leave it nil.
func (l *Ledger) SetKill(fn func(point string)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.kill = fn
}

func (l *Ledger) killPoint(point string) {
	l.mu.Lock()
	fn := l.kill
	l.mu.Unlock()
	if fn != nil {
		fn(point)
	}
}

// replay applies journal bytes to the in-memory state and returns the
// byte length of the valid prefix. A partial final line (no newline) is
// tolerated as a crash tear; a malformed complete line is corruption.
func (l *Ledger) replay(data []byte) (int64, error) {
	var offset int64
	lineNo := 0
	for int(offset) < len(data) {
		nl := bytes.IndexByte(data[offset:], '\n')
		if nl < 0 {
			// Torn tail — the crash interrupted the final append.
			return offset, nil
		}
		lineNo++
		line := bytes.TrimSpace(data[offset : offset+int64(nl)])
		if len(line) > 0 {
			var rec journalRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return 0, fmt.Errorf("checkpoint: journal line %d corrupt: %w", lineNo, err)
			}
			if err := l.apply(rec, lineNo); err != nil {
				return 0, err
			}
		}
		offset += int64(nl) + 1
	}
	return offset, nil
}

// apply folds one replayed record into the step table.
func (l *Ledger) apply(rec journalRecord, lineNo int) error {
	if rec.Key == "" || rec.Step == "" {
		return fmt.Errorf("checkpoint: journal line %d: record without step/key", lineNo)
	}
	info := l.steps[rec.Key]
	if info == nil {
		info = &StepInfo{Step: rec.Step, Key: rec.Key}
		l.steps[rec.Key] = info
		l.order = append(l.order, rec.Key)
	}
	switch rec.Kind {
	case "start":
		// A fresh start supersedes any previous lifecycle for the key:
		// re-execution after a fixity failure re-records from scratch.
		info.State = StepStarted
		info.Artifacts = nil
		info.External = nil
	case "artifact":
		if rec.Artifact == nil {
			return fmt.Errorf("checkpoint: journal line %d: artifact record without artifact", lineNo)
		}
		info.Artifacts = append(info.Artifacts, *rec.Artifact)
	case "done":
		info.State = StepDone
		info.External = rec.External
	default:
		return fmt.Errorf("checkpoint: journal line %d: unknown kind %q", lineNo, rec.Kind)
	}
	return nil
}

// appendRecord durably appends one journal line: write, then fsync, then
// (only after durability) the in-memory state update. The write is split
// so an injected kill can model a torn record.
func (l *Ledger) appendRecord(rec journalRecord) error {
	if l.journal == nil {
		return fmt.Errorf("checkpoint: ledger is closed")
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("checkpoint: encoding journal record: %w", err)
	}
	line = append(line, '\n')
	l.killPoint("journal.append")
	half := len(line) / 2
	if _, err := l.journal.Write(line[:half]); err != nil {
		return fmt.Errorf("checkpoint: journal append: %w", err)
	}
	l.killPoint("journal.torn")
	if _, err := l.journal.Write(line[half:]); err != nil {
		return fmt.Errorf("checkpoint: journal append: %w", err)
	}
	l.killPoint("journal.sync")
	if err := l.journal.Sync(); err != nil {
		return fmt.Errorf("checkpoint: journal fsync: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.apply(rec, -1)
}

// Start records that a step execution began.
func (l *Ledger) Start(step, key string) error {
	return l.appendRecord(journalRecord{Kind: "start", Step: step, Key: key})
}

// Commit durably stores one artifact payload and journals it. The digest
// is computed here over the payload; a caller-supplied digest in rec must
// agree. The object store is content-addressed, so re-committing
// identical bytes is idempotent — but an existing object that no longer
// hashes to its name (operator damage, bit rot) is overwritten with the
// fresh payload rather than trusted.
func (l *Ledger) Commit(step, key string, rec ArtifactRecord, data []byte) (ArtifactRecord, error) {
	sum := sha256.Sum256(data)
	digest := hex.EncodeToString(sum[:])
	if rec.Digest != "" && rec.Digest != digest {
		return rec, fmt.Errorf("checkpoint: artifact %q digest %s does not match payload %s", rec.Name, rec.Digest, digest)
	}
	rec.Digest = digest
	rec.Bytes = int64(len(data))
	if err := l.writeObject(digest, data); err != nil {
		return rec, err
	}
	if err := l.appendRecord(journalRecord{Kind: "artifact", Step: step, Key: key, Artifact: &rec}); err != nil {
		return rec, err
	}
	return rec, nil
}

// Done records that every artifact of the step is committed, with the
// step's external-dependency census for provenance on resume.
func (l *Ledger) Done(step, key string, external []string) error {
	return l.appendRecord(journalRecord{Kind: "done", Step: step, Key: key, External: external})
}

// writeObject commits a payload to objects/<digest> with the
// temp-write → fsync → rename → dir-fsync ordering that makes the rename
// the atomic commit point.
func (l *Ledger) writeObject(digest string, data []byte) error {
	objDir := filepath.Join(l.dir, objectsName)
	final := filepath.Join(objDir, digest)
	if existing, err := os.ReadFile(final); err == nil {
		sum := sha256.Sum256(existing)
		if hex.EncodeToString(sum[:]) == digest {
			return nil // already durable, content verified
		}
		// Damaged object under a valid name: fall through and rewrite.
	}
	l.killPoint("object.create")
	tmp, err := os.CreateTemp(objDir, "tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: creating temp object: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	half := len(data) / 2
	if _, err := tmp.Write(data[:half]); err != nil {
		return fmt.Errorf("checkpoint: writing object: %w", err)
	}
	l.killPoint("object.torn")
	if _, err := tmp.Write(data[half:]); err != nil {
		return fmt.Errorf("checkpoint: writing object: %w", err)
	}
	l.killPoint("object.sync")
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("checkpoint: fsync object: %w", err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: closing object: %w", err)
	}
	tmp = nil
	l.killPoint("object.rename")
	if err := os.Rename(name, final); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: committing object: %w", err)
	}
	if err := syncDir(objDir); err != nil {
		return err
	}
	l.killPoint("object.durable")
	return nil
}

// syncDir fsyncs a directory so a completed rename survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: opening %s for fsync: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("checkpoint: fsync %s: %w", dir, err)
	}
	return nil
}

// Lookup returns the replayed state for a step key.
func (l *Ledger) Lookup(key string) (StepInfo, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	info, ok := l.steps[key]
	if !ok {
		return StepInfo{}, false
	}
	return copyInfo(info), true
}

// Status returns every step the ledger knows, in first-seen order — the
// run-status report of the pipeline executable.
func (l *Ledger) Status() []StepInfo {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]StepInfo, 0, len(l.order))
	for _, key := range l.order {
		out = append(out, copyInfo(l.steps[key]))
	}
	return out
}

func copyInfo(info *StepInfo) StepInfo {
	cp := *info
	cp.Artifacts = append([]ArtifactRecord(nil), info.Artifacts...)
	cp.External = append([]string(nil), info.External...)
	return cp
}

// Load reads an artifact payload back from the object store, verifying
// fixity: the bytes must hash to the recorded digest and match the
// recorded length. Any disagreement is a checkpoint the caller must not
// trust.
func (l *Ledger) Load(rec ArtifactRecord) ([]byte, error) {
	path := filepath.Join(l.dir, objectsName, rec.Digest)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: artifact %q object missing: %w", rec.Name, err)
	}
	if int64(len(data)) != rec.Bytes {
		return nil, fmt.Errorf("checkpoint: artifact %q is %d bytes, recorded %d", rec.Name, len(data), rec.Bytes)
	}
	sum := sha256.Sum256(data)
	if got := hex.EncodeToString(sum[:]); got != rec.Digest {
		return nil, fmt.Errorf("checkpoint: artifact %q fails fixity: object hashes to %s, recorded %s", rec.Name, got, rec.Digest)
	}
	return data, nil
}

// Verify re-hashes every artifact of a done step against its recorded
// digest. It returns an error when the step is not done or any artifact
// fails fixity — the signal that a resume must re-execute the step.
func (l *Ledger) Verify(key string) error {
	info, ok := l.Lookup(key)
	if !ok {
		return fmt.Errorf("checkpoint: no ledger entry for key %s", key)
	}
	if info.State != StepDone {
		return fmt.Errorf("checkpoint: step %q is %s, not done", info.Step, info.State)
	}
	for _, rec := range info.Artifacts {
		if _, err := l.Load(rec); err != nil {
			return err
		}
	}
	return nil
}

// ObjectPath returns where an artifact payload lives on disk — exposed
// for the chaos tests that deliberately damage objects.
func (l *Ledger) ObjectPath(digest string) string {
	return filepath.Join(l.dir, objectsName, digest)
}

// JournalPath returns the journal file location — exposed for the chaos
// tests that tear its final record.
func (l *Ledger) JournalPath() string {
	return filepath.Join(l.dir, journalName)
}
