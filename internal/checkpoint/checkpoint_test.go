package checkpoint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"daspos/internal/faults"
)

func openLedger(t *testing.T, dir string) *Ledger {
	t.Helper()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

// record one full step lifecycle and return the committed record.
func commitStep(t *testing.T, l *Ledger, step, key string, payload []byte) ArtifactRecord {
	t.Helper()
	if err := l.Start(step, key); err != nil {
		t.Fatal(err)
	}
	rec, err := l.Commit(step, key, ArtifactRecord{Name: step + ".out", Tier: "RECO", Events: 3}, payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Done(step, key, []string{"conditions:calo"}); err != nil {
		t.Fatal(err)
	}
	return rec
}

func TestLedgerRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openLedger(t, dir)
	k1 := StepKey("reco", "cfg1", []string{"d-raw"})
	k2 := StepKey("slim", "cfg2", []string{"d-reco"})
	rec1 := commitStep(t, l, "reco", k1, []byte("reco payload"))
	if err := l.Start("slim", k2); err != nil {
		t.Fatal(err)
	}
	// slim is interrupted: started, never done.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re := openLedger(t, dir)
	info, ok := re.Lookup(k1)
	if !ok || info.State != StepDone {
		t.Fatalf("reco after reopen: ok=%v state=%v", ok, info.State)
	}
	if len(info.Artifacts) != 1 || info.Artifacts[0].Digest != rec1.Digest {
		t.Fatalf("reco artifacts: %+v", info.Artifacts)
	}
	if len(info.External) != 1 || info.External[0] != "conditions:calo" {
		t.Fatalf("external deps lost: %v", info.External)
	}
	if got, ok := re.Lookup(k2); !ok || got.State != StepStarted {
		t.Fatalf("slim after reopen: ok=%v state=%v", ok, got.State)
	}
	data, err := re.Load(rec1)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "reco payload" {
		t.Fatalf("payload: %q", data)
	}
	if err := re.Verify(k1); err != nil {
		t.Fatal(err)
	}
	if err := re.Verify(k2); err == nil {
		t.Fatal("Verify accepted an interrupted step")
	}
	st := re.Status()
	if len(st) != 2 || st[0].Step != "reco" || st[1].Step != "slim" {
		t.Fatalf("status order: %+v", st)
	}
}

func TestStepKeySensitivity(t *testing.T) {
	base := StepKey("reco", "cfg", []string{"a", "b"})
	if StepKey("reco", "cfg", []string{"a", "b"}) != base {
		t.Fatal("key not deterministic")
	}
	for _, other := range []string{
		StepKey("reco2", "cfg", []string{"a", "b"}),
		StepKey("reco", "cfg2", []string{"a", "b"}),
		StepKey("reco", "cfg", []string{"a", "c"}),
		StepKey("reco", "cfg", []string{"b", "a"}),
		StepKey("reco", "cfg", []string{"a"}),
	} {
		if other == base {
			t.Fatal("key insensitive to identity change")
		}
	}
}

func TestTornFinalRecordDroppedAndTruncated(t *testing.T) {
	dir := t.TempDir()
	l := openLedger(t, dir)
	k1 := StepKey("reco", "cfg", []string{"d"})
	commitStep(t, l, "reco", k1, []byte("payload"))
	k2 := StepKey("slim", "cfg", []string{"d2"})
	if err := l.Start("slim", k2); err != nil {
		t.Fatal(err)
	}
	if err := l.Done("slim", k2, nil); err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Tear the final record (slim's done line) mid-write.
	if err := faults.TearFinalRecord(filepath.Join(dir, journalName)); err != nil {
		t.Fatal(err)
	}
	re := openLedger(t, dir)
	if info, _ := re.Lookup(k2); info.State != StepStarted {
		t.Fatalf("slim after torn done record: %v, want started", info.State)
	}
	if info, _ := re.Lookup(k1); info.State != StepDone {
		t.Fatalf("reco lost to tear: %v", info.State)
	}
	// The torn tail was truncated away, so new appends start on a clean
	// line and a further reopen replays without complaint.
	if err := re.Done("slim", k2, nil); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2 := openLedger(t, dir)
	if info, _ := re2.Lookup(k2); info.State != StepDone {
		t.Fatalf("slim after re-append: %v, want done", info.State)
	}
}

func TestMidStreamCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	l := openLedger(t, dir)
	k := StepKey("reco", "cfg", []string{"d"})
	commitStep(t, l, "reco", k, []byte("payload"))
	l.Close()

	path := filepath.Join(dir, journalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Damage a line that is NOT the last: real corruption, not a tear.
	corrupted := "{broken json\n" + string(data)
	if err := os.WriteFile(path, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("mid-stream corruption accepted: %v", err)
	}
}

func TestLoadDetectsDamagedObject(t *testing.T) {
	dir := t.TempDir()
	l := openLedger(t, dir)
	k := StepKey("reco", "cfg", []string{"d"})
	rec := commitStep(t, l, "reco", k, []byte("pristine payload"))

	obj := l.ObjectPath(rec.Digest)
	damaged, err := os.ReadFile(obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(obj, faults.CorruptBytes(damaged), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(rec); err == nil || !strings.Contains(err.Error(), "fixity") {
		t.Fatalf("damaged object loaded: %v", err)
	}
	if err := l.Verify(k); err == nil {
		t.Fatal("Verify accepted a damaged object")
	}

	// Re-committing the same payload repairs the object in place.
	if _, err := l.Commit("reco", k, ArtifactRecord{Name: "reco.out"}, []byte("pristine payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load(rec); err != nil {
		t.Fatalf("repair failed: %v", err)
	}
}

func TestCommitRejectsDigestMismatch(t *testing.T) {
	l := openLedger(t, t.TempDir())
	_, err := l.Commit("s", "k", ArtifactRecord{Name: "a", Digest: "not-the-hash"}, []byte("x"))
	if err == nil {
		t.Fatal("digest/payload disagreement accepted")
	}
}

// TestKillAtEveryPointRecovers sweeps the whole commit protocol: a ledger
// killed at its nth instrumented instruction, for every n, must reopen to
// a consistent state (done steps verifiable, everything else re-runnable)
// and accept a full re-recording of the interrupted step.
func TestKillAtEveryPointRecovers(t *testing.T) {
	// Count the kill points one clean lifecycle exposes.
	probe := faults.NewKiller()
	{
		l := openLedger(t, t.TempDir())
		l.SetKill(probe.Hit)
		commitStep(t, l, "reco", "key-r", []byte("payload"))
		l.Close()
	}
	total := probe.Hits()
	if total < 10 {
		t.Fatalf("only %d kill points instrumented", total)
	}

	for n := 1; n <= total; n++ {
		dir := t.TempDir()
		killer := faults.NewKiller()
		killer.CrashAfterN(n)
		killed := func() (killed bool) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := faults.AsKill(r); !ok {
						panic(r)
					}
					killed = true
				}
			}()
			l := openLedger(t, dir)
			l.SetKill(killer.Hit)
			commitStep(t, l, "reco", "key-r", []byte("payload"))
			l.Close()
			return false
		}()
		if !killed {
			t.Fatalf("kill at %d/%d did not fire", n, total)
		}
		// Recovery: reopen, finish the interrupted lifecycle, verify. The
		// core invariant: a replayed done record is always fully
		// trustworthy, because artifacts become durable before the journal
		// line announcing them.
		re := openLedger(t, dir)
		if info, ok := re.Lookup("key-r"); ok && info.State == StepDone {
			if err := re.Verify("key-r"); err != nil {
				t.Fatalf("kill at %d: replayed done step fails verify: %v", n, err)
			}
		}
		rec := commitStep(t, re, "reco", "key-r", []byte("payload"))
		if err := re.Verify("key-r"); err != nil {
			t.Fatalf("kill at %d: recovery verify: %v", n, err)
		}
		if data, err := re.Load(rec); err != nil || string(data) != "payload" {
			t.Fatalf("kill at %d: recovered payload %q, %v", n, data, err)
		}
		re.Close()
	}
}

func TestStaleTempObjectsCleanedOnOpen(t *testing.T) {
	dir := t.TempDir()
	objDir := filepath.Join(dir, objectsName)
	if err := os.MkdirAll(objDir, 0o755); err != nil {
		t.Fatal(err)
	}
	stale := filepath.Join(objDir, "tmp-leftover")
	if err := os.WriteFile(stale, []byte("half a payload"), 0o644); err != nil {
		t.Fatal(err)
	}
	openLedger(t, dir)
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale temp object survived open: %v", err)
	}
}
