package checkpoint

import (
	"reflect"
	"testing"
)

// TestCommitDurabilityOrdering pins the commit protocol's instruction
// order by recording the instrumented kill points. The sequence IS the
// durability argument: the payload must be fully written and fsynced
// before the rename publishes it, the rename must land before the
// directory fsync makes it crash-proof, and only then may the journal
// record the artifact — a journal line referencing an object that might
// not exist would corrupt resume. If this test fails, the crash-safety
// story of the whole checkpoint layer is broken, not just a test.
func TestCommitDurabilityOrdering(t *testing.T) {
	l := openLedger(t, t.TempDir())

	var got []string
	l.SetKill(func(point string) { got = append(got, point) })

	if _, err := l.Commit("reco", "run1", ArtifactRecord{Name: "reco.out"}, []byte("payload bytes")); err != nil {
		t.Fatal(err)
	}

	want := []string{
		"object.create",  // temp file created in objects/
		"object.torn",    // first half written (tear window)
		"object.sync",    // payload complete, about to fsync
		"object.rename",  // fsync done, about to publish
		"object.durable", // rename + dir fsync complete
		"journal.append", // only now may the journal reference the object
		"journal.torn",
		"journal.sync",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("commit kill-point sequence:\n got %v\nwant %v", got, want)
	}

	// Re-committing identical bytes must skip the object protocol
	// entirely (the store verifies the existing object's digest) and
	// only append a journal record.
	got = nil
	if _, err := l.Commit("reco", "run1", ArtifactRecord{Name: "reco.out"}, []byte("payload bytes")); err != nil {
		t.Fatal(err)
	}
	want = []string{"journal.append", "journal.torn", "journal.sync"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("idempotent re-commit kill-point sequence:\n got %v\nwant %v", got, want)
	}
}
