package datamodel

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"testing"

	"daspos/internal/fourvec"
	"daspos/internal/xrand"
)

// fakeRecoEvent builds a RECO-tier event with deterministic content.
func fakeRecoEvent(rng *xrand.Rand, number uint64) *Event {
	e := &Event{Run: 100, Number: number, Tier: TierRECO, ProcessID: 3}
	nTracks := 20 + rng.Intn(30)
	for i := 0; i < nTracks; i++ {
		e.Tracks = append(e.Tracks, Track{
			P:      fourvec.PtEtaPhiM(rng.Range(0.5, 40), rng.Range(-2.5, 2.5), rng.Range(-3, 3), 0.14),
			Charge: float64(1 - 2*rng.Intn(2)),
			D0:     rng.Gauss(0, 0.05),
			Z0:     rng.Gauss(0, 30),
			NHits:  5 + rng.Intn(5),
			Chi2:   rng.Exp(1.2),
		})
	}
	for i := 0; i < 3+rng.Intn(4); i++ {
		e.Vertices = append(e.Vertices, VertexFit{Z: rng.Gauss(0, 40), NTracks: 2 + rng.Intn(20), Chi2: rng.Exp(1)})
	}
	for i := 0; i < 15+rng.Intn(20); i++ {
		e.Clusters = append(e.Clusters, Cluster{E: rng.Exp(10), Eta: rng.Range(-3, 3), Phi: rng.Range(-3, 3), EM: rng.Bool(0.6), NCells: 1 + rng.Intn(9)})
	}
	e.Candidates = append(e.Candidates,
		Candidate{Type: ObjMuon, P: fourvec.PtEtaPhiM(35, 0.4, 1.0, 0.105), Charge: -1, Quality: 0.95, Isolation: 1.1},
		Candidate{Type: ObjMuon, P: fourvec.PtEtaPhiM(28, -0.8, -2.0, 0.105), Charge: 1, Quality: 0.9, Isolation: 2.0},
		Candidate{Type: ObjJet, P: fourvec.PtEtaPhiM(60, 1.2, 0.3, 8), Quality: 0.8},
	)
	e.Missing = MET{Pt: 12, Phi: 0.7, SumEt: 250}
	e.Aux = map[string]float64{"ht": 300}
	return e
}

func TestTierAndLevelStrings(t *testing.T) {
	if TierRAW.String() != "RAW" || TierDerived.String() != "DERIVED" {
		t.Fatal("tier names")
	}
	if Tier(99).String() != "tier(99)" {
		t.Fatal("unknown tier name")
	}
	if DPHEPLevel2.String() != "L2:simplified" {
		t.Fatal("level names")
	}
	if LevelForTier(TierRAW) != DPHEPLevel4 {
		t.Fatal("RAW must map to level 4")
	}
	if LevelForTier(TierAOD) != DPHEPLevel3 {
		t.Fatal("AOD must map to level 3")
	}
	if LevelForTier(TierDerived) != DPHEPLevel2 {
		t.Fatal("derived must map to level 2")
	}
}

func TestObjectTypeStrings(t *testing.T) {
	for ot := ObjElectron; ot <= ObjTrackCandidate; ot++ {
		if ot.String() == "" {
			t.Fatalf("empty name for %d", int(ot))
		}
	}
	if ObjectType(42).String() != "object(42)" {
		t.Fatal("unknown object name")
	}
}

func TestCandidateQueries(t *testing.T) {
	e := fakeRecoEvent(xrand.New(1), 1)
	mus := e.CandidatesOf(ObjMuon)
	if len(mus) != 2 {
		t.Fatalf("muons: %d", len(mus))
	}
	lead, ok := e.LeadingCandidate(ObjMuon)
	if !ok || lead.P.Pt() < 30 {
		t.Fatalf("leading muon: %+v ok=%v", lead, ok)
	}
	if _, ok := e.LeadingCandidate(ObjElectron); ok {
		t.Fatal("phantom electron")
	}
}

func TestPrimaryVertex(t *testing.T) {
	e := &Event{Vertices: []VertexFit{{NTracks: 3}, {NTracks: 17}, {NTracks: 5}}}
	pv, ok := e.PrimaryVertex()
	if !ok || pv.NTracks != 17 {
		t.Fatalf("pv: %+v", pv)
	}
	if _, ok := (&Event{}).PrimaryVertex(); ok {
		t.Fatal("vertexless event has a PV")
	}
}

func TestSlimToAOD(t *testing.T) {
	reco := fakeRecoEvent(xrand.New(2), 7)
	aod := reco.SlimToAOD()
	if aod.Tier != TierAOD {
		t.Fatalf("tier %v", aod.Tier)
	}
	if len(aod.Tracks) != 0 || len(aod.Clusters) != 0 || len(aod.Vertices) != 0 {
		t.Fatal("RECO detail leaked into AOD")
	}
	if len(aod.Candidates) != len(reco.Candidates) {
		t.Fatal("candidates lost in slimming")
	}
	// Immutability: the source event is untouched, and the copies do not
	// alias.
	if reco.Tier != TierRECO || len(reco.Tracks) == 0 {
		t.Fatal("slimming mutated the source")
	}
	aod.Candidates[0].Quality = -1
	aod.Aux["ht"] = -1
	if reco.Candidates[0].Quality == -1 || reco.Aux["ht"] == -1 {
		t.Fatal("AOD aliases RECO storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	e := fakeRecoEvent(xrand.New(3), 1)
	c := e.Clone()
	c.Tracks[0].NHits = 99
	c.Aux["ht"] = -5
	if e.Tracks[0].NHits == 99 || e.Aux["ht"] == -5 {
		t.Fatal("clone shares storage")
	}
}

func TestFileRoundTrip(t *testing.T) {
	rng := xrand.New(4)
	var events []*Event
	for i := 0; i < 10; i++ {
		events = append(events, fakeRecoEvent(rng, uint64(i)))
	}
	var buf bytes.Buffer
	n, err := WriteEvents(&buf, TierRECO, events)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("reported size %d != buffer %d", n, buf.Len())
	}
	tier, got, err := ReadEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tier != TierRECO {
		t.Fatalf("tier %v", tier)
	}
	if len(got) != len(events) {
		t.Fatalf("count %d", len(got))
	}
	for i := range got {
		if got[i].Number != events[i].Number || len(got[i].Tracks) != len(events[i].Tracks) {
			t.Fatalf("event %d mismatch", i)
		}
		if got[i].Aux["ht"] != events[i].Aux["ht"] {
			t.Fatalf("event %d aux lost", i)
		}
	}
}

func TestFileWriterRejectsTierMismatch(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFileWriter(&buf, TierAOD)
	if err != nil {
		t.Fatal(err)
	}
	e := fakeRecoEvent(xrand.New(5), 1) // RECO tier
	if err := fw.Write(e); err == nil {
		t.Fatal("tier mismatch accepted")
	}
	if fw.Count() != 0 {
		t.Fatal("failed write counted")
	}
}

func TestFileReaderRejectsGarbage(t *testing.T) {
	if _, err := NewFileReader(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestReadEOF(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFileWriter(&buf, TierAOD)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("empty file read: %v", err)
	}
	// EOF is sticky.
	if _, err := fr.Read(); err != io.EOF {
		t.Fatalf("second read past EOF: %v", err)
	}
}

func TestHeaderOnlyStreamIsTruncated(t *testing.T) {
	// A stream that ends after the header, without the end trailer, is a
	// truncated file — not an empty one.
	var buf bytes.Buffer
	if _, err := NewFileWriter(&buf, TierAOD); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFileReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fr.Read(); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("headerless tail read: %v", err)
	}
}

func TestTruncatedFileSurfacesUnexpectedEOF(t *testing.T) {
	// The regression this guards: a gob stream cut exactly at a message
	// boundary used to read back as a clean EOF, so ReadAll returned a
	// silently shortened sample. Cutting the file at every byte offset
	// past the header must now yield io.ErrUnexpectedEOF (or, for cuts
	// inside the header itself, a header error) — never a clean read.
	rng := xrand.New(11)
	var events []*Event
	for i := 0; i < 5; i++ {
		events = append(events, fakeRecoEvent(rng, uint64(i)))
	}
	var buf bytes.Buffer
	if _, err := WriteEvents(&buf, TierRECO, events); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every proper prefix must fail. Step through offsets coarsely (the
	// file is tens of kB) but always include boundaries near the end,
	// where the trailer lives.
	var cuts []int
	for cut := 1; cut < len(full); cut += 997 {
		cuts = append(cuts, cut)
	}
	for cut := len(full) - 10; cut < len(full); cut++ {
		if cut > 0 {
			cuts = append(cuts, cut)
		}
	}
	for _, cut := range cuts {
		fr, err := NewFileReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue // cut inside the header: rejected at open, also fine
		}
		_, err = fr.ReadAll()
		if err == nil {
			t.Fatalf("cut at %d of %d read back cleanly", cut, len(full))
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			// Mid-message cuts may surface as gob decode corruption
			// instead; both are loud failures. But a bare io.EOF
			// masquerading as success must never happen (ReadAll maps
			// that to ErrUnexpectedEOF), and neither may a nil error.
			continue
		}
	}
	// The intact file still reads fine.
	fr, err := NewFileReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	got, err := fr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("intact file: %d events", len(got))
	}
}

func TestTrailerCountMismatchRejected(t *testing.T) {
	// Splice the trailer of an empty file onto a file with one event: the
	// count disagrees with the events read, which must be rejected.
	e := fakeRecoEvent(xrand.New(12), 1)
	var withEvent bytes.Buffer
	fw, err := NewFileWriter(&withEvent, TierRECO)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Write(e); err != nil {
		t.Fatal(err)
	}
	// Deliberately no Close: append an empty file's trailer instead.
	var empty bytes.Buffer
	fw2, err := NewFileWriter(&empty, TierRECO)
	if err != nil {
		t.Fatal(err)
	}
	// One event then Close, so the encoder emits the record type info in
	// the same shape; slice off the header plus the event message.
	if err := fw2.Write(e); err != nil {
		t.Fatal(err)
	}
	if err := fw2.Close(); err != nil {
		t.Fatal(err)
	}
	// Instead of byte-splicing gob internals (fragile), just assert the
	// reader rejects a wrong count via a hand-built stream: write two
	// events but a trailer claiming zero by using the encoder directly.
	var spliced bytes.Buffer
	enc := gob.NewEncoder(&spliced)
	if err := enc.Encode(fileHeader{Magic: fileMagic, Version: fileVersion, Tier: TierRECO}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(record{Event: e}); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(record{End: true, Count: 0}); err != nil {
		t.Fatal(err)
	}
	fr, err := NewFileReader(&spliced)
	if err != nil {
		t.Fatal(err)
	}
	_, err = fr.ReadAll()
	if err == nil || errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("count mismatch: %v", err)
	}
}

func TestWriteAfterCloseRejected(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFileWriter(&buf, TierRECO)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fw.Write(fakeRecoEvent(xrand.New(13), 1)); err == nil {
		t.Fatal("write after Close accepted")
	}
	if err := fw.Close(); err != nil {
		t.Fatalf("Close not idempotent: %v", err)
	}
}

func TestTierSizeOrdering(t *testing.T) {
	// The W1 premise at the EDM level: RECO encodes larger than its AOD
	// slim for the same events.
	rng := xrand.New(6)
	var reco, aod []*Event
	for i := 0; i < 20; i++ {
		r := fakeRecoEvent(rng, uint64(i))
		reco = append(reco, r)
		aod = append(aod, r.SlimToAOD())
	}
	nReco, err := EncodedSize(TierRECO, reco)
	if err != nil {
		t.Fatal(err)
	}
	nAOD, err := EncodedSize(TierAOD, aod)
	if err != nil {
		t.Fatal(err)
	}
	if nReco < 2*nAOD {
		t.Fatalf("RECO (%d) not ≫ AOD (%d)", nReco, nAOD)
	}
}

func TestJSONEventRoundTrip(t *testing.T) {
	e := fakeRecoEvent(xrand.New(7), 3).SlimToAOD()
	data, err := MarshalJSONEvent(e)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalJSONEvent(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Number != e.Number || len(got.Candidates) != len(e.Candidates) {
		t.Fatal("JSON round trip lost content")
	}
	if _, err := UnmarshalJSONEvent([]byte("{bad")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func BenchmarkWriteRECO(b *testing.B) {
	rng := xrand.New(1)
	events := []*Event{fakeRecoEvent(rng, 1)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if _, err := WriteEvents(&buf, TierRECO, events); err != nil {
			b.Fatal(err)
		}
	}
}

func TestFileWriterCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	fw, err := NewFileWriter(&buf, TierRECO)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Write(fakeRecoEvent(xrand.New(7), 1)); err != nil {
		t.Fatal(err)
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	sealed := buf.Len()
	// A second (and third) Close is a no-op: no error, and crucially no
	// second end trailer appended to the stream.
	if err := fw.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if err := fw.Close(); err != nil {
		t.Fatalf("third Close: %v", err)
	}
	if buf.Len() != sealed {
		t.Fatalf("repeated Close grew the stream: %d -> %d bytes", sealed, buf.Len())
	}
	if err := fw.Write(fakeRecoEvent(xrand.New(7), 2)); err == nil {
		t.Fatal("write after Close accepted")
	}
	if _, _, err := ReadEvents(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("sealed stream unreadable: %v", err)
	}
}

func TestTruncationInsideTrailerSurfacesUnexpectedEOF(t *testing.T) {
	// A cut that lands inside the end trailer itself — after every event
	// decoded cleanly — must still read as truncation, not as a short but
	// plausible file.
	rng := xrand.New(13)
	var events []*Event
	for i := 0; i < 3; i++ {
		events = append(events, fakeRecoEvent(rng, uint64(i)))
	}
	var headless bytes.Buffer
	fw, err := NewFileWriter(&headless, TierRECO)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := fw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	body := headless.Len() // stream size up to, not including, the trailer
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	full := headless.Bytes()
	if len(full) <= body {
		t.Fatal("trailer added no bytes — test is vacuous")
	}
	for cut := body; cut < len(full); cut++ {
		fr, err := NewFileReader(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: header rejected: %v", cut, err)
		}
		got, err := fr.ReadAll()
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut %d bytes into trailer read as %v (events=%d)", cut-body, err, len(got))
		}
	}
}
