package datamodel

// Version 3 of the event file format replaces gob on the hot path with a
// hand-rolled binary codec: varint-coded integers, fixed 8-byte IEEE-754
// floats, and length-prefixed event frames. The encoding stays entirely
// inside the standard library — the preservation argument against exotic
// dependencies holds for the fast path too — and is fully deterministic:
// map-valued fields are emitted in sorted key order, so the same events
// always serialize to the same bytes regardless of worker count or map
// iteration order (gob, by contrast, walks maps in random order).
//
// Event payload layout (all integers varint unless noted):
//
//	run number tier processID(zigzag)
//	nTracks    { Px Py Pz E Charge D0 Z0 Chi2 (float64×8) nHits }
//	nVertices  { X Y Z Chi2 (float64×4) nTracks }
//	nClusters  { E Eta Phi (float64×3) em(1 byte) nCells }
//	nCands     { type P(float64×4) Charge Quality Isolation }
//	met        { Pt Phi SumEt (float64×3) }
//	nAux       { keyLen key value(float64) }   — keys sorted ascending
//
// float64 fields are the raw IEEE-754 bits, little-endian, so round trips
// are bit-exact. Signed integers use zigzag varints; counts use unsigned
// varints. Slice and map lengths of zero decode to nil, matching the gob
// reader's semantics so v2 and v3 streams of the same events decode to
// deeply equal values.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"sync"

	"daspos/internal/fourvec"
)

// scratchPool recycles encode/decode scratch buffers across writers and
// readers, keeping the steady-state hot path allocation-free.
var scratchPool = sync.Pool{
	New: func() any { return make([]byte, 0, 16<<10) },
}

func getScratch() []byte  { return scratchPool.Get().([]byte)[:0] }
func putScratch(b []byte) { scratchPool.Put(b[:0]) } //nolint:staticcheck // slice header reuse is the point

func appendFloat(b []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(f))
}

func appendVec(b []byte, v fourvec.Vec) []byte {
	b = appendFloat(b, v.Px)
	b = appendFloat(b, v.Py)
	b = appendFloat(b, v.Pz)
	return appendFloat(b, v.E)
}

// appendEventV3 serializes one event payload (no frame header) onto b.
func appendEventV3(b []byte, e *Event) []byte {
	b = binary.AppendUvarint(b, uint64(e.Run))
	b = binary.AppendUvarint(b, e.Number)
	b = binary.AppendVarint(b, int64(e.Tier))
	b = binary.AppendVarint(b, int64(e.ProcessID))

	b = binary.AppendUvarint(b, uint64(len(e.Tracks)))
	for i := range e.Tracks {
		t := &e.Tracks[i]
		b = appendVec(b, t.P)
		b = appendFloat(b, t.Charge)
		b = appendFloat(b, t.D0)
		b = appendFloat(b, t.Z0)
		b = appendFloat(b, t.Chi2)
		b = binary.AppendVarint(b, int64(t.NHits))
	}
	b = binary.AppendUvarint(b, uint64(len(e.Vertices)))
	for i := range e.Vertices {
		v := &e.Vertices[i]
		b = appendFloat(b, v.X)
		b = appendFloat(b, v.Y)
		b = appendFloat(b, v.Z)
		b = appendFloat(b, v.Chi2)
		b = binary.AppendVarint(b, int64(v.NTracks))
	}
	b = binary.AppendUvarint(b, uint64(len(e.Clusters)))
	for i := range e.Clusters {
		c := &e.Clusters[i]
		b = appendFloat(b, c.E)
		b = appendFloat(b, c.Eta)
		b = appendFloat(b, c.Phi)
		if c.EM {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = binary.AppendVarint(b, int64(c.NCells))
	}
	b = binary.AppendUvarint(b, uint64(len(e.Candidates)))
	for i := range e.Candidates {
		c := &e.Candidates[i]
		b = binary.AppendVarint(b, int64(c.Type))
		b = appendVec(b, c.P)
		b = appendFloat(b, c.Charge)
		b = appendFloat(b, c.Quality)
		b = appendFloat(b, c.Isolation)
	}
	b = appendFloat(b, e.Missing.Pt)
	b = appendFloat(b, e.Missing.Phi)
	b = appendFloat(b, e.Missing.SumEt)

	b = binary.AppendUvarint(b, uint64(len(e.Aux)))
	if len(e.Aux) > 0 {
		keys := make([]string, 0, len(e.Aux))
		for k := range e.Aux {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			b = binary.AppendUvarint(b, uint64(len(k)))
			b = append(b, k...)
			b = appendFloat(b, e.Aux[k])
		}
	}
	return b
}

// payloadDecoder walks one length-framed event payload. The frame length
// is already known when decoding starts, so running out of bytes here is
// corruption of a complete frame, never stream truncation.
type payloadDecoder struct {
	data []byte
	off  int
}

var errPayloadShort = fmt.Errorf("datamodel: v3 payload truncated inside frame")

func (d *payloadDecoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, errPayloadShort
	}
	d.off += n
	return v, nil
}

func (d *payloadDecoder) varint() (int64, error) {
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, errPayloadShort
	}
	d.off += n
	return v, nil
}

func (d *payloadDecoder) float() (float64, error) {
	if d.off+8 > len(d.data) {
		return 0, errPayloadShort
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.data[d.off:]))
	d.off += 8
	return v, nil
}

func (d *payloadDecoder) vec() (fourvec.Vec, error) {
	var v fourvec.Vec
	var err error
	if v.Px, err = d.float(); err != nil {
		return v, err
	}
	if v.Py, err = d.float(); err != nil {
		return v, err
	}
	if v.Pz, err = d.float(); err != nil {
		return v, err
	}
	v.E, err = d.float()
	return v, err
}

func (d *payloadDecoder) byte() (byte, error) {
	if d.off >= len(d.data) {
		return 0, errPayloadShort
	}
	b := d.data[d.off]
	d.off++
	return b, nil
}

// count reads a collection length and sanity-checks it against the bytes
// actually remaining (every element occupies at least one byte), so a
// corrupt frame cannot provoke a huge allocation.
func (d *payloadDecoder) count() (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.data)-d.off) {
		return 0, fmt.Errorf("datamodel: v3 frame declares %d elements with %d bytes left", v, len(d.data)-d.off)
	}
	return int(v), nil
}

// decodeEventV3 parses one event payload produced by appendEventV3.
// AppendEventPayload appends the version-3 payload encoding of e to dst
// and returns the extended slice — exactly the frame body
// FileWriter.WritePayload wraps. Exported so parallel pipelines can encode
// events on worker goroutines and leave only the cheap ordered framing to
// the writer.
func AppendEventPayload(dst []byte, e *Event) []byte { return appendEventV3(dst, e) }

func decodeEventV3(data []byte) (*Event, error) {
	e := &Event{}
	if err := decodeV3Into(data, e, nil, 0); err != nil {
		return nil, err
	}
	return e, nil
}

// decodeV3Into parses one event payload into e. With b == nil every slice
// and map is freshly allocated (the plain Decode path); with a batch, the
// element storage is reserved from the batch arena at slot — the caller
// (DecodeInto) re-points e's slice headers from the recorded spans once the
// arena has settled, so this function leaves arena-backed slice fields
// untouched on e and only fills the reserved storage.
func decodeV3Into(data []byte, e *Event, b *Batch, slot int) error {
	d := &payloadDecoder{data: data}

	run, err := d.uvarint()
	if err != nil {
		return err
	}
	if run > math.MaxUint32 {
		return fmt.Errorf("datamodel: v3 run %d overflows uint32", run)
	}
	e.Run = uint32(run)
	if e.Number, err = d.uvarint(); err != nil {
		return err
	}
	tier, err := d.varint()
	if err != nil {
		return err
	}
	e.Tier = Tier(tier)
	pid, err := d.varint()
	if err != nil {
		return err
	}
	e.ProcessID = int(pid)

	nT, err := d.count()
	if err != nil {
		return err
	}
	if nT > 0 {
		var ts []Track
		if b != nil {
			ts = b.growTracks(slot, nT)
		} else {
			ts = make([]Track, nT)
			e.Tracks = ts
		}
		for i := range ts {
			t := &ts[i]
			if t.P, err = d.vec(); err != nil {
				return err
			}
			if t.Charge, err = d.float(); err != nil {
				return err
			}
			if t.D0, err = d.float(); err != nil {
				return err
			}
			if t.Z0, err = d.float(); err != nil {
				return err
			}
			if t.Chi2, err = d.float(); err != nil {
				return err
			}
			h, err := d.varint()
			if err != nil {
				return err
			}
			t.NHits = int(h)
		}
	}
	nV, err := d.count()
	if err != nil {
		return err
	}
	if nV > 0 {
		var vs []VertexFit
		if b != nil {
			vs = b.growVertices(slot, nV)
		} else {
			vs = make([]VertexFit, nV)
			e.Vertices = vs
		}
		for i := range vs {
			v := &vs[i]
			if v.X, err = d.float(); err != nil {
				return err
			}
			if v.Y, err = d.float(); err != nil {
				return err
			}
			if v.Z, err = d.float(); err != nil {
				return err
			}
			if v.Chi2, err = d.float(); err != nil {
				return err
			}
			n, err := d.varint()
			if err != nil {
				return err
			}
			v.NTracks = int(n)
		}
	}
	nC, err := d.count()
	if err != nil {
		return err
	}
	if nC > 0 {
		var cs []Cluster
		if b != nil {
			cs = b.growClusters(slot, nC)
		} else {
			cs = make([]Cluster, nC)
			e.Clusters = cs
		}
		for i := range cs {
			c := &cs[i]
			if c.E, err = d.float(); err != nil {
				return err
			}
			if c.Eta, err = d.float(); err != nil {
				return err
			}
			if c.Phi, err = d.float(); err != nil {
				return err
			}
			em, err := d.byte()
			if err != nil {
				return err
			}
			c.EM = em != 0
			n, err := d.varint()
			if err != nil {
				return err
			}
			c.NCells = int(n)
		}
	}
	nCand, err := d.count()
	if err != nil {
		return err
	}
	if nCand > 0 {
		var cands []Candidate
		if b != nil {
			cands = b.growCandidates(slot, nCand)
		} else {
			cands = make([]Candidate, nCand)
			e.Candidates = cands
		}
		for i := range cands {
			c := &cands[i]
			typ, err := d.varint()
			if err != nil {
				return err
			}
			c.Type = ObjectType(typ)
			if c.P, err = d.vec(); err != nil {
				return err
			}
			if c.Charge, err = d.float(); err != nil {
				return err
			}
			if c.Quality, err = d.float(); err != nil {
				return err
			}
			if c.Isolation, err = d.float(); err != nil {
				return err
			}
		}
	}
	if e.Missing.Pt, err = d.float(); err != nil {
		return err
	}
	if e.Missing.Phi, err = d.float(); err != nil {
		return err
	}
	if e.Missing.SumEt, err = d.float(); err != nil {
		return err
	}

	nAux, err := d.count()
	if err != nil {
		return err
	}
	if nAux > 0 {
		if b != nil {
			e.Aux = b.auxMap(nAux)
		} else {
			e.Aux = make(map[string]float64, nAux)
		}
		for i := 0; i < nAux; i++ {
			kl, err := d.uvarint()
			if err != nil {
				return err
			}
			if kl > uint64(len(d.data)-d.off) {
				return errPayloadShort
			}
			key := string(d.data[d.off : d.off+int(kl)])
			d.off += int(kl)
			val, err := d.float()
			if err != nil {
				return err
			}
			e.Aux[key] = val
		}
	}
	if d.off != len(d.data) {
		return fmt.Errorf("datamodel: v3 frame has %d trailing bytes", len(d.data)-d.off)
	}
	return nil
}
