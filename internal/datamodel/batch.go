package datamodel

// Batch is an arena for decoded events: the per-batch backing store the
// streaming hot path recycles instead of allocating. Every event appended
// to (or decoded into) a batch borrows its Tracks, Vertices, Clusters, and
// Candidates slices from four shared backing arrays owned by the batch, so
// a drained batch can be Reset and refilled with zero steady-state
// allocations — the property that takes v3 decode from ~5 allocations per
// event to none once the arena is warm.
//
// Ownership rule (the event-flow substrate enforces the same contract for
// its own containers): everything reachable from a Batch — the events, and
// every slice and map they carry — is owned by the batch and dies at the
// next Reset. A consumer that retains an event, or any slice of one,
// beyond the batch's lifetime must take a deep copy via Event.Clone (or
// Batch.Clone); anything less aliases memory the arena will overwrite.
//
// Pointers returned by At are stable until the next Append/DecodeInto
// (growing the event array may move it) — hold indices, not pointers,
// while filling a batch.
type Batch struct {
	events     []Event
	tracks     []Track
	vertices   []VertexFit
	clusters   []Cluster
	candidates []Candidate

	// spans records, per event, where in the backing arrays its slices
	// live. When an append grows (and therefore moves) a backing array,
	// every prior event's slice header is re-pointed from its span — the
	// fix-up that keeps borrowed slices and arena storage aliased.
	spans []eventSpans

	// auxFree recycles Aux maps across Reset generations. Events without
	// aux entries keep a nil map, matching the plain decoder's semantics.
	auxFree []map[string]float64
}

// span is one borrowed region of a backing array.
type span struct{ off, n int }

// eventSpans locates one event's slices in the batch arena.
type eventSpans struct{ trk, vtx, clu, cand span }

// NewBatch returns a batch with room for capacity events before the event
// array first grows. The backing arrays size themselves on use.
func NewBatch(capacity int) *Batch {
	return &Batch{
		events: make([]Event, 0, capacity),
		spans:  make([]eventSpans, 0, capacity),
	}
}

// Len returns the number of events in the batch.
func (b *Batch) Len() int { return len(b.events) }

// Events returns the batch's events. The slice and everything it reaches
// are owned by the batch: valid until the next Reset, and shared with the
// arena — Clone what must escape.
func (b *Batch) Events() []Event { return b.events }

// At returns the i-th event. The pointer is valid until the next
// Append/DecodeInto or Reset.
func (b *Batch) At(i int) *Event { return &b.events[i] }

// Clone returns a deep copy of the i-th event, independent of the arena:
// the escape hatch the ownership rule requires before an event outlives
// its batch.
func (b *Batch) Clone(i int) *Event { return b.events[i].Clone() }

// Reset drains the batch for reuse: lengths drop to zero, capacity — the
// arena — is retained, and Aux maps are recycled into the free list.
func (b *Batch) Reset() {
	for i := range b.events {
		if m := b.events[i].Aux; m != nil {
			clear(m)
			b.auxFree = append(b.auxFree, m)
			b.events[i].Aux = nil
		}
	}
	b.events = b.events[:0]
	b.spans = b.spans[:0]
	b.tracks = b.tracks[:0]
	b.vertices = b.vertices[:0]
	b.clusters = b.clusters[:0]
	b.candidates = b.candidates[:0]
}

// auxMap hands out a recycled (empty) Aux map, allocating only when the
// free list is dry.
func (b *Batch) auxMap(sizeHint int) map[string]float64 {
	if n := len(b.auxFree); n > 0 {
		m := b.auxFree[n-1]
		b.auxFree = b.auxFree[:n-1]
		return m
	}
	return make(map[string]float64, sizeHint)
}

// newSlot appends one zero event and returns its index. The slot's Aux map
// from a previous generation (if any) was already recycled by Reset.
func (b *Batch) newSlot() int {
	n := len(b.events)
	if n < cap(b.events) {
		b.events = b.events[:n+1]
		b.events[n] = Event{}
	} else {
		b.events = append(b.events, Event{})
	}
	b.spans = append(b.spans, eventSpans{})
	return n
}

// dropSlot rolls the arena back to the state captured before a failed
// append, so a corrupt frame cannot leave a half-written event behind.
func (b *Batch) dropSlot(mark batchMark) {
	b.events = b.events[:mark.events]
	b.spans = b.spans[:mark.events]
	b.tracks = b.tracks[:mark.tracks]
	b.vertices = b.vertices[:mark.vertices]
	b.clusters = b.clusters[:mark.clusters]
	b.candidates = b.candidates[:mark.candidates]
}

// batchMark snapshots the arena lengths for rollback.
type batchMark struct{ events, tracks, vertices, clusters, candidates int }

func (b *Batch) mark() batchMark {
	return batchMark{len(b.events), len(b.tracks), len(b.vertices), len(b.clusters), len(b.candidates)}
}

// grown reports whether any backing array moved between two marks' capacity
// snapshots; the caller compares capacities directly.

// growTracks reserves n contiguous track slots and records the span on the
// event at index i.
func (b *Batch) growTracks(i, n int) []Track {
	off := len(b.tracks)
	if off+n <= cap(b.tracks) {
		b.tracks = b.tracks[: off+n : cap(b.tracks)]
	} else {
		b.tracks = append(b.tracks, make([]Track, n)...)
	}
	b.spans[i].trk = span{off, n}
	return b.tracks[off : off+n]
}

func (b *Batch) growVertices(i, n int) []VertexFit {
	off := len(b.vertices)
	if off+n <= cap(b.vertices) {
		b.vertices = b.vertices[: off+n : cap(b.vertices)]
	} else {
		b.vertices = append(b.vertices, make([]VertexFit, n)...)
	}
	b.spans[i].vtx = span{off, n}
	return b.vertices[off : off+n]
}

func (b *Batch) growClusters(i, n int) []Cluster {
	off := len(b.clusters)
	if off+n <= cap(b.clusters) {
		b.clusters = b.clusters[: off+n : cap(b.clusters)]
	} else {
		b.clusters = append(b.clusters, make([]Cluster, n)...)
	}
	b.spans[i].clu = span{off, n}
	return b.clusters[off : off+n]
}

func (b *Batch) growCandidates(i, n int) []Candidate {
	off := len(b.candidates)
	if off+n <= cap(b.candidates) {
		b.candidates = b.candidates[: off+n : cap(b.candidates)]
	} else {
		b.candidates = append(b.candidates, make([]Candidate, n)...)
	}
	b.spans[i].cand = span{off, n}
	return b.candidates[off : off+n]
}

// fix re-points event i's slice headers at its spans in the (possibly
// moved) backing arrays. Three-index slicing caps each borrowed slice at
// its span, so an append through an escaped reference cannot clobber the
// next event's data. Zero-length spans stay nil, matching the plain
// decoder.
func (b *Batch) fix(i int) {
	sp := b.spans[i]
	e := &b.events[i]
	if sp.trk.n > 0 {
		e.Tracks = b.tracks[sp.trk.off : sp.trk.off+sp.trk.n : sp.trk.off+sp.trk.n]
	} else {
		e.Tracks = nil
	}
	if sp.vtx.n > 0 {
		e.Vertices = b.vertices[sp.vtx.off : sp.vtx.off+sp.vtx.n : sp.vtx.off+sp.vtx.n]
	} else {
		e.Vertices = nil
	}
	if sp.clu.n > 0 {
		e.Clusters = b.clusters[sp.clu.off : sp.clu.off+sp.clu.n : sp.clu.off+sp.clu.n]
	} else {
		e.Clusters = nil
	}
	if sp.cand.n > 0 {
		e.Candidates = b.candidates[sp.cand.off : sp.cand.off+sp.cand.n : sp.cand.off+sp.cand.n]
	} else {
		e.Candidates = nil
	}
}

// fixAll re-points every event after a backing array grew.
func (b *Batch) fixAll() {
	for i := range b.events {
		b.fix(i)
	}
}

// caps snapshots the backing array capacities, so an append can detect
// that an arena moved and re-point prior events.
type batchCaps struct{ tracks, vertices, clusters, candidates int }

func (b *Batch) caps() batchCaps {
	return batchCaps{cap(b.tracks), cap(b.vertices), cap(b.clusters), cap(b.candidates)}
}

// settle runs the post-append fix-up: the new event always gets its
// headers set; if any backing array moved, every prior event is re-pointed
// too.
func (b *Batch) settle(i int, before batchCaps) {
	if b.caps() != before {
		b.fixAll()
		return
	}
	b.fix(i)
}

// Append deep-copies an event into the batch arena.
func (b *Batch) Append(e *Event) {
	before := b.caps()
	i := b.newSlot()
	slot := &b.events[i]
	slot.Run, slot.Number, slot.Tier, slot.ProcessID = e.Run, e.Number, e.Tier, e.ProcessID
	slot.Missing = e.Missing
	if n := len(e.Tracks); n > 0 {
		copy(b.growTracks(i, n), e.Tracks)
	}
	if n := len(e.Vertices); n > 0 {
		copy(b.growVertices(i, n), e.Vertices)
	}
	if n := len(e.Clusters); n > 0 {
		copy(b.growClusters(i, n), e.Clusters)
	}
	if n := len(e.Candidates); n > 0 {
		copy(b.growCandidates(i, n), e.Candidates)
	}
	if len(e.Aux) > 0 {
		m := b.auxMap(len(e.Aux))
		for k, v := range e.Aux {
			m[k] = v
		}
		b.events[i].Aux = m
	}
	b.settle(i, before)
}

// DecodeInto decodes one v3 event payload (a frame body, as produced by
// the v3 writer and surfaced by FrameScanner or FileReader) into the batch
// arena. On error the batch is rolled back to its prior state. The decoded
// event is b.At(b.Len()-1) and is deeply equal to what the allocating
// decoder would have produced from the same payload.
func DecodeInto(b *Batch, payload []byte) error {
	m := b.mark()
	before := b.caps()
	i := b.newSlot()
	if err := decodeV3Into(payload, &b.events[i], b, i); err != nil {
		b.dropSlot(m)
		return err
	}
	b.settle(i, before)
	return nil
}
