package datamodel

import (
	"bytes"
	"encoding/gob"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"daspos/internal/fourvec"
	"daspos/internal/xrand"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// goldenSeed and goldenEvents pin the fixture behind testdata/v2_golden.edm:
// the committed v2 (gob) stream the v3 reader must keep decoding forever.
const (
	goldenSeed   = 20140604
	goldenEvents = 5
)

func goldenFixture() []*Event {
	rng := xrand.New(goldenSeed)
	events := make([]*Event, 0, goldenEvents)
	for i := 0; i < goldenEvents; i++ {
		events = append(events, fakeRecoEvent(rng, uint64(i)))
	}
	return events
}

// writeV2Events authors a version-2 gob stream: the exact byte sequence
// the pre-v3 FileWriter produced (header, one record per event, counted
// end trailer). It exists so the compatibility fixture can be regenerated
// and so tests can author v2 streams at will.
func writeV2Events(w io.Writer, tier Tier, events []*Event) error {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(fileHeader{Magic: fileMagic, Version: fileVersion, Tier: tier}); err != nil {
		return err
	}
	for _, e := range events {
		if err := enc.Encode(record{Event: e}); err != nil {
			return err
		}
	}
	return enc.Encode(record{End: true, Count: len(events)})
}

func goldenPath() string { return filepath.Join("testdata", "v2_golden.edm") }

func TestV2GoldenReadableByV3Reader(t *testing.T) {
	events := goldenFixture()
	if *updateGolden {
		var buf bytes.Buffer
		if err := writeV2Events(&buf, TierRECO, events); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("golden file missing (regenerate with -update-golden): %v", err)
	}
	// The committed bytes are exactly what the v2 writer emits for the
	// fixture — gob is deterministic for a fixed encode sequence — so the
	// fixture pins the stream byte-for-byte, not just semantically.
	var regen bytes.Buffer
	if err := writeV2Events(&regen, TierRECO, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(regen.Bytes(), data) {
		t.Fatal("golden v2 stream drifted from the v2 writer's output")
	}
	fr, err := NewFileReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if fr.Tier() != TierRECO {
		t.Fatalf("tier %v", fr.Tier())
	}
	got, err := fr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("events %d", len(got))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], events[i]) {
			t.Fatalf("event %d decoded differently from the v2 stream", i)
		}
	}
}

func TestV2AndV3DecodeIdentically(t *testing.T) {
	events := goldenFixture()
	var v2, v3 bytes.Buffer
	if err := writeV2Events(&v2, TierRECO, events); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteEvents(&v3, TierRECO, events); err != nil {
		t.Fatal(err)
	}
	_, fromV2, err := ReadEvents(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	_, fromV3, err := ReadEvents(bytes.NewReader(v3.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromV2, fromV3) {
		t.Fatal("v2 and v3 streams of the same events decode differently")
	}
}

func TestV3TruncationSurfacesUnexpectedEOF(t *testing.T) {
	events := goldenFixture()
	var buf bytes.Buffer
	if _, err := WriteEvents(&buf, TierRECO, events); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every proper prefix must fail loudly: header cuts are rejected at
	// open, everything past the header maps to io.ErrUnexpectedEOF.
	for cut := 1; cut < len(full); cut++ {
		fr, err := NewFileReader(bytes.NewReader(full[:cut]))
		if err != nil {
			continue // cut inside the header: rejected at open
		}
		if _, err := fr.ReadAll(); !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("cut at %d of %d: %v", cut, len(full), err)
		}
	}
	fr, err := NewFileReader(bytes.NewReader(full))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := fr.ReadAll(); err != nil || len(got) != len(events) {
		t.Fatalf("intact stream: %d events, %v", len(got), err)
	}
}

func TestV3DeterministicAuxOrdering(t *testing.T) {
	// gob walks maps in random order; v3 must not. Encoding an event with
	// a many-keyed Aux twice must produce identical bytes.
	e := fakeRecoEvent(xrand.New(3), 1)
	e.Aux = map[string]float64{"ht": 1, "met_sig": 2, "aplanarity": 3, "sphericity": 4, "mT": 5}
	enc := func() []byte {
		var buf bytes.Buffer
		if _, err := WriteEvents(&buf, TierRECO, []*Event{e}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := enc()
	for i := 0; i < 16; i++ {
		if !bytes.Equal(a, enc()) {
			t.Fatal("v3 encoding of a map-carrying event is not deterministic")
		}
	}
}

func TestV3RejectsCorruptFrames(t *testing.T) {
	var buf bytes.Buffer
	if _, err := WriteEvents(&buf, TierRECO, goldenFixture()[:1]); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	headerLen := len(fileMagicV3) + 1
	// Flip the structural bytes the codec itself guards — the frame marker
	// and the trailer count. (Flips inside a float payload are legitimately
	// invisible to the codec; bit-level fixity is the CAS layer's job.)
	for _, off := range []int{headerLen, len(full) - 1} {
		mut := append([]byte(nil), full...)
		mut[off] ^= 0xFF
		fr, err := NewFileReader(bytes.NewReader(mut))
		if err != nil {
			continue
		}
		if _, err := fr.ReadAll(); err == nil {
			t.Fatalf("corruption at offset %d read back cleanly", off)
		}
	}
}

// randomEvent builds an event with randomized shape: occasionally empty
// collections, empty and multi-key Aux, negative integers, extreme floats.
func randomEvent(rng *xrand.Rand, number uint64) *Event {
	e := &Event{
		Run:       uint32(rng.Uint64()),
		Number:    number,
		Tier:      TierRECO,
		ProcessID: rng.Intn(10) - 3,
	}
	for i := 0; i < rng.Intn(8); i++ {
		e.Tracks = append(e.Tracks, Track{
			P:      fourvecFromRng(rng),
			Charge: float64(1 - 2*rng.Intn(2)),
			D0:     rng.Gauss(0, 1),
			Z0:     rng.Gauss(0, 50),
			NHits:  rng.Intn(20) - 2,
			Chi2:   rng.Exp(1),
		})
	}
	for i := 0; i < rng.Intn(4); i++ {
		e.Vertices = append(e.Vertices, VertexFit{X: rng.Gauss(0, 1), Y: rng.Gauss(0, 1), Z: rng.Gauss(0, 40), NTracks: rng.Intn(30), Chi2: rng.Exp(1)})
	}
	for i := 0; i < rng.Intn(6); i++ {
		e.Clusters = append(e.Clusters, Cluster{E: rng.Exp(20), Eta: rng.Range(-5, 5), Phi: rng.Range(-3, 3), EM: rng.Bool(0.5), NCells: rng.Intn(12)})
	}
	for i := 0; i < rng.Intn(5); i++ {
		e.Candidates = append(e.Candidates, Candidate{
			Type: ObjectType(1 + rng.Intn(5)), P: fourvecFromRng(rng),
			Charge: float64(rng.Intn(3) - 1), Quality: rng.Range(0, 1), Isolation: rng.Exp(2),
		})
	}
	e.Missing = MET{Pt: rng.Exp(15), Phi: rng.Range(-3, 3), SumEt: rng.Exp(200)}
	if n := rng.Intn(4); n > 0 {
		e.Aux = make(map[string]float64, n)
		for i := 0; i < n; i++ {
			e.Aux[string(rune('a'+i))+"_var"] = rng.Gauss(0, 100)
		}
	}
	return e
}

func fourvecFromRng(rng *xrand.Rand) fourvec.Vec {
	return fourvec.PxPyPzE(rng.Gauss(0, 30), rng.Gauss(0, 30), rng.Gauss(0, 80), rng.Exp(50))
}

func TestV3RoundTripRandomizedEvents(t *testing.T) {
	rng := xrand.New(271828)
	for trial := 0; trial < 50; trial++ {
		var events []*Event
		for i := 0; i < 1+rng.Intn(6); i++ {
			re := randomEvent(rng, uint64(i))
			events = append(events, re)
		}
		var buf bytes.Buffer
		if _, err := WriteEvents(&buf, TierRECO, events); err != nil {
			t.Fatal(err)
		}
		tier, got, err := ReadEvents(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if tier != TierRECO {
			t.Fatalf("trial %d: tier %v", trial, tier)
		}
		if !reflect.DeepEqual(got, events) {
			t.Fatalf("trial %d: round trip diverged", trial)
		}
	}
}

// FuzzV3FrameDecode throws arbitrary bytes at the payload decoder: it must
// reject or accept, never panic or over-allocate.
func FuzzV3FrameDecode(f *testing.F) {
	var seed bytes.Buffer
	if _, err := WriteEvents(&seed, TierRECO, goldenFixture()[:1]); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x05, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := decodeEventV3(data)
		if err == nil {
			// Whatever decoded must re-encode to the same logical event.
			back, err2 := decodeEventV3(appendEventV3(nil, e))
			if err2 != nil || !reflect.DeepEqual(e, back) {
				t.Fatalf("accepted frame does not round-trip: %v", err2)
			}
		}
	})
}

// BenchmarkCodecGobVsV3 races the two generations of the event codec over
// identical RECO events: encode and decode, MB/s and allocs/op. The v3
// acceptance bar is ≥2x fewer allocs/op and higher MB/s than gob.
func BenchmarkCodecGobVsV3(b *testing.B) {
	rng := xrand.New(99)
	events := make([]*Event, 64)
	for i := range events {
		events[i] = fakeRecoEvent(rng, uint64(i))
	}
	var v2buf, v3buf bytes.Buffer
	if err := writeV2Events(&v2buf, TierRECO, events); err != nil {
		b.Fatal(err)
	}
	if _, err := WriteEvents(&v3buf, TierRECO, events); err != nil {
		b.Fatal(err)
	}

	b.Run("encode/gob", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(v2buf.Len()))
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			buf.Grow(v2buf.Len())
			if err := writeV2Events(&buf, TierRECO, events); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("encode/v3", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(v3buf.Len()))
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			buf.Grow(v3buf.Len())
			if _, err := WriteEvents(&buf, TierRECO, events); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/gob", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(v2buf.Len()))
		for i := 0; i < b.N; i++ {
			if _, _, err := ReadEvents(bytes.NewReader(v2buf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode/v3", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(v3buf.Len()))
		for i := 0; i < b.N; i++ {
			if _, _, err := ReadEvents(bytes.NewReader(v3buf.Bytes())); err != nil {
				b.Fatal(err)
			}
		}
	})
}
