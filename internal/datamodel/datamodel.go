// Package datamodel defines the event data model and the data-tier
// taxonomy of the processing chain the paper analyses in §3.2: RECO events
// carry the full reconstruction detail ("the original individual processed
// hits ... through the various intermediate stages"), AOD keeps "only the
// refined objects necessary for further analysis", and derived formats are
// the skimmed/slimmed group formats built from AOD. The package also
// encodes the DPHEP data-level nomenclature (Levels 1–4) used throughout
// the paper's Level 2 discussion.
package datamodel

import (
	"fmt"

	"daspos/internal/fourvec"
)

// Tier labels a processing stage's output format.
type Tier int

// Processing tiers, in production order.
const (
	TierRAW Tier = iota + 1
	TierRECO
	TierAOD
	TierDerived
)

// String returns the tier name.
func (t Tier) String() string {
	switch t {
	case TierRAW:
		return "RAW"
	case TierRECO:
		return "RECO"
	case TierAOD:
		return "AOD"
	case TierDerived:
		return "DERIVED"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// DPHEPLevel is the DPHEP preservation-level nomenclature the paper uses:
// what is preserved, for whom.
type DPHEPLevel int

// DPHEP data levels.
const (
	// DPHEPLevel1 is published results: tables, figures, HepData payloads.
	DPHEPLevel1 DPHEPLevel = 1 + iota
	// DPHEPLevel2 is "actual data and simulation presented in higher-level
	// simplified formats" — outreach samples, encapsulated analyses.
	DPHEPLevel2
	// DPHEPLevel3 is analysis-level data plus the software to use it (AOD
	// and derived formats with reconstruction-level information).
	DPHEPLevel3
	// DPHEPLevel4 is raw data plus the full production software chain.
	DPHEPLevel4
)

// String returns the level's nomenclature description.
func (l DPHEPLevel) String() string {
	switch l {
	case DPHEPLevel1:
		return "L1:published"
	case DPHEPLevel2:
		return "L2:simplified"
	case DPHEPLevel3:
		return "L3:analysis-level"
	case DPHEPLevel4:
		return "L4:raw-and-software"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// LevelForTier maps a processing tier to the DPHEP level preserving it
// would constitute.
func LevelForTier(t Tier) DPHEPLevel {
	switch t {
	case TierRAW:
		return DPHEPLevel4
	case TierRECO, TierAOD:
		return DPHEPLevel3
	default:
		return DPHEPLevel2
	}
}

// ObjectType classifies candidate physics objects.
type ObjectType int

// Candidate object types.
const (
	ObjElectron ObjectType = iota + 1
	ObjMuon
	ObjPhoton
	ObjJet
	ObjTrackCandidate
)

// String returns the object-type name.
func (o ObjectType) String() string {
	switch o {
	case ObjElectron:
		return "electron"
	case ObjMuon:
		return "muon"
	case ObjPhoton:
		return "photon"
	case ObjJet:
		return "jet"
	case ObjTrackCandidate:
		return "track"
	default:
		return fmt.Sprintf("object(%d)", int(o))
	}
}

// Track is a reconstructed charged-particle trajectory (RECO detail).
type Track struct {
	P fourvec.Vec
	// Charge in units of e.
	Charge float64
	// D0 and Z0 are the transverse and longitudinal impact parameters in
	// mm relative to the nominal beamline; displaced-vertex physics (V0s,
	// D lifetimes) lives in these fields.
	D0, Z0 float64
	// NHits is the number of tracker hits on the fit.
	NHits int
	// Chi2 is the fit quality.
	Chi2 float64
}

// VertexFit is a reconstructed interaction or decay vertex (RECO detail).
type VertexFit struct {
	X, Y, Z float64
	NTracks int
	Chi2    float64
}

// Cluster is a calorimeter energy cluster (RECO detail).
type Cluster struct {
	E        float64
	Eta, Phi float64
	// EM marks electromagnetic-calorimeter clusters.
	EM     bool
	NCells int
}

// Candidate is a refined physics object: the AOD-level unit of analysis.
type Candidate struct {
	Type   ObjectType
	P      fourvec.Vec
	Charge float64
	// Quality is an identification score in [0,1].
	Quality float64
	// Isolation is the scalar pT sum in a surrounding cone, in GeV;
	// smaller is more isolated.
	Isolation float64
}

// MET is the event's missing transverse momentum.
type MET struct {
	Pt, Phi float64
	// SumEt is the scalar sum of visible transverse energy.
	SumEt float64
}

// Event is one event at RECO tier or below. Which slices are populated
// depends on the tier: slimming to AOD drops Tracks, Vertices, and
// Clusters; derivation additionally prunes Candidates and Aux.
type Event struct {
	Run    uint32
	Number uint64
	Tier   Tier
	// ProcessID carries the generator truth for simulated samples; it is 0
	// for "collision" data.
	ProcessID int

	Tracks   []Track
	Vertices []VertexFit
	Clusters []Cluster

	Candidates []Candidate
	Missing    MET

	// Aux carries named event-level quantities added by derivation steps
	// (e.g. derived discriminants). Slimming policies may prune it.
	Aux map[string]float64
}

// CandidatesOf returns the event's candidates of one type.
func (e *Event) CandidatesOf(t ObjectType) []Candidate {
	var out []Candidate
	for _, c := range e.Candidates {
		if c.Type == t {
			out = append(out, c)
		}
	}
	return out
}

// LeadingCandidate returns the highest-pT candidate of a type and whether
// one exists.
func (e *Event) LeadingCandidate(t ObjectType) (Candidate, bool) {
	var best Candidate
	found := false
	for _, c := range e.Candidates {
		if c.Type != t {
			continue
		}
		if !found || c.P.Pt() > best.P.Pt() {
			best = c
			found = true
		}
	}
	return best, found
}

// PrimaryVertex returns the vertex with the most tracks, the conventional
// primary-vertex choice, and whether any vertex exists.
func (e *Event) PrimaryVertex() (VertexFit, bool) {
	var best VertexFit
	found := false
	for _, v := range e.Vertices {
		if !found || v.NTracks > best.NTracks {
			best = v
			found = true
		}
	}
	return best, found
}

// SlimToAOD returns a copy of the event at AOD tier: candidates, MET, and
// aux survive; reconstruction detail is dropped. The receiver is not
// modified — derivation never mutates its input, a property the provenance
// layer relies on.
func (e *Event) SlimToAOD() *Event {
	out := &Event{
		Run: e.Run, Number: e.Number, Tier: TierAOD, ProcessID: e.ProcessID,
		Candidates: append([]Candidate(nil), e.Candidates...),
		Missing:    e.Missing,
	}
	if e.Aux != nil {
		out.Aux = make(map[string]float64, len(e.Aux))
		for k, v := range e.Aux {
			out.Aux[k] = v
		}
	}
	return out
}

// SlimViewAOD returns a shallow AOD view of the event: candidates, MET and
// aux are borrowed from the receiver, not copied. The view encodes to
// exactly the bytes SlimToAOD's deep copy would, without allocating — the
// slim stage of the hot path serializes the view and drops it. The view
// must not outlive the receiver's owner (a batch arena, typically); Clone
// it if it must escape.
func (e *Event) SlimViewAOD() Event {
	return Event{
		Run: e.Run, Number: e.Number, Tier: TierAOD, ProcessID: e.ProcessID,
		Candidates: e.Candidates,
		Missing:    e.Missing,
		Aux:        e.Aux,
	}
}

// Clone returns a deep copy of the event at the same tier.
func (e *Event) Clone() *Event {
	out := *e
	out.Tracks = append([]Track(nil), e.Tracks...)
	out.Vertices = append([]VertexFit(nil), e.Vertices...)
	out.Clusters = append([]Cluster(nil), e.Clusters...)
	out.Candidates = append([]Candidate(nil), e.Candidates...)
	if e.Aux != nil {
		out.Aux = make(map[string]float64, len(e.Aux))
		for k, v := range e.Aux {
			out.Aux[k] = v
		}
	}
	return &out
}
