package datamodel

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
)

// Event files come in two generations. Version 2 is a gob stream with a
// typed header, a record envelope per event, and an end-of-stream trailer
// carrying the event count; it stays fully readable. Version 3 — the
// format every writer now produces — keeps the same container semantics
// (typed header, per-event frames, counted end trailer, truncation
// surfaces io.ErrUnexpectedEOF) but swaps gob for the hand-rolled binary
// codec in codec_v3.go: varint/fixed framing, pooled scratch buffers, and
// deterministic map ordering. Both formats stay entirely inside the
// standard library — the "no exotic dependencies" property the paper's
// preservation discussion prizes.
//
// The trailer is what makes truncation detectable: a stream cut at a
// frame boundary otherwise reads as a clean end-of-file, silently
// dropping the tail of an archived tier. A reader that hits end-of-input
// before the trailer reports io.ErrUnexpectedEOF, and a trailer whose
// count disagrees with the events actually read is corruption too.

// fileHeader identifies a version-2 stream and pins the tier so a reader
// cannot mistake a RECO file for an AOD file.
type fileHeader struct {
	Magic   string
	Version int
	Tier    Tier
}

const (
	fileMagic   = "DASPOS-EDM"
	fileVersion = 2

	// fileMagicV3 opens a version-3 stream: eight literal bytes, chosen so
	// no valid gob stream can begin with them (a gob stream starts with a
	// small varint message length, never 'D').
	fileMagicV3 = "DASEDM3\x00"
)

// Version-3 frame markers.
const (
	recEventV3 byte = 0x01
	recEndV3   byte = 0x02
)

// maxFrameV3 bounds a single event frame; anything larger is corruption,
// not physics.
const maxFrameV3 = 1 << 30

// record is the per-message envelope of a version-2 stream: either one
// event, or the end-of-stream trailer (End=true) carrying the total count.
// It remains for the v2 read path and for tests that author v2 streams.
type record struct {
	End   bool
	Count int
	Event *Event
}

// FileWriter writes a homogeneous stream of events of one tier in the
// version-3 format. Close must be called after the last event to write
// the end-of-stream trailer; a stream without a trailer reads back as
// truncated. The writer serializes each event into a pooled scratch
// buffer and emits one frame per event — encode, digest (when the
// underlying writer hashes), and buffering all happen in a single pass
// over the bytes.
type FileWriter struct {
	w       io.Writer
	tier    Tier
	n       int
	closed  bool
	scratch []byte
	head    [binary.MaxVarintLen64 + 1]byte
}

// NewFileWriter starts an event file of the given tier on w.
func NewFileWriter(w io.Writer, tier Tier) (*FileWriter, error) {
	hdr := getScratch()
	hdr = append(hdr, fileMagicV3...)
	hdr = binary.AppendVarint(hdr, int64(tier))
	_, err := w.Write(hdr)
	putScratch(hdr)
	if err != nil {
		return nil, fmt.Errorf("datamodel: writing header: %w", err)
	}
	return &FileWriter{w: w, tier: tier, scratch: getScratch()}, nil
}

// Write appends one event. The event's tier must match the file's.
func (w *FileWriter) Write(e *Event) error {
	if w.closed {
		return fmt.Errorf("datamodel: write after Close")
	}
	if e.Tier != w.tier {
		return fmt.Errorf("datamodel: event tier %v in %v file", e.Tier, w.tier)
	}
	w.scratch = appendEventV3(w.scratch[:0], e)
	w.head[0] = recEventV3
	head := binary.AppendUvarint(w.head[:1], uint64(len(w.scratch)))
	if _, err := w.w.Write(head); err != nil {
		return fmt.Errorf("datamodel: writing frame: %w", err)
	}
	if _, err := w.w.Write(w.scratch); err != nil {
		return fmt.Errorf("datamodel: writing frame: %w", err)
	}
	w.n++
	return nil
}

// Close terminates the stream with the trailer. It does not close the
// underlying writer. Close is idempotent.
func (w *FileWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.scratch != nil {
		putScratch(w.scratch)
		w.scratch = nil
	}
	w.head[0] = recEndV3
	trailer := binary.AppendUvarint(w.head[:1], uint64(w.n))
	if _, err := w.w.Write(trailer); err != nil {
		return fmt.Errorf("datamodel: writing trailer: %w", err)
	}
	return nil
}

// WritePayload appends one event frame whose body was already encoded
// with AppendEventPayload. It is the ordered tail of a parallel encode:
// workers serialize events concurrently and the single writer goroutine
// only frames bytes, so encoding scales with cores while the stream stays
// in event order. The payload's tier is the caller's contract — framing
// cannot re-check it.
func (w *FileWriter) WritePayload(payload []byte) error {
	if w.closed {
		return fmt.Errorf("datamodel: write after Close")
	}
	w.head[0] = recEventV3
	head := binary.AppendUvarint(w.head[:1], uint64(len(payload)))
	if _, err := w.w.Write(head); err != nil {
		return fmt.Errorf("datamodel: writing frame: %w", err)
	}
	if _, err := w.w.Write(payload); err != nil {
		return fmt.Errorf("datamodel: writing frame: %w", err)
	}
	w.n++
	return nil
}

// Count returns the number of events written.
func (w *FileWriter) Count() int { return w.n }

// FileReader reads an event file of either format: the leading bytes
// select the version-3 binary decoder or the legacy version-2 gob
// decoder, so archived v2 tiers stay readable forever. The reader may
// buffer ahead of the frames it has returned; give it a dedicated reader
// over the file's bytes rather than a shared stream.
type FileReader struct {
	tier Tier
	n    int
	done bool

	dec     *gob.Decoder  // version 2
	br      *bufio.Reader // version 3
	payload []byte        // pooled v3 frame scratch
}

// NewFileReader opens an event stream, validating the header and
// detecting the format version.
func NewFileReader(r io.Reader) (*FileReader, error) {
	peek := make([]byte, len(fileMagicV3))
	k, err := io.ReadFull(r, peek)
	if err == nil && bytes.Equal(peek, []byte(fileMagicV3)) {
		br := bufio.NewReader(r)
		tier, terr := binary.ReadVarint(br)
		if terr != nil {
			return nil, fmt.Errorf("datamodel: reading header: %w", io.ErrUnexpectedEOF)
		}
		return &FileReader{tier: Tier(tier), br: br, payload: getScratch()}, nil
	}
	// Not a v3 stream: hand everything read so far to the gob path.
	dec := gob.NewDecoder(io.MultiReader(bytes.NewReader(peek[:k]), r))
	var h fileHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("datamodel: reading header: %w", err)
	}
	if h.Magic != fileMagic {
		return nil, fmt.Errorf("datamodel: bad magic %q", h.Magic)
	}
	if h.Version != fileVersion {
		return nil, fmt.Errorf("datamodel: unsupported version %d", h.Version)
	}
	return &FileReader{dec: dec, tier: h.Tier}, nil
}

// Tier returns the file's declared tier.
func (r *FileReader) Tier() Tier { return r.tier }

// Read returns the next event, or io.EOF once the end-of-stream trailer
// has been seen. Input that ends before the trailer — a truncated file —
// returns an error wrapping io.ErrUnexpectedEOF, never a clean EOF.
func (r *FileReader) Read() (*Event, error) {
	if r.done {
		return nil, io.EOF
	}
	if r.br != nil {
		return r.readV3()
	}
	return r.readV2()
}

func (r *FileReader) truncated() error {
	return fmt.Errorf("datamodel: truncated stream after %d events: %w", r.n, io.ErrUnexpectedEOF)
}

// finish marks end-of-stream and returns the v3 scratch to the pool.
func (r *FileReader) finish() {
	r.done = true
	if r.payload != nil {
		putScratch(r.payload)
		r.payload = nil
	}
}

// nextFrameV3 reads the next frame and returns its payload in the reader's
// pooled scratch, valid until the next call. At the end-of-stream trailer
// it validates the count, marks the reader done, and returns io.EOF.
func (r *FileReader) nextFrameV3() ([]byte, error) {
	marker, err := r.br.ReadByte()
	if err != nil {
		return nil, r.truncated()
	}
	switch marker {
	case recEndV3:
		count, err := binary.ReadUvarint(r.br)
		if err != nil {
			return nil, r.truncated()
		}
		if int(count) != r.n {
			return nil, fmt.Errorf("datamodel: trailer count %d, read %d events", count, r.n)
		}
		r.finish()
		return nil, io.EOF
	case recEventV3:
		ln, err := binary.ReadUvarint(r.br)
		if err != nil {
			return nil, r.truncated()
		}
		if ln > maxFrameV3 {
			return nil, fmt.Errorf("datamodel: implausible frame size %d", ln)
		}
		if uint64(cap(r.payload)) < ln {
			r.payload = make([]byte, ln)
		}
		buf := r.payload[:ln]
		if _, err := io.ReadFull(r.br, buf); err != nil {
			return nil, r.truncated()
		}
		r.payload = buf[:cap(buf)]
		return buf, nil
	default:
		return nil, fmt.Errorf("datamodel: unknown frame marker 0x%02x", marker)
	}
}

func (r *FileReader) readV3() (*Event, error) {
	buf, err := r.nextFrameV3()
	if err != nil {
		return nil, err
	}
	e, err := decodeEventV3(buf)
	if err != nil {
		return nil, fmt.Errorf("datamodel: decoding event: %w", err)
	}
	r.n++
	return e, nil
}

// ReadInto decodes the next event into the batch arena instead of
// allocating: the zero-copy read primitive of the hot path. It returns
// io.EOF at the trailer and io.ErrUnexpectedEOF-wrapping errors on
// truncation, exactly like Read. On a v2 stream it falls back to the gob
// decoder and deep-copies the event into the batch, so callers need not
// care which generation the file is.
func (r *FileReader) ReadInto(b *Batch) error {
	if r.done {
		return io.EOF
	}
	if r.br != nil {
		buf, err := r.nextFrameV3()
		if err != nil {
			return err
		}
		if err := DecodeInto(b, buf); err != nil {
			return fmt.Errorf("datamodel: decoding event: %w", err)
		}
		r.n++
		return nil
	}
	e, err := r.readV2()
	if err != nil {
		return err
	}
	b.Append(e)
	return nil
}

func (r *FileReader) readV2() (*Event, error) {
	var rec record
	if err := r.dec.Decode(&rec); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// The underlying input ran out before the trailer: the file
			// is cut short, whether or not the cut fell on a gob message
			// boundary.
			return nil, r.truncated()
		}
		return nil, fmt.Errorf("datamodel: decoding event: %w", err)
	}
	if rec.End {
		if rec.Count != r.n {
			return nil, fmt.Errorf("datamodel: trailer count %d, read %d events", rec.Count, r.n)
		}
		r.done = true
		return nil, io.EOF
	}
	if rec.Event == nil {
		return nil, fmt.Errorf("datamodel: empty record in stream")
	}
	r.n++
	return rec.Event, nil
}

// ReadAll drains the stream. A truncated stream returns an error wrapping
// io.ErrUnexpectedEOF rather than silently returning the partial sample.
func (r *FileReader) ReadAll() ([]*Event, error) {
	var out []*Event
	for {
		e, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// WriteEvents writes a slice of same-tier events as one file and reports
// the encoded byte count — the primitive behind the tier-size cascade of
// experiment W1.
func WriteEvents(w io.Writer, tier Tier, events []*Event) (int64, error) {
	cw := &countingWriter{w: w}
	fw, err := NewFileWriter(cw, tier)
	if err != nil {
		return 0, err
	}
	for _, e := range events {
		if err := fw.Write(e); err != nil {
			return cw.n, err
		}
	}
	if err := fw.Close(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadEvents reads a whole event file.
func ReadEvents(r io.Reader) (Tier, []*Event, error) {
	fr, err := NewFileReader(r)
	if err != nil {
		return 0, nil, err
	}
	events, err := fr.ReadAll()
	return fr.Tier(), events, err
}

// EncodedSize returns the serialized size in bytes of the events as one
// file of the given tier.
func EncodedSize(tier Tier, events []*Event) (int64, error) {
	var buf bytes.Buffer
	return WriteEvents(&buf, tier, events)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// FrameScanner iterates the event frames of an in-memory version-3 stream
// without copying: each Next returns a subslice of the original buffer,
// suitable for feeding straight into DecodeInto. It is the source-side
// zero-copy primitive — a tier held as one blob (the common case once CAS
// hands back the whole object) can be fanned out to decode workers as
// cheap frame slices instead of one event allocation per frame.
type FrameScanner struct {
	data []byte
	off  int
	tier Tier
	n    int
	done bool
}

// NewFrameScanner validates the v3 header and positions the scanner at the
// first frame. Only version-3 streams are supported; v2 gob streams need
// the copying FileReader.
func NewFrameScanner(data []byte) (*FrameScanner, error) {
	if len(data) < len(fileMagicV3) || !bytes.Equal(data[:len(fileMagicV3)], []byte(fileMagicV3)) {
		return nil, fmt.Errorf("datamodel: not a v3 stream")
	}
	off := len(fileMagicV3)
	tier, k := binary.Varint(data[off:])
	if k <= 0 {
		return nil, fmt.Errorf("datamodel: reading header: %w", io.ErrUnexpectedEOF)
	}
	return &FrameScanner{data: data, off: off + k, tier: Tier(tier)}, nil
}

// Tier returns the stream's declared tier.
func (s *FrameScanner) Tier() Tier { return s.tier }

// Count returns the number of frames returned so far.
func (s *FrameScanner) Count() int { return s.n }

// Next returns the next event payload as a subslice of the scanned buffer,
// io.EOF after the validated trailer, or an io.ErrUnexpectedEOF-wrapping
// error if the buffer ends before the trailer.
func (s *FrameScanner) Next() ([]byte, error) {
	if s.done {
		return nil, io.EOF
	}
	if s.off >= len(s.data) {
		return nil, fmt.Errorf("datamodel: truncated stream after %d events: %w", s.n, io.ErrUnexpectedEOF)
	}
	marker := s.data[s.off]
	s.off++
	switch marker {
	case recEndV3:
		count, k := binary.Uvarint(s.data[s.off:])
		if k <= 0 {
			return nil, fmt.Errorf("datamodel: truncated stream after %d events: %w", s.n, io.ErrUnexpectedEOF)
		}
		s.off += k
		if int(count) != s.n {
			return nil, fmt.Errorf("datamodel: trailer count %d, read %d events", count, s.n)
		}
		s.done = true
		return nil, io.EOF
	case recEventV3:
		ln, k := binary.Uvarint(s.data[s.off:])
		if k <= 0 {
			return nil, fmt.Errorf("datamodel: truncated stream after %d events: %w", s.n, io.ErrUnexpectedEOF)
		}
		s.off += k
		if ln > maxFrameV3 {
			return nil, fmt.Errorf("datamodel: implausible frame size %d", ln)
		}
		if uint64(len(s.data)-s.off) < ln {
			return nil, fmt.Errorf("datamodel: truncated stream after %d events: %w", s.n, io.ErrUnexpectedEOF)
		}
		payload := s.data[s.off : s.off+int(ln) : s.off+int(ln)]
		s.off += int(ln)
		s.n++
		return payload, nil
	default:
		return nil, fmt.Errorf("datamodel: unknown frame marker 0x%02x", marker)
	}
}

// MarshalJSONEvent renders one event as indented JSON: the human-readable
// Level 2 export format consumed by the outreach converter.
func MarshalJSONEvent(e *Event) ([]byte, error) {
	return json.MarshalIndent(e, "", "  ")
}

// UnmarshalJSONEvent parses an event from its JSON form.
func UnmarshalJSONEvent(data []byte) (*Event, error) {
	var e Event
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("datamodel: parsing JSON event: %w", err)
	}
	return &e, nil
}
