package datamodel

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
)

// Event files are gob streams with a small typed header. gob keeps the
// container self-describing (field renames surface as decode errors rather
// than silent corruption) while staying entirely inside the standard
// library — the "no exotic dependencies" property the paper's preservation
// discussion prizes.
//
// Version 2 frames every event in a record envelope and terminates the
// stream with an explicit end-of-stream trailer carrying the event count.
// The trailer is what makes truncation detectable: a gob stream cut at a
// message boundary otherwise reads as a clean end-of-file, silently
// dropping the tail of an archived tier. A reader that hits end-of-input
// before the trailer reports io.ErrUnexpectedEOF, and a trailer whose
// count disagrees with the events actually read is corruption too.

// fileHeader identifies the stream and pins the tier so a reader cannot
// mistake a RECO file for an AOD file.
type fileHeader struct {
	Magic   string
	Version int
	Tier    Tier
}

const (
	fileMagic   = "DASPOS-EDM"
	fileVersion = 2
)

// record is the per-message envelope of a version-2 stream: either one
// event, or the end-of-stream trailer (End=true) carrying the total count.
type record struct {
	End   bool
	Count int
	Event *Event
}

// FileWriter writes a homogeneous stream of events of one tier. Close must
// be called after the last event to write the end-of-stream trailer; a
// stream without a trailer reads back as truncated.
type FileWriter struct {
	enc    *gob.Encoder
	tier   Tier
	n      int
	closed bool
}

// NewFileWriter starts an event file of the given tier on w.
func NewFileWriter(w io.Writer, tier Tier) (*FileWriter, error) {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(fileHeader{Magic: fileMagic, Version: fileVersion, Tier: tier}); err != nil {
		return nil, fmt.Errorf("datamodel: writing header: %w", err)
	}
	return &FileWriter{enc: enc, tier: tier}, nil
}

// Write appends one event. The event's tier must match the file's.
func (w *FileWriter) Write(e *Event) error {
	if w.closed {
		return fmt.Errorf("datamodel: write after Close")
	}
	if e.Tier != w.tier {
		return fmt.Errorf("datamodel: event tier %v in %v file", e.Tier, w.tier)
	}
	if err := w.enc.Encode(record{Event: e}); err != nil {
		return err
	}
	w.n++
	return nil
}

// Close terminates the stream with the trailer. It does not close the
// underlying writer. Close is idempotent.
func (w *FileWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.enc.Encode(record{End: true, Count: w.n}); err != nil {
		return fmt.Errorf("datamodel: writing trailer: %w", err)
	}
	return nil
}

// Count returns the number of events written.
func (w *FileWriter) Count() int { return w.n }

// FileReader reads an event file.
type FileReader struct {
	dec  *gob.Decoder
	tier Tier
	n    int
	done bool
}

// NewFileReader opens an event stream, validating the header.
func NewFileReader(r io.Reader) (*FileReader, error) {
	dec := gob.NewDecoder(r)
	var h fileHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("datamodel: reading header: %w", err)
	}
	if h.Magic != fileMagic {
		return nil, fmt.Errorf("datamodel: bad magic %q", h.Magic)
	}
	if h.Version != fileVersion {
		return nil, fmt.Errorf("datamodel: unsupported version %d", h.Version)
	}
	return &FileReader{dec: dec, tier: h.Tier}, nil
}

// Tier returns the file's declared tier.
func (r *FileReader) Tier() Tier { return r.tier }

// Read returns the next event, or io.EOF once the end-of-stream trailer
// has been seen. Input that ends before the trailer — a truncated file —
// returns an error wrapping io.ErrUnexpectedEOF, never a clean EOF.
func (r *FileReader) Read() (*Event, error) {
	if r.done {
		return nil, io.EOF
	}
	var rec record
	if err := r.dec.Decode(&rec); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			// The underlying input ran out before the trailer: the file
			// is cut short, whether or not the cut fell on a gob message
			// boundary.
			return nil, fmt.Errorf("datamodel: truncated stream after %d events: %w", r.n, io.ErrUnexpectedEOF)
		}
		return nil, fmt.Errorf("datamodel: decoding event: %w", err)
	}
	if rec.End {
		if rec.Count != r.n {
			return nil, fmt.Errorf("datamodel: trailer count %d, read %d events", rec.Count, r.n)
		}
		r.done = true
		return nil, io.EOF
	}
	if rec.Event == nil {
		return nil, fmt.Errorf("datamodel: empty record in stream")
	}
	r.n++
	return rec.Event, nil
}

// ReadAll drains the stream. A truncated stream returns an error wrapping
// io.ErrUnexpectedEOF rather than silently returning the partial sample.
func (r *FileReader) ReadAll() ([]*Event, error) {
	var out []*Event
	for {
		e, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// WriteEvents writes a slice of same-tier events as one file and reports
// the encoded byte count — the primitive behind the tier-size cascade of
// experiment W1.
func WriteEvents(w io.Writer, tier Tier, events []*Event) (int64, error) {
	cw := &countingWriter{w: w}
	fw, err := NewFileWriter(cw, tier)
	if err != nil {
		return 0, err
	}
	for _, e := range events {
		if err := fw.Write(e); err != nil {
			return cw.n, err
		}
	}
	if err := fw.Close(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// ReadEvents reads a whole event file.
func ReadEvents(r io.Reader) (Tier, []*Event, error) {
	fr, err := NewFileReader(r)
	if err != nil {
		return 0, nil, err
	}
	events, err := fr.ReadAll()
	return fr.Tier(), events, err
}

// EncodedSize returns the serialized size in bytes of the events as one
// file of the given tier.
func EncodedSize(tier Tier, events []*Event) (int64, error) {
	var buf bytes.Buffer
	return WriteEvents(&buf, tier, events)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// MarshalJSONEvent renders one event as indented JSON: the human-readable
// Level 2 export format consumed by the outreach converter.
func MarshalJSONEvent(e *Event) ([]byte, error) {
	return json.MarshalIndent(e, "", "  ")
}

// UnmarshalJSONEvent parses an event from its JSON form.
func UnmarshalJSONEvent(data []byte) (*Event, error) {
	var e Event
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("datamodel: parsing JSON event: %w", err)
	}
	return &e, nil
}
