package datamodel

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
)

// Event files are gob streams with a small typed header. gob keeps the
// container self-describing (field renames surface as decode errors rather
// than silent corruption) while staying entirely inside the standard
// library — the "no exotic dependencies" property the paper's preservation
// discussion prizes.

// fileHeader identifies the stream and pins the tier so a reader cannot
// mistake a RECO file for an AOD file.
type fileHeader struct {
	Magic   string
	Version int
	Tier    Tier
}

const (
	fileMagic   = "DASPOS-EDM"
	fileVersion = 1
)

// FileWriter writes a homogeneous stream of events of one tier.
type FileWriter struct {
	enc  *gob.Encoder
	tier Tier
	n    int
}

// NewFileWriter starts an event file of the given tier on w.
func NewFileWriter(w io.Writer, tier Tier) (*FileWriter, error) {
	enc := gob.NewEncoder(w)
	if err := enc.Encode(fileHeader{Magic: fileMagic, Version: fileVersion, Tier: tier}); err != nil {
		return nil, fmt.Errorf("datamodel: writing header: %w", err)
	}
	return &FileWriter{enc: enc, tier: tier}, nil
}

// Write appends one event. The event's tier must match the file's.
func (w *FileWriter) Write(e *Event) error {
	if e.Tier != w.tier {
		return fmt.Errorf("datamodel: event tier %v in %v file", e.Tier, w.tier)
	}
	if err := w.enc.Encode(e); err != nil {
		return err
	}
	w.n++
	return nil
}

// Count returns the number of events written.
func (w *FileWriter) Count() int { return w.n }

// FileReader reads an event file.
type FileReader struct {
	dec  *gob.Decoder
	tier Tier
}

// NewFileReader opens an event stream, validating the header.
func NewFileReader(r io.Reader) (*FileReader, error) {
	dec := gob.NewDecoder(r)
	var h fileHeader
	if err := dec.Decode(&h); err != nil {
		return nil, fmt.Errorf("datamodel: reading header: %w", err)
	}
	if h.Magic != fileMagic {
		return nil, fmt.Errorf("datamodel: bad magic %q", h.Magic)
	}
	if h.Version != fileVersion {
		return nil, fmt.Errorf("datamodel: unsupported version %d", h.Version)
	}
	return &FileReader{dec: dec, tier: h.Tier}, nil
}

// Tier returns the file's declared tier.
func (r *FileReader) Tier() Tier { return r.tier }

// Read returns the next event, or io.EOF at end of stream.
func (r *FileReader) Read() (*Event, error) {
	var e Event
	if err := r.dec.Decode(&e); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("datamodel: decoding event: %w", err)
	}
	return &e, nil
}

// ReadAll drains the stream.
func (r *FileReader) ReadAll() ([]*Event, error) {
	var out []*Event
	for {
		e, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
}

// WriteEvents writes a slice of same-tier events as one file and reports
// the encoded byte count — the primitive behind the tier-size cascade of
// experiment W1.
func WriteEvents(w io.Writer, tier Tier, events []*Event) (int64, error) {
	cw := &countingWriter{w: w}
	fw, err := NewFileWriter(cw, tier)
	if err != nil {
		return 0, err
	}
	for _, e := range events {
		if err := fw.Write(e); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

// ReadEvents reads a whole event file.
func ReadEvents(r io.Reader) (Tier, []*Event, error) {
	fr, err := NewFileReader(r)
	if err != nil {
		return 0, nil, err
	}
	events, err := fr.ReadAll()
	return fr.Tier(), events, err
}

// EncodedSize returns the serialized size in bytes of the events as one
// file of the given tier.
func EncodedSize(tier Tier, events []*Event) (int64, error) {
	var buf bytes.Buffer
	return WriteEvents(&buf, tier, events)
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// MarshalJSONEvent renders one event as indented JSON: the human-readable
// Level 2 export format consumed by the outreach converter.
func MarshalJSONEvent(e *Event) ([]byte, error) {
	return json.MarshalIndent(e, "", "  ")
}

// UnmarshalJSONEvent parses an event from its JSON form.
func UnmarshalJSONEvent(data []byte) (*Event, error) {
	var e Event
	if err := json.Unmarshal(data, &e); err != nil {
		return nil, fmt.Errorf("datamodel: parsing JSON event: %w", err)
	}
	return &e, nil
}
