package datamodel

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"

	"daspos/internal/xrand"
)

// framesOf serializes events and returns the raw v3 payload per event plus
// the full stream bytes.
func framesOf(t testing.TB, events []*Event) ([][]byte, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if _, err := WriteEvents(&buf, events[0].Tier, events); err != nil {
		t.Fatal(err)
	}
	sc, err := NewFrameScanner(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var frames [][]byte
	for {
		p, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, p)
	}
	return frames, buf.Bytes()
}

// TestDecodeIntoMatchesDecode is the core equality contract: the arena
// decoder must produce events deeply equal to the allocating decoder from
// the same payloads, across randomized shapes including empty collections
// and multi-key Aux maps — and again after a Reset, when it is reusing
// storage from the previous generation.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	rng := xrand.New(314159)
	b := NewBatch(8)
	for trial := 0; trial < 40; trial++ {
		var events []*Event
		for i := 0; i < 1+rng.Intn(7); i++ {
			events = append(events, randomEvent(rng, uint64(i)))
		}
		events[0].Tier = TierRECO
		for _, e := range events {
			e.Tier = TierRECO
		}
		frames, _ := framesOf(t, events)
		b.Reset()
		for i, p := range frames {
			want, err := decodeEventV3(p)
			if err != nil {
				t.Fatalf("trial %d: plain decode: %v", trial, err)
			}
			if err := DecodeInto(b, p); err != nil {
				t.Fatalf("trial %d: DecodeInto: %v", trial, err)
			}
			if got := b.At(i); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d event %d: arena decode diverged\n got %+v\nwant %+v", trial, i, got, want)
			}
		}
		if b.Len() != len(frames) {
			t.Fatalf("trial %d: batch length %d, want %d", trial, b.Len(), len(frames))
		}
		// The equality must still hold after every append settled: growth
		// during later events must not have detached earlier ones.
		for i, p := range frames {
			want, _ := decodeEventV3(p)
			if got := b.At(i); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d event %d: diverged after later growth", trial, i)
			}
		}
	}
}

// TestBatchGrowthRefixup drives the backing arrays through many capacity
// doublings and then checks both directions of the aliasing contract:
// every event still reads back its own data, and each event's slices alias
// the arena (three-index capped at the span, so an append through an
// escaped slice cannot clobber a neighbour).
func TestBatchGrowthRefixup(t *testing.T) {
	rng := xrand.New(60221)
	var events []*Event
	for i := 0; i < 200; i++ {
		e := randomEvent(rng, uint64(i))
		e.Tier = TierRECO
		events = append(events, e)
	}
	b := NewBatch(1) // force event-array growth too
	for _, e := range events {
		b.Append(e)
	}
	for i, want := range events {
		got := b.At(i)
		if !reflect.DeepEqual(got.Tracks, want.Tracks) || !reflect.DeepEqual(got.Candidates, want.Candidates) {
			t.Fatalf("event %d detached from its data after growth", i)
		}
		if len(got.Tracks) > 0 {
			sp := b.spans[i].trk
			if &got.Tracks[0] != &b.tracks[sp.off] {
				t.Fatalf("event %d tracks do not alias the arena", i)
			}
			if cap(got.Tracks) != len(got.Tracks) {
				t.Fatalf("event %d tracks not capped at span: cap %d len %d", i, cap(got.Tracks), len(got.Tracks))
			}
		}
	}
}

// TestDecodeIntoRollback feeds a corrupt payload mid-batch and checks the
// arena rolls back to a consistent state: length unchanged, prior events
// intact, and the batch still usable afterwards.
func TestDecodeIntoRollback(t *testing.T) {
	rng := xrand.New(1618)
	var events []*Event
	for i := 0; i < 4; i++ {
		e := randomEvent(rng, uint64(i))
		e.Tier = TierRECO
		events = append(events, e)
	}
	frames, _ := framesOf(t, events)
	b := NewBatch(4)
	for _, p := range frames[:2] {
		if err := DecodeInto(b, p); err != nil {
			t.Fatal(err)
		}
	}
	if err := DecodeInto(b, frames[2][:len(frames[2])/2]); err == nil {
		t.Fatal("truncated payload decoded cleanly")
	}
	if b.Len() != 2 {
		t.Fatalf("rollback left %d events, want 2", b.Len())
	}
	for i := 0; i < 2; i++ {
		want, _ := decodeEventV3(frames[i])
		if !reflect.DeepEqual(b.At(i), want) {
			t.Fatalf("event %d damaged by rollback", i)
		}
	}
	if err := DecodeInto(b, frames[2]); err != nil {
		t.Fatalf("batch unusable after rollback: %v", err)
	}
	want, _ := decodeEventV3(frames[2])
	if !reflect.DeepEqual(b.At(2), want) {
		t.Fatal("post-rollback decode diverged")
	}
}

// TestBatchCloneEscapesArena verifies the ownership escape hatch: a Clone
// survives the arena being reset and overwritten.
func TestBatchCloneEscapesArena(t *testing.T) {
	rng := xrand.New(2718)
	e := randomEvent(rng, 7)
	e.Tier = TierRECO
	for len(e.Tracks) == 0 {
		e = randomEvent(rng, 7)
		e.Tier = TierRECO
	}
	b := NewBatch(1)
	b.Append(e)
	cl := b.Clone(0)
	b.Reset()
	other := randomEvent(rng, 8)
	other.Tier = TierRECO
	b.Append(other)
	if !reflect.DeepEqual(cl, e.Clone()) {
		t.Fatal("clone was damaged by arena reuse")
	}
}

// TestDecodeIntoSteadyStateAllocs pins the tentpole number: decoding into
// a warm batch allocates nothing for Aux-free events (the RECO/AOD hot
// path), versus ~5 allocations per event for the plain decoder.
func TestDecodeIntoSteadyStateAllocs(t *testing.T) {
	rng := xrand.New(42)
	var events []*Event
	for i := 0; i < 16; i++ {
		e := randomEvent(rng, uint64(i))
		e.Tier = TierRECO
		e.Aux = nil
		events = append(events, e)
	}
	frames, _ := framesOf(t, events)
	b := NewBatch(len(frames))
	decodeAll := func() {
		b.Reset()
		for _, p := range frames {
			if err := DecodeInto(b, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	decodeAll() // warm the arena
	if allocs := testing.AllocsPerRun(50, decodeAll); allocs > 0 {
		t.Fatalf("warm DecodeInto allocated %.1f per batch of %d events, want 0", allocs, len(frames))
	}
}

// TestReadIntoBothGenerations checks FileReader.ReadInto against ReadAll
// on a v3 stream and on a legacy v2 gob stream (where it falls back to a
// deep copy), including the truncation contract.
func TestReadIntoBothGenerations(t *testing.T) {
	rng := xrand.New(1729)
	var events []*Event
	for i := 0; i < 6; i++ {
		e := randomEvent(rng, uint64(i))
		e.Tier = TierRECO
		events = append(events, e)
	}

	var v3buf bytes.Buffer
	if _, err := WriteEvents(&v3buf, TierRECO, events); err != nil {
		t.Fatal(err)
	}
	var v2buf bytes.Buffer
	if err := writeV2Events(&v2buf, TierRECO, events); err != nil {
		t.Fatal(err)
	}

	for name, stream := range map[string][]byte{"v3": v3buf.Bytes(), "v2": v2buf.Bytes()} {
		fr, err := NewFileReader(bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		b := NewBatch(8)
		for {
			err := fr.ReadInto(b)
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		if b.Len() != len(events) {
			t.Fatalf("%s: read %d events, want %d", name, b.Len(), len(events))
		}
		for i := range events {
			if !reflect.DeepEqual(b.At(i), events[i]) {
				t.Fatalf("%s: event %d diverged", name, i)
			}
		}
	}

	// Truncation must surface io.ErrUnexpectedEOF, exactly like Read.
	cut := v3buf.Bytes()[:v3buf.Len()-3]
	fr, err := NewFileReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBatch(8)
	for {
		err = fr.ReadInto(b)
		if err != nil {
			break
		}
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated ReadInto: got %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestFrameScannerMatchesReader walks the same stream via FrameScanner +
// plain decode and via FileReader, asserting identical events, and checks
// the scanner's trailer/truncation handling.
func TestFrameScannerMatchesReader(t *testing.T) {
	rng := xrand.New(8128)
	var events []*Event
	for i := 0; i < 10; i++ {
		e := randomEvent(rng, uint64(i))
		e.Tier = TierAOD
		events = append(events, e)
	}
	var buf bytes.Buffer
	if _, err := WriteEvents(&buf, TierAOD, events); err != nil {
		t.Fatal(err)
	}

	sc, err := NewFrameScanner(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if sc.Tier() != TierAOD {
		t.Fatalf("scanner tier %v", sc.Tier())
	}
	var got []*Event
	for {
		p, err := sc.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		e, err := decodeEventV3(p)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatal("scanner walk diverged from writer input")
	}
	if sc.Count() != len(events) {
		t.Fatalf("scanner count %d, want %d", sc.Count(), len(events))
	}

	// Cut before the trailer: must be io.ErrUnexpectedEOF, not clean EOF.
	sc2, err := NewFrameScanner(buf.Bytes()[:buf.Len()-2])
	if err != nil {
		t.Fatal(err)
	}
	for {
		_, err = sc2.Next()
		if err != nil {
			break
		}
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated scan: got %v, want io.ErrUnexpectedEOF", err)
	}

	// A v2 stream is not scannable.
	var v2buf bytes.Buffer
	if err := writeV2Events(&v2buf, TierAOD, events); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFrameScanner(v2buf.Bytes()); err == nil {
		t.Fatal("scanner accepted a v2 stream")
	}
}

// TestSlimViewAODEncodesLikeSlimToAOD pins the zero-copy slim stage: the
// borrowed view must serialize to exactly the bytes of the deep copy.
func TestSlimViewAODEncodesLikeSlimToAOD(t *testing.T) {
	rng := xrand.New(5050)
	for i := 0; i < 30; i++ {
		e := randomEvent(rng, uint64(i))
		e.Tier = TierRECO
		view := e.SlimViewAOD()
		deep := e.SlimToAOD()
		vb := appendEventV3(nil, &view)
		db := appendEventV3(nil, deep)
		if !bytes.Equal(vb, db) {
			t.Fatalf("event %d: view bytes differ from deep-copy bytes", i)
		}
	}
}

// FuzzDecodeIntoMatchesDecode cross-checks the two decoders on arbitrary
// bytes: they must agree on accept/reject, and on acceptance produce
// deeply equal events — including when the batch is warm with recycled
// storage.
func FuzzDecodeIntoMatchesDecode(f *testing.F) {
	rng := xrand.New(97)
	var events []*Event
	for i := 0; i < 3; i++ {
		e := randomEvent(rng, uint64(i))
		e.Tier = TierRECO
		events = append(events, e)
	}
	for _, e := range events {
		f.Add(appendEventV3(nil, e))
	}
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x05, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	warmPayload := appendEventV3(nil, events[0])
	f.Fuzz(func(t *testing.T, data []byte) {
		b := NewBatch(2)
		// Warm the arena first so the fuzz also exercises storage reuse.
		if err := DecodeInto(b, warmPayload); err != nil {
			t.Fatal(err)
		}
		b.Reset()
		want, wantErr := decodeEventV3(data)
		gotErr := DecodeInto(b, data)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("decoders disagree: plain=%v arena=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			if b.Len() != 0 {
				t.Fatalf("failed decode left %d events in batch", b.Len())
			}
			return
		}
		if !reflect.DeepEqual(b.At(0), want) {
			t.Fatalf("arena decode diverged from plain decode")
		}
	})
}

// TestWritePayloadMatchesWrite: the parallel-encode path (AppendEventPayload
// on workers + WritePayload framing) produces a byte-identical file to the
// ordinary Write path, so a pipeline can switch freely between them.
func TestWritePayloadMatchesWrite(t *testing.T) {
	rng := xrand.New(71)
	events := make([]*Event, 30)
	for i := range events {
		events[i] = randomEvent(rng, uint64(i))
	}

	var direct bytes.Buffer
	fw, err := NewFileWriter(&direct, TierRECO)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if err := fw.Write(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}

	var framed bytes.Buffer
	fw2, err := NewFileWriter(&framed, TierRECO)
	if err != nil {
		t.Fatal(err)
	}
	var scratch []byte
	for _, e := range events {
		scratch = AppendEventPayload(scratch[:0], e)
		if err := fw2.WritePayload(scratch); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw2.Close(); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(direct.Bytes(), framed.Bytes()) {
		t.Fatal("WritePayload stream differs from Write stream")
	}
	if fw2.Count() != len(events) {
		t.Fatalf("WritePayload count %d, want %d", fw2.Count(), len(events))
	}
}
