package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 95 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child and parent must not emit the same stream.
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			t.Fatalf("parent and child streams collided at %d", i)
		}
	}
}

func TestSplitDeterminism(t *testing.T) {
	c1 := New(7).Split()
	c2 := New(7).Split()
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean %v too far from 0.5", mean)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(5)
	if err := quick.Check(func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(6)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Intn(10)]++
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/10) > 5*math.Sqrt(n/10) {
			t.Fatalf("bucket %d count %d too far from %d", b, c, n/10)
		}
	}
}

func TestGaussMoments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := r.Gauss(5, 2)
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean-5) > 0.03 {
		t.Fatalf("gauss mean %v != 5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.03 {
		t.Fatalf("gauss sigma %v != 2", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	r := New(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(3)
		if v < 0 {
			t.Fatalf("negative exponential deviate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-3) > 0.05 {
		t.Fatalf("exp mean %v != 3", mean)
	}
}

func TestBreitWignerMedian(t *testing.T) {
	r := New(10)
	const n = 100000
	above := 0
	for i := 0; i < n; i++ {
		v := r.BreitWigner(91.2, 2.5)
		if v <= 0 {
			t.Fatalf("non-positive BW deviate %v", v)
		}
		if v > 91.2 {
			above++
		}
	}
	frac := float64(above) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("BW median off: %v of mass above pole", frac)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(11)
	for _, mean := range []float64{0.5, 3, 25, 80} {
		const n = 50000
		sum := 0.0
		for i := 0; i < n; i++ {
			v := r.Poisson(mean)
			if v < 0 {
				t.Fatalf("negative poisson deviate %d", v)
			}
			sum += float64(v)
		}
		got := sum / n
		if math.Abs(got-mean) > 4*math.Sqrt(mean/n)+0.05 {
			t.Fatalf("poisson(%v) mean %v", mean, got)
		}
	}
}

func TestPoissonNonPositiveMean(t *testing.T) {
	r := New(12)
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean must be 0")
	}
}

func TestPowerLawBounds(t *testing.T) {
	r := New(13)
	for _, alpha := range []float64{0.5, 1.0, 2.7, 4.0} {
		for i := 0; i < 10000; i++ {
			v := r.PowerLaw(alpha, 10, 500)
			if v < 10 || v > 500.0000001 {
				t.Fatalf("PowerLaw(alpha=%v) out of range: %v", alpha, v)
			}
		}
	}
}

func TestPowerLawSteepness(t *testing.T) {
	// A steeper spectrum must put more probability near xmin.
	r := New(14)
	low := func(alpha float64) float64 {
		n, cnt := 50000, 0
		for i := 0; i < n; i++ {
			if r.PowerLaw(alpha, 10, 500) < 20 {
				cnt++
			}
		}
		return float64(cnt) / float64(n)
	}
	if low(4.0) <= low(1.5) {
		t.Fatal("steeper power law is not more peaked at xmin")
	}
}

func TestPowerLawPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PowerLaw with bad bounds did not panic")
		}
	}()
	New(1).PowerLaw(2, -1, 5)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(15)
	if err := quick.Check(func(n uint8) bool {
		m := int(n%64) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(16)
	for i := 0; i < 10000; i++ {
		v := r.Range(-2, 7)
		if v < -2 || v >= 7 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(17)
	const n = 100000
	cnt := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			cnt++
		}
	}
	if frac := float64(cnt) / n; math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) rate %v", frac)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkGauss(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Gauss(0, 1)
	}
}

func TestForEventDeterminism(t *testing.T) {
	// The stream for (seed, event) is a pure function of the pair: it must
	// not depend on how many other events were drawn first.
	a := ForEvent(42, 7)
	b := ForEvent(42, 7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("ForEvent streams diverge for identical (seed, event)")
		}
	}
}

func TestForEventIndependence(t *testing.T) {
	// Neighbouring event numbers and neighbouring seeds must give
	// uncorrelated streams: no shared prefix, means near 1/2.
	const draws = 20000
	for _, pair := range [][2]*Rand{
		{ForEvent(1, 0), ForEvent(1, 1)},
		{ForEvent(1, 5), ForEvent(2, 5)},
	} {
		a, b := pair[0], pair[1]
		if a.Uint64() == b.Uint64() {
			t.Fatal("distinct (seed, event) pairs share their first output")
		}
		var sum float64
		for i := 0; i < draws; i++ {
			sum += a.Float64() - b.Float64()
		}
		if mean := sum / draws; math.Abs(mean) > 0.02 {
			t.Fatalf("correlated streams: mean difference %v", mean)
		}
	}
}
