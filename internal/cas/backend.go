package cas

import (
	"fmt"
	"sort"
	"sync"
)

// Backend is the raw blob storage beneath a Store: digest → compressed
// bytes plus the logical (uncompressed) size. Splitting storage from the
// Store's compress/verify logic lets deployments swap media (memory today,
// disk or object storage tomorrow) and lets tests inject faulty backends —
// the fault injector in internal/faults wraps a Backend to simulate bit
// rot, transient I/O errors, and latency without touching the fixity
// machinery above it.
//
// Implementations must be safe for concurrent use.
type Backend interface {
	// PutBlob stores (or overwrites) the compressed bytes for a digest.
	PutBlob(digest string, comp []byte, logical int64) error
	// GetBlob returns the compressed bytes and logical size, or an error
	// wrapping ErrNotFound when the digest is absent.
	GetBlob(digest string) (comp []byte, logical int64, err error)
	// HasBlob reports whether the digest is stored.
	HasBlob(digest string) bool
	// DeleteBlob removes a blob; deleting an absent digest is a no-op.
	DeleteBlob(digest string)
	// Digests returns the sorted list of stored digests.
	Digests() []string
}

// MemBackend is the in-memory Backend: the seed deployment's storage and
// the reference implementation for the interface contract.
type MemBackend struct {
	mu      sync.RWMutex
	blobs   map[string][]byte
	logical map[string]int64
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{blobs: make(map[string][]byte), logical: make(map[string]int64)}
}

// PutBlob implements Backend. The bytes are copied, so callers may reuse
// the slice.
func (m *MemBackend) PutBlob(digest string, comp []byte, logical int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blobs[digest] = append([]byte(nil), comp...)
	m.logical[digest] = logical
	return nil
}

// GetBlob implements Backend. The returned slice is the stored one; the
// Store treats it as read-only (Corrupt mutates it deliberately).
func (m *MemBackend) GetBlob(digest string) ([]byte, int64, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	comp, ok := m.blobs[digest]
	if !ok {
		return nil, 0, &NotFoundError{Digest: digest}
	}
	return comp, m.logical[digest], nil
}

// HasBlob implements Backend.
func (m *MemBackend) HasBlob(digest string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.blobs[digest]
	return ok
}

// DeleteBlob implements Backend.
func (m *MemBackend) DeleteBlob(digest string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blobs, digest)
	delete(m.logical, digest)
}

// Digests implements Backend.
func (m *MemBackend) Digests() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.blobs))
	for d := range m.blobs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Corrupter is the optional backend capability of flipping stored bits —
// the fault-injection hook disaster-recovery tests drive.
type Corrupter interface {
	CorruptBlob(digest string) error
}

// CorruptBlob flips a byte of the stored compressed blob — the bit-rot
// hook behind Store.Corrupt.
func (m *MemBackend) CorruptBlob(digest string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[digest]
	if !ok {
		return &NotFoundError{Digest: digest}
	}
	if len(b) == 0 {
		return fmt.Errorf("cas: blob %s empty", digest)
	}
	b[len(b)/2] ^= 0xFF
	return nil
}
