package cas

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"testing"

	"daspos/internal/xrand"
)

// shardedPayload builds a distinct compressible payload for index i.
func shardedPayload(i int) []byte {
	data := bytes.Repeat([]byte(fmt.Sprintf("tier-bank-%04d ", i)), 40)
	return data
}

func TestShardedBackendRoundTrip(t *testing.T) {
	s := NewStoreWith(NewShardedBackend(8))
	var digests []string
	for i := 0; i < 64; i++ {
		d, err := s.Put(shardedPayload(i))
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	for i, d := range digests {
		got, err := s.Get(d)
		if err != nil {
			t.Fatalf("blob %d: %v", i, err)
		}
		if !bytes.Equal(got, shardedPayload(i)) {
			t.Fatalf("blob %d: content mismatch", i)
		}
	}
	if n := len(s.Digests()); n != 64 {
		t.Fatalf("want 64 digests, got %d", n)
	}
}

func TestShardedDigestsSorted(t *testing.T) {
	s := NewStoreWith(NewShardedBackend(16))
	for i := 0; i < 200; i++ {
		if _, err := s.Put(shardedPayload(i)); err != nil {
			t.Fatal(err)
		}
	}
	ds := s.Digests()
	if !sort.StringsAreSorted(ds) {
		t.Fatal("sharded Digests() not sorted")
	}
	if len(ds) != 200 {
		t.Fatalf("want 200 digests, got %d", len(ds))
	}
}

func TestShardedRoundsUpToPowerOfTwo(t *testing.T) {
	if got := NewShardedBackend(5).Shards(); got != 8 {
		t.Fatalf("want 8 shards for n=5, got %d", got)
	}
	if got := NewShardedBackend(0).Shards(); got != DefaultShards() {
		t.Fatalf("want DefaultShards()=%d for n=0, got %d", DefaultShards(), got)
	}
}

func TestShardedCorruptionDetected(t *testing.T) {
	s := NewStoreWith(NewShardedBackend(4))
	var digests []string
	for i := 0; i < 32; i++ {
		d, err := s.Put(shardedPayload(i))
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	victim := digests[7]
	if err := s.Corrupt(victim); err != nil {
		t.Fatal(err)
	}
	bad := s.VerifyAll()
	if len(bad) != 1 || bad[0] != victim {
		t.Fatalf("VerifyAll = %v, want [%s]", bad, victim)
	}
	if !sort.StringsAreSorted(bad) {
		t.Fatal("VerifyAll output not sorted")
	}
}

func TestVerifyAllWorkersMatchesSequential(t *testing.T) {
	s := NewStoreWith(NewShardedBackend(8))
	var digests []string
	for i := 0; i < 60; i++ {
		d, err := s.Put(shardedPayload(i))
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	want := []string{digests[3], digests[19], digests[41]}
	for _, d := range want {
		if err := s.Corrupt(d); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(want)
	seq := s.VerifyAllWorkers(1)
	par := s.VerifyAllWorkers(8)
	if fmt.Sprint(seq) != fmt.Sprint(want) {
		t.Fatalf("sequential sweep = %v, want %v", seq, want)
	}
	if fmt.Sprint(par) != fmt.Sprint(want) {
		t.Fatalf("parallel sweep = %v, want %v", par, want)
	}
}

func TestShardedConcurrentPut(t *testing.T) {
	s := NewStoreWith(NewShardedBackend(0))
	const workers, per = 8, 50
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := s.Put(shardedPayload(w*per + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := len(s.Digests()); n != workers*per {
		t.Fatalf("want %d digests, got %d", workers*per, n)
	}
	if bad := s.VerifyAll(); len(bad) != 0 {
		t.Fatalf("unexpected fixity failures: %v", bad)
	}
}

func TestPutReaderMatchesPut(t *testing.T) {
	s1, s2 := NewStore(), NewStore()
	data := shardedPayload(99)
	d1, err := s1.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	d2, n, err := s2.PutReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("PutReader digest %s != Put digest %s", d2, d1)
	}
	if n != int64(len(data)) {
		t.Fatalf("PutReader logical size %d, want %d", n, len(data))
	}
	got, err := s2.Get(d2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("PutReader content mismatch")
	}
	// Same stored bytes either way: the two paths must agree on framing.
	c1, _, _ := s1.backend.GetBlob(d1)
	c2, _, _ := s2.backend.GetBlob(d2)
	if !bytes.Equal(c1, c2) {
		t.Fatal("Put and PutReader stored different bytes for the same payload")
	}
}

func TestPutReaderDeduplicates(t *testing.T) {
	s := NewStore()
	data := shardedPayload(5)
	if _, err := s.Put(data); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if _, _, err := s.PutReader(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if after := s.Stats(); after != before {
		t.Fatalf("duplicate PutReader changed stats: %+v -> %+v", before, after)
	}
}

func TestIncompressibleStoredRaw(t *testing.T) {
	rng := xrand.New(42)
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	s := NewStore()
	d, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	comp, _, err := s.backend.GetBlob(d)
	if err != nil {
		t.Fatal(err)
	}
	if comp[0] != blobRaw {
		t.Fatalf("high-entropy blob stored with marker 0x%02x, want raw", comp[0])
	}
	if len(comp) != len(data)+1 {
		t.Fatalf("raw blob stored as %d bytes, want %d", len(comp), len(data)+1)
	}
	got, err := s.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("raw round trip mismatch")
	}
}

func TestSmallBlobSkipsCompression(t *testing.T) {
	s := NewStore()
	data := bytes.Repeat([]byte("a"), minCompressSize-1)
	d, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	comp, _, err := s.backend.GetBlob(d)
	if err != nil {
		t.Fatal(err)
	}
	if comp[0] != blobRaw {
		t.Fatalf("sub-threshold blob stored with marker 0x%02x, want raw", comp[0])
	}
}

func TestRawBlobCorruptionDetected(t *testing.T) {
	rng := xrand.New(7)
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(rng.Intn(256))
	}
	s := NewStore()
	d, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Corrupt(d); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(d); err == nil {
		t.Fatal("corrupt raw blob read back cleanly")
	}
}

func TestPutReaderPropagatesReadError(t *testing.T) {
	s := NewStore()
	boom := fmt.Errorf("disk gone")
	_, _, err := s.PutReader(io.MultiReader(bytes.NewReader([]byte("partial")), &failingReader{err: boom}))
	if err == nil {
		t.Fatal("want error from failing reader")
	}
	if len(s.Digests()) != 0 {
		t.Fatal("failed PutReader left a blob behind")
	}
}

type failingReader struct{ err error }

func (f *failingReader) Read([]byte) (int, error) { return 0, f.err }

// BenchmarkCASPutParallel measures ingest throughput with 1/4/8 writer
// goroutines over the single-mutex MemBackend vs the sharded backend.
// Each goroutine writes distinct payloads so every Put takes the full
// digest+compress+store path.
func BenchmarkCASPutParallel(b *testing.B) {
	const blobSize = 16 << 10
	backends := []struct {
		name string
		mk   func() Backend
	}{
		{"mem", func() Backend { return NewMemBackend() }},
		{"sharded", func() Backend { return NewShardedBackend(0) }},
	}
	for _, be := range backends {
		for _, g := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", be.name, g), func(b *testing.B) {
				s := NewStoreWith(be.mk())
				base := bytes.Repeat([]byte("daspos tier payload "), blobSize/20+1)[:blobSize]
				b.SetBytes(blobSize)
				b.ReportAllocs()
				b.ResetTimer()
				var next atomic.Int64
				var wg sync.WaitGroup
				wg.Add(g)
				for w := 0; w < g; w++ {
					go func() {
						defer wg.Done()
						buf := append([]byte(nil), base...)
						for {
							i := next.Add(1) - 1
							if i >= int64(b.N) {
								return
							}
							binary.LittleEndian.PutUint64(buf, uint64(i))
							if _, err := s.Put(buf); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
			})
		}
	}
}
