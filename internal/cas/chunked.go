package cas

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"
)

// Chunked stored form. Large payloads dominate archive ingest time because
// SHA-256 and deflate are both single-threaded over one []byte; chunking
// splits the blob at fixed byte offsets so hashing and compression fan out
// across cores while the stored bytes stay a pure function of the payload —
// no worker count, scheduling order, or machine shape leaks into the
// archive (the determinism rule every stored tier obeys).
//
// Layout after the marker byte:
//
//	uvarint logicalSize            // total payload bytes
//	uvarint chunkSize              // split width used at encode time
//	uvarint nChunks
//	nChunks × {
//	    32-byte chunk SHA-256      // over the chunk's logical bytes
//	    uvarint encLen
//	    encLen bytes               // the chunk, marker-framed like a small blob
//	}
//
// The blob's address is unchanged: still the SHA-256 of the whole logical
// payload, so deduplication, the wire protocol, and every existing digest
// in provenance records are untouched. The per-chunk digest list is a
// bonus fixity feature — a corrupt chunk is localized without rehashing
// the rest of the blob.
const (
	blobChunked byte = 2

	// chunkPayloadSize is the fixed split width. 64 KiB keeps per-chunk
	// deflate windows effective (the format's window is 32 KiB) while
	// giving a 1 MiB blob 16-way hash parallelism.
	chunkPayloadSize = 64 << 10

	// chunkThreshold is the payload size at which Put switches to the
	// chunked form: below it the fan-out overhead exceeds the win.
	chunkThreshold = 256 << 10
)

// PutWorkers stores a payload like Put, hashing and compressing large
// payloads across the given number of workers (minimum 1). Payloads under
// the chunking threshold take the ordinary single-pass path. The stored
// bytes are identical for every worker count.
func (s *Store) PutWorkers(data []byte, workers int) (string, error) {
	d := Digest(data)
	if s.backend.HasBlob(d) {
		return d, nil
	}
	if len(data) < chunkThreshold {
		return d, s.storeBlob(d, data)
	}
	blob, err := encodeChunked(data, workers)
	if err != nil {
		return "", err
	}
	if err := s.backend.PutBlob(d, blob, int64(len(data))); err != nil {
		return "", fmt.Errorf("cas: storing %s: %w", d, err)
	}
	return d, nil
}

// encodeChunked produces the chunked stored form, fanning the per-chunk
// SHA-256 + deflate work across workers. Chunk boundaries are fixed byte
// offsets and assembly is in index order, so the output is deterministic.
func encodeChunked(data []byte, workers int) ([]byte, error) {
	n := len(data)
	nChunks := (n + chunkPayloadSize - 1) / chunkPayloadSize
	if workers < 1 {
		workers = 1
	}
	if workers > nChunks {
		workers = nChunks
	}

	type encChunk struct {
		sum  [sha256.Size]byte
		blob []byte
	}
	encs := make([]encChunk, nChunks)

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     = make(chan int)
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				lo := i * chunkPayloadSize
				hi := min(lo+chunkPayloadSize, n)
				chunk := data[lo:hi]
				encs[i].sum = sha256.Sum256(chunk)
				buf, err := encodeBlob(chunk)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				encs[i].blob = append([]byte(nil), buf.Bytes()...)
				blobBufPool.Put(buf)
			}
		}()
	}
	for i := 0; i < nChunks; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	size := 1 + 3*binary.MaxVarintLen64
	for i := range encs {
		size += sha256.Size + binary.MaxVarintLen64 + len(encs[i].blob)
	}
	out := make([]byte, 0, size)
	out = append(out, blobChunked)
	out = binary.AppendUvarint(out, uint64(n))
	out = binary.AppendUvarint(out, uint64(chunkPayloadSize))
	out = binary.AppendUvarint(out, uint64(nChunks))
	for i := range encs {
		out = append(out, encs[i].sum[:]...)
		out = binary.AppendUvarint(out, uint64(len(encs[i].blob)))
		out = append(out, encs[i].blob...)
	}
	return out, nil
}

// decodeChunked reassembles a chunked stored body (the bytes after the
// marker), verifying each chunk against its recorded digest. The caller
// (DecodeBlob) still fixity-checks the reassembled payload against the
// logical address, so a forged-but-consistent chunk list cannot spoof a
// blob.
func decodeChunked(body []byte) ([]byte, error) {
	rd := bytes.NewReader(body)
	logical, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("chunked header: %w", err)
	}
	cs, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("chunked header: %w", err)
	}
	nChunks, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("chunked header: %w", err)
	}
	if cs == 0 || nChunks == 0 || logical > uint64(len(body))*64+uint64(cs)*nChunks {
		return nil, fmt.Errorf("chunked header implausible: logical=%d chunkSize=%d chunks=%d", logical, cs, nChunks)
	}
	if want := (logical + cs - 1) / cs; want != nChunks {
		return nil, fmt.Errorf("chunked header inconsistent: %d bytes in %d-byte chunks needs %d chunks, header says %d",
			logical, cs, want, nChunks)
	}

	payload := make([]byte, 0, logical)
	var sum [sha256.Size]byte
	for i := uint64(0); i < nChunks; i++ {
		pos := len(body) - rd.Len()
		if rd.Len() < sha256.Size {
			return nil, fmt.Errorf("chunk %d: truncated digest", i)
		}
		copy(sum[:], body[pos:pos+sha256.Size])
		rd.Seek(int64(sha256.Size), 1)
		encLen, err := binary.ReadUvarint(rd)
		if err != nil {
			return nil, fmt.Errorf("chunk %d: length: %w", i, err)
		}
		pos = len(body) - rd.Len()
		if uint64(rd.Len()) < encLen {
			return nil, fmt.Errorf("chunk %d: truncated body (%d of %d bytes)", i, rd.Len(), encLen)
		}
		enc := body[pos : pos+int(encLen)]
		rd.Seek(int64(encLen), 1)

		chunk, err := decodeFramed(enc)
		if err != nil {
			return nil, fmt.Errorf("chunk %d: %w", i, err)
		}
		if got := sha256.Sum256(chunk); got != sum {
			return nil, fmt.Errorf("chunk %d: content hashes to %x, recorded %x", i, got, sum)
		}
		payload = append(payload, chunk...)
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("chunked blob has %d trailing bytes", rd.Len())
	}
	if uint64(len(payload)) != logical {
		return nil, fmt.Errorf("chunked blob reassembles to %d bytes, header says %d", len(payload), logical)
	}
	return payload, nil
}
