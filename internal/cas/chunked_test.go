package cas

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// compressiblePayload is low-entropy data (deflate shrinks every chunk);
// incompressiblePayload is PRNG bytes (every chunk stores raw).
func compressiblePayload(n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(i / 97)
	}
	return out
}

func incompressiblePayload(n int) []byte {
	rng := rand.New(rand.NewSource(61))
	out := make([]byte, n)
	rng.Read(out)
	return out
}

func TestChunkedRoundtrip(t *testing.T) {
	cases := map[string][]byte{
		"compressible":    compressiblePayload(chunkThreshold + 3*chunkPayloadSize + 17),
		"incompressible":  incompressiblePayload(chunkThreshold + chunkPayloadSize/2),
		"exact-threshold": compressiblePayload(chunkThreshold),
		"exact-chunks":    compressiblePayload(chunkThreshold + 2*chunkPayloadSize),
	}
	for name, payload := range cases {
		t.Run(name, func(t *testing.T) {
			s := NewStore()
			d, err := s.Put(payload)
			if err != nil {
				t.Fatal(err)
			}
			comp, _, err := s.backend.(*MemBackend).GetBlob(d)
			if err != nil {
				t.Fatal(err)
			}
			if comp[0] != blobChunked {
				t.Fatalf("marker 0x%02x, want chunked", comp[0])
			}
			got, err := s.Get(d)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("roundtrip mismatch")
			}
			// The address is still the plain logical digest, so provenance
			// records and dedup are untouched by the stored form.
			if d != Digest(payload) {
				t.Fatalf("digest %s is not the logical content address", d)
			}
		})
	}
}

// TestChunkedThresholdBoundary pins the switchover: one byte below the
// threshold stores flat, at the threshold stores chunked.
func TestChunkedThresholdBoundary(t *testing.T) {
	s := NewStore()
	for _, tc := range []struct {
		n           int
		wantChunked bool
	}{
		{chunkThreshold - 1, false},
		{chunkThreshold, true},
	} {
		d, err := s.Put(compressiblePayload(tc.n))
		if err != nil {
			t.Fatal(err)
		}
		comp, _, _ := s.backend.(*MemBackend).GetBlob(d)
		if got := comp[0] == blobChunked; got != tc.wantChunked {
			t.Fatalf("size %d: chunked=%v, want %v", tc.n, got, tc.wantChunked)
		}
	}
}

// TestChunkedStoredBytesDeterministic is the archive's determinism rule
// applied to the new path: the stored form is a pure function of the
// payload, whatever the worker count.
func TestChunkedStoredBytesDeterministic(t *testing.T) {
	payload := incompressiblePayload(chunkThreshold + 5*chunkPayloadSize + 11)
	var want []byte
	for _, workers := range []int{1, 2, 4, 8, 64} {
		s := NewStore()
		d, err := s.PutWorkers(payload, workers)
		if err != nil {
			t.Fatal(err)
		}
		comp, _, _ := s.backend.(*MemBackend).GetBlob(d)
		if want == nil {
			want = append([]byte(nil), comp...)
			continue
		}
		if !bytes.Equal(comp, want) {
			t.Fatalf("stored bytes differ at %d workers", workers)
		}
	}
}

// TestChunkedCorruptionDetected flips one byte of the stored chunked blob
// and checks fixity catches it as a CorruptError, whichever field the flip
// lands in (header, chunk digest, or chunk body).
func TestChunkedCorruptionDetected(t *testing.T) {
	payload := compressiblePayload(chunkThreshold + chunkPayloadSize)
	s := NewStore()
	d, err := s.Put(payload)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Corrupt(d); err != nil {
		t.Fatal(err)
	}
	_, err = s.Get(d)
	if err == nil {
		t.Fatal("corrupt chunked blob served")
	}
	var ce *CorruptError
	if !errors.As(err, &ce) || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption surfaced as %v, want CorruptError", err)
	}
	if ce.Digest != d {
		t.Fatalf("CorruptError digest %s, want %s", ce.Digest, d)
	}
}

// TestChunkedTruncationDetected drops trailing bytes and expects a
// corruption error, not a short payload.
func TestChunkedTruncationDetected(t *testing.T) {
	payload := incompressiblePayload(chunkThreshold)
	blob, err := encodeChunked(payload, 2)
	if err != nil {
		t.Fatal(err)
	}
	d := Digest(payload)
	for _, cut := range []int{1, chunkPayloadSize / 2, len(blob) / 2} {
		if _, err := DecodeBlob(d, blob[:len(blob)-cut]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncation by %d bytes surfaced as %v, want ErrCorrupt", cut, err)
		}
	}
	// Trailing garbage is rejected too: the stored form is canonical.
	if _, err := DecodeBlob(d, append(append([]byte(nil), blob...), 0xff)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte accepted: %v", err)
	}
}

// TestChunkedDedupAndVerify: the chunked form plays by all the store rules
// — duplicate puts are free, VerifyAll passes, Persist/Load roundtrips.
func TestChunkedDedupAndVerify(t *testing.T) {
	payload := compressiblePayload(chunkThreshold + 7)
	s := NewStore()
	d1, err := s.Put(payload)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := s.PutWorkers(payload, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d1 != d2 {
		t.Fatalf("digests differ: %s vs %s", d1, d2)
	}
	if st := s.Stats(); st.Blobs != 1 {
		t.Fatalf("duplicate stored: %d blobs", st.Blobs)
	}
	if bad := s.VerifyAll(); len(bad) != 0 {
		t.Fatalf("verify flagged %v", bad)
	}
	var buf bytes.Buffer
	if err := s.Persist(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(d1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("persist/load roundtrip mismatch")
	}
}
