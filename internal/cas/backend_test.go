package cas

import (
	"errors"
	"testing"
)

func TestCorruptErrorCarriesDigests(t *testing.T) {
	s := NewStore()
	d, err := s.Put([]byte("fixity matters"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Corrupt(d); err != nil {
		t.Fatal(err)
	}
	_, err = s.Get(d)
	if err == nil {
		t.Fatal("corrupt blob fetched without error")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption does not match ErrCorrupt sentinel: %v", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corruption is not a *CorruptError: %v", err)
	}
	if ce.Digest != d || ce.Expected != d {
		t.Fatalf("CorruptError digest = %q/%q, want %q", ce.Digest, ce.Expected, d)
	}
	if ce.Actual == "" && ce.Cause == nil {
		t.Fatal("CorruptError carries neither an actual digest nor a decode cause")
	}
	if ce.Actual != "" && ce.Actual == ce.Expected {
		t.Fatal("actual digest equals expected on a corrupt blob")
	}
}

func TestNotFoundErrorTyped(t *testing.T) {
	s := NewStore()
	_, err := s.Get("feedfacefeedface")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing blob does not match ErrNotFound: %v", err)
	}
	var nf *NotFoundError
	if !errors.As(err, &nf) {
		t.Fatalf("missing blob is not a *NotFoundError: %v", err)
	}
	if nf.Digest != "feedfacefeedface" {
		t.Fatalf("NotFoundError digest = %q", nf.Digest)
	}
}

// seedReplica stores the same payloads in a primary store and a replica
// backend, returning both plus the digests.
func seedReplica(t *testing.T, payloads ...string) (*Store, Backend, []string) {
	t.Helper()
	primary := NewStore()
	replicaStore := NewStoreWith(NewMemBackend())
	var digests []string
	for _, p := range payloads {
		d, err := primary.Put([]byte(p))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := replicaStore.Put([]byte(p)); err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	return primary, replicaStore.backend, digests
}

func TestGetFallsBackToReplicaOnCorruption(t *testing.T) {
	primary, replica, digests := seedReplica(t, "calibration constants", "trigger menu")
	primary.SetReplica(replica)
	if err := primary.Corrupt(digests[0]); err != nil {
		t.Fatal(err)
	}
	data, err := primary.Get(digests[0])
	if err != nil {
		t.Fatalf("replica fallback failed: %v", err)
	}
	if string(data) != "calibration constants" {
		t.Fatalf("replica served wrong bytes: %q", data)
	}
	// The read healed the primary: a primary-only audit is clean again.
	if bad := primary.VerifyAll(); len(bad) != 0 {
		t.Fatalf("primary not healed after replica read: %v", bad)
	}
}

func TestGetFallsBackToReplicaOnLoss(t *testing.T) {
	primary, replica, digests := seedReplica(t, "raw bank 7")
	primary.SetReplica(replica)
	primary.Delete(digests[0])
	data, err := primary.Get(digests[0])
	if err != nil {
		t.Fatalf("replica fallback after loss failed: %v", err)
	}
	if string(data) != "raw bank 7" {
		t.Fatalf("replica served wrong bytes: %q", data)
	}
	if !primary.Has(digests[0]) {
		t.Fatal("lost blob not restored to primary")
	}
}

func TestGetReportsPrimaryErrorWhenReplicaAlsoBad(t *testing.T) {
	primary, replica, digests := seedReplica(t, "both copies rot")
	primary.SetReplica(replica)
	if err := primary.Corrupt(digests[0]); err != nil {
		t.Fatal(err)
	}
	// Corrupt the replica copy too.
	rc, ok := replica.(Corrupter)
	if !ok {
		t.Fatal("replica backend cannot inject corruption")
	}
	if err := rc.CorruptBlob(digests[0]); err != nil {
		t.Fatal(err)
	}
	_, err := primary.Get(digests[0])
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("double corruption should surface ErrCorrupt, got %v", err)
	}
}

func TestVerifyAllBypassesReplica(t *testing.T) {
	primary, replica, digests := seedReplica(t, "audit me")
	primary.SetReplica(replica)
	if err := primary.Corrupt(digests[0]); err != nil {
		t.Fatal(err)
	}
	bad := primary.VerifyAll()
	if len(bad) != 1 || bad[0] != digests[0] {
		t.Fatalf("audit masked primary damage: %v", bad)
	}
}
