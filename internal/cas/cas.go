// Package cas implements the content-addressed store underneath the
// preservation archive: blobs are keyed by the SHA-256 of their content,
// stored deflate-compressed, deduplicated, and verifiable at any time.
// Content addressing gives the archive its two load-bearing properties:
// fixity checks are intrinsic (a blob that decompresses to the wrong hash
// is corrupt by definition), and identical payloads archived by different
// packages are stored once.
package cas

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
)

// ErrNotFound is returned when a digest is not in the store.
var ErrNotFound = errors.New("cas: blob not found")

// ErrCorrupt is returned when a blob fails its fixity check.
var ErrCorrupt = errors.New("cas: blob corrupt")

// Digest computes the content address of a payload.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Store is an in-memory content-addressed blob store, safe for concurrent
// use. Persist and Load move the whole store to and from a stream.
type Store struct {
	mu    sync.RWMutex
	blobs map[string][]byte // digest -> compressed payload
	// logical tracks the uncompressed size per digest for stats.
	logical map[string]int64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{blobs: make(map[string][]byte), logical: make(map[string]int64)}
}

// Put stores a payload and returns its digest. Duplicate content is a
// no-op returning the same digest.
func (s *Store) Put(data []byte) (string, error) {
	d := Digest(data)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[d]; ok {
		return d, nil
	}
	var buf bytes.Buffer
	zw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return "", err
	}
	if _, err := zw.Write(data); err != nil {
		return "", err
	}
	if err := zw.Close(); err != nil {
		return "", err
	}
	s.blobs[d] = append([]byte(nil), buf.Bytes()...)
	s.logical[d] = int64(len(data))
	return d, nil
}

// Get retrieves and fixity-checks a payload.
func (s *Store) Get(digest string) ([]byte, error) {
	s.mu.RLock()
	comp, ok := s.blobs[digest]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	zr := flate.NewReader(bytes.NewReader(comp))
	data, err := io.ReadAll(zr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, digest, err)
	}
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, digest, err)
	}
	if Digest(data) != digest {
		return nil, fmt.Errorf("%w: %s: content hash mismatch", ErrCorrupt, digest)
	}
	return data, nil
}

// Has reports whether the digest is stored.
func (s *Store) Has(digest string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.blobs[digest]
	return ok
}

// Delete removes a blob. Deleting an absent digest is a no-op.
func (s *Store) Delete(digest string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.blobs, digest)
	delete(s.logical, digest)
}

// Digests returns the sorted list of stored digests.
func (s *Store) Digests() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.blobs))
	for d := range s.blobs {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// Stats summarizes storage consumption.
type Stats struct {
	Blobs        int
	LogicalBytes int64
	StoredBytes  int64
}

// CompressionRatio returns logical/stored, or 0 for an empty store.
func (st Stats) CompressionRatio() float64 {
	if st.StoredBytes == 0 {
		return 0
	}
	return float64(st.LogicalBytes) / float64(st.StoredBytes)
}

// Stats returns current storage statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Blobs: len(s.blobs)}
	for d, b := range s.blobs {
		st.StoredBytes += int64(len(b))
		st.LogicalBytes += s.logical[d]
	}
	return st
}

// VerifyAll fixity-checks every blob and returns the digests that failed.
func (s *Store) VerifyAll() []string {
	var bad []string
	for _, d := range s.Digests() {
		if _, err := s.Get(d); err != nil {
			bad = append(bad, d)
		}
	}
	return bad
}

// Corrupt flips a byte inside a stored blob — a fault-injection hook for
// testing fixity detection (bit rot on archival media).
func (s *Store) Corrupt(digest string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.blobs[digest]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, digest)
	}
	if len(b) == 0 {
		return fmt.Errorf("cas: blob %s empty", digest)
	}
	b[len(b)/2] ^= 0xFF
	return nil
}

// Persist writes the store to w: a stream of
// (digestLen, digest, logicalLen, compLen, compressed bytes) records.
func (s *Store) Persist(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	digests := make([]string, 0, len(s.blobs))
	for d := range s.blobs {
		digests = append(digests, d)
	}
	sort.Strings(digests)
	for _, d := range digests {
		comp := s.blobs[d]
		hdr := make([]byte, 2+len(d)+8+8)
		binary.LittleEndian.PutUint16(hdr, uint16(len(d)))
		copy(hdr[2:], d)
		binary.LittleEndian.PutUint64(hdr[2+len(d):], uint64(s.logical[d]))
		binary.LittleEndian.PutUint64(hdr[2+len(d)+8:], uint64(len(comp)))
		if _, err := w.Write(hdr); err != nil {
			return err
		}
		if _, err := w.Write(comp); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a persisted store and verifies every blob.
func Load(r io.Reader) (*Store, error) {
	s := NewStore()
	for {
		var lenBuf [2]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("cas: loading: %w", err)
		}
		dl := int(binary.LittleEndian.Uint16(lenBuf[:]))
		if dl == 0 || dl > 128 {
			return nil, fmt.Errorf("cas: loading: implausible digest length %d", dl)
		}
		rest := make([]byte, dl+16)
		if _, err := io.ReadFull(r, rest); err != nil {
			return nil, fmt.Errorf("cas: loading: %w", err)
		}
		digest := string(rest[:dl])
		logical := int64(binary.LittleEndian.Uint64(rest[dl:]))
		compLen := binary.LittleEndian.Uint64(rest[dl+8:])
		if compLen > 1<<32 {
			return nil, fmt.Errorf("cas: loading: implausible blob size %d", compLen)
		}
		comp := make([]byte, compLen)
		if _, err := io.ReadFull(r, comp); err != nil {
			return nil, fmt.Errorf("cas: loading: %w", err)
		}
		s.blobs[digest] = comp
		s.logical[digest] = logical
	}
	if bad := s.VerifyAll(); len(bad) > 0 {
		return nil, fmt.Errorf("%w: %d blobs failed fixity on load", ErrCorrupt, len(bad))
	}
	return s, nil
}
