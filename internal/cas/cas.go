// Package cas implements the content-addressed store underneath the
// preservation archive: blobs are keyed by the SHA-256 of their content,
// stored deflate-compressed, deduplicated, and verifiable at any time.
// Content addressing gives the archive its two load-bearing properties:
// fixity checks are intrinsic (a blob that decompresses to the wrong hash
// is corrupt by definition), and identical payloads archived by different
// packages are stored once.
//
// Storage is pluggable through the Backend interface; the Store layers
// compression, fixity verification, and (optionally) replica fallback on
// top: when the primary backend loses or corrupts a blob and a replica is
// attached, Get transparently serves the replica's verified copy and heals
// the primary — the self-repairing archive the Appendix-A level-5
// disaster-recovery rating calls for.
package cas

import (
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
)

// ErrNotFound is returned when a digest is not in the store.
var ErrNotFound = errors.New("cas: blob not found")

// ErrCorrupt is returned when a blob fails its fixity check.
var ErrCorrupt = errors.New("cas: blob corrupt")

// NotFoundError carries the missing digest; it wraps ErrNotFound so
// errors.Is keeps working.
type NotFoundError struct {
	Digest string
}

func (e *NotFoundError) Error() string { return fmt.Sprintf("cas: blob not found: %s", e.Digest) }

// Unwrap ties the typed error to the ErrNotFound sentinel.
func (e *NotFoundError) Unwrap() error { return ErrNotFound }

// CorruptError reports a fixity failure with enough detail for resilience
// policies and archive.Repair to branch on: the digest that was requested
// (Expected), what the stored bytes actually hash to (Actual, empty when
// the blob would not even decompress), and the underlying decode error, if
// any. It wraps ErrCorrupt, so errors.Is(err, ErrCorrupt) holds.
type CorruptError struct {
	// Digest is the content address that was requested.
	Digest string
	// Expected is the digest the content should hash to (same as Digest).
	Expected string
	// Actual is the digest the decompressed bytes hash to; empty when
	// decompression itself failed.
	Actual string
	// Cause is the decompression error, when that is what failed.
	Cause error
}

func (e *CorruptError) Error() string {
	switch {
	case e.Cause != nil:
		return fmt.Sprintf("cas: blob corrupt: %s: %v", e.Digest, e.Cause)
	case e.Actual != "":
		return fmt.Sprintf("cas: blob corrupt: %s: content hashes to %s", e.Digest, e.Actual)
	default:
		return fmt.Sprintf("cas: blob corrupt: %s", e.Digest)
	}
}

// Unwrap ties the typed error to the ErrCorrupt sentinel (and the decode
// cause, when present).
func (e *CorruptError) Unwrap() []error {
	if e.Cause != nil {
		return []error{ErrCorrupt, e.Cause}
	}
	return []error{ErrCorrupt}
}

// Digest computes the content address of a payload.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Store is a content-addressed blob store over a pluggable Backend, safe
// for concurrent use. Persist and Load move the whole store to and from a
// stream. An optional replica backend turns Get into a self-healing read
// path.
type Store struct {
	backend Backend
	replica Backend
}

// NewStore returns an empty store over an in-memory backend.
func NewStore() *Store { return NewStoreWith(NewMemBackend()) }

// NewStoreWith returns a store over the given backend.
func NewStoreWith(b Backend) *Store { return &Store{backend: b} }

// SetReplica attaches a replica backend: when the primary read path fails
// (lost or corrupt blob, transient backend fault), Get serves the
// replica's verified bytes and writes them back to the primary.
func (s *Store) SetReplica(b Backend) { s.replica = b }

// Stored blobs are framed with a one-byte encoding marker so the store
// can skip deflate for payloads it cannot shrink (already-compressed or
// high-entropy banks) instead of paying the CPU twice — once to inflate
// the size, once to undo it on every read.
const (
	blobRaw     byte = 0 // payload stored verbatim
	blobDeflate byte = 1 // payload deflate-compressed
)

// minCompressSize is the payload size below which compression is not even
// attempted: the deflate header overhead dominates and the marker-framed
// raw form is already optimal.
const minCompressSize = 128

// flateWriterPool recycles deflate writers: flate.NewWriter allocates
// tens of kilobytes of window state per call, which used to be paid for
// every single Put.
var flateWriterPool = sync.Pool{
	New: func() any {
		zw, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return zw
	},
}

// blobBufPool recycles the scratch buffers the single-pass Put path
// compresses into.
var blobBufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// encodeBlob produces the marker-framed stored form of a payload into a
// pooled buffer: deflate when it shrinks the payload, verbatim otherwise.
// The returned buffer must be handed back via blobBufPool after the
// backend has copied it.
func encodeBlob(data []byte) (*bytes.Buffer, error) {
	buf := blobBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.Grow(len(data) + 1)
	if len(data) >= minCompressSize {
		buf.WriteByte(blobDeflate)
		zw := flateWriterPool.Get().(*flate.Writer)
		zw.Reset(buf)
		_, werr := zw.Write(data)
		cerr := zw.Close()
		flateWriterPool.Put(zw)
		if werr != nil {
			blobBufPool.Put(buf)
			return nil, werr
		}
		if cerr != nil {
			blobBufPool.Put(buf)
			return nil, cerr
		}
		if buf.Len()-1 < len(data) {
			return buf, nil
		}
		// Incompressible: fall through and store verbatim.
		buf.Reset()
	}
	buf.WriteByte(blobRaw)
	buf.Write(data)
	return buf, nil
}

// storeBlob frames, (maybe) compresses, and writes one payload that is
// known to be absent from the backend.
func (s *Store) storeBlob(digest string, data []byte) error {
	buf, err := encodeBlob(data)
	if err != nil {
		return err
	}
	err = s.backend.PutBlob(digest, buf.Bytes(), int64(len(data)))
	blobBufPool.Put(buf)
	if err != nil {
		return fmt.Errorf("cas: storing %s: %w", digest, err)
	}
	return nil
}

// Put stores a payload and returns its digest. Duplicate content is a
// no-op returning the same digest — detected before any compression work
// is spent. Payloads at or above the chunking threshold take the chunked
// parallel path across GOMAXPROCS workers (see PutWorkers); the stored
// bytes do not depend on the core count.
func (s *Store) Put(data []byte) (string, error) {
	return s.PutWorkers(data, runtime.GOMAXPROCS(0))
}

// PutReader stores a payload from a stream in a single pass: the bytes
// are read once, feeding the SHA-256 digest, the raw copy, and the
// deflate compressor simultaneously through an io.MultiWriter. It returns
// the digest and the logical (uncompressed) size. Duplicate content is
// detected after the pass and not stored twice.
func (s *Store) PutReader(r io.Reader) (string, int64, error) {
	raw := blobBufPool.Get().(*bytes.Buffer)
	raw.Reset()
	defer blobBufPool.Put(raw)

	comp := blobBufPool.Get().(*bytes.Buffer)
	comp.Reset()
	comp.WriteByte(blobDeflate)
	zw := flateWriterPool.Get().(*flate.Writer)
	zw.Reset(comp)

	h := sha256.New()
	n, err := io.Copy(io.MultiWriter(h, raw, zw), r)
	cerr := zw.Close()
	flateWriterPool.Put(zw)
	defer blobBufPool.Put(comp)
	if err != nil {
		return "", n, fmt.Errorf("cas: reading payload: %w", err)
	}
	if cerr != nil {
		return "", n, cerr
	}
	d := hex.EncodeToString(h.Sum(nil))
	if s.backend.HasBlob(d) {
		return d, n, nil
	}
	blob := comp.Bytes()
	if int64(comp.Len()-1) >= n {
		// Incompressible stream: store the raw copy instead.
		raw2 := blobBufPool.Get().(*bytes.Buffer)
		raw2.Reset()
		raw2.WriteByte(blobRaw)
		raw2.Write(raw.Bytes())
		blob = raw2.Bytes()
		defer blobBufPool.Put(raw2)
	}
	if err := s.backend.PutBlob(d, blob, n); err != nil {
		return "", n, fmt.Errorf("cas: storing %s: %w", d, err)
	}
	return d, n, nil
}

// EncodeBlob returns the marker-framed stored form of a payload — the
// bytes a Backend holds and the preservation-network wire protocol ships.
// Exported so storage nodes and cluster clients speak the same framing the
// local store writes.
func EncodeBlob(data []byte) ([]byte, error) {
	buf, err := encodeBlob(data)
	if err != nil {
		return nil, err
	}
	out := append([]byte(nil), buf.Bytes()...)
	blobBufPool.Put(buf)
	return out, nil
}

// DecodeBlob decodes a marker-framed stored blob and fixity-checks the
// payload against its content address, returning the logical bytes. It is
// the single verification primitive every trust boundary shares: the local
// Store on read, a storage node on ingest (rejecting corrupt-on-the-wire
// writes), and a cluster client on replica reads (so one lying replica
// cannot poison a quorum).
func DecodeBlob(digest string, comp []byte) ([]byte, error) {
	if len(comp) == 0 {
		return nil, &CorruptError{Digest: digest, Expected: digest, Cause: fmt.Errorf("empty stored blob")}
	}
	var data []byte
	var derr error
	if comp[0] == blobChunked {
		data, derr = decodeChunked(comp[1:])
	} else {
		data, derr = decodeFramed(comp)
	}
	if derr != nil {
		return nil, &CorruptError{Digest: digest, Expected: digest, Cause: derr}
	}
	if actual := Digest(data); actual != digest {
		return nil, &CorruptError{Digest: digest, Expected: digest, Actual: actual}
	}
	return data, nil
}

// decodeFramed decodes a flat (raw or deflate) marker-framed blob without
// any fixity check — the shared inner decode for DecodeBlob and for each
// chunk of the chunked form.
func decodeFramed(comp []byte) ([]byte, error) {
	if len(comp) == 0 {
		return nil, fmt.Errorf("empty stored blob")
	}
	switch comp[0] {
	case blobRaw:
		// Copy: backends may return their stored slice, and callers own
		// the payload they get back.
		return append([]byte(nil), comp[1:]...), nil
	case blobDeflate:
		zr := flate.NewReader(bytes.NewReader(comp[1:]))
		data, derr := io.ReadAll(zr)
		if derr != nil {
			return nil, derr
		}
		if cerr := zr.Close(); cerr != nil {
			return nil, cerr
		}
		return data, nil
	default:
		return nil, fmt.Errorf("unknown blob encoding 0x%02x", comp[0])
	}
}

// decodeVerified decodes the marker-framed blob and fixity-checks one
// backend read.
func decodeVerified(b Backend, digest string) (data, comp []byte, logical int64, err error) {
	comp, logical, err = b.GetBlob(digest)
	if err != nil {
		if errors.Is(err, ErrNotFound) {
			return nil, nil, 0, err
		}
		return nil, nil, 0, fmt.Errorf("cas: reading %s: %w", digest, err)
	}
	data, err = DecodeBlob(digest, comp)
	if err != nil {
		return nil, nil, 0, err
	}
	return data, comp, logical, nil
}

// Get retrieves and fixity-checks a payload. With a replica attached, any
// primary failure falls through to the replica's verified copy, and a good
// replica read repairs the primary in place.
func (s *Store) Get(digest string) ([]byte, error) {
	data, _, _, err := decodeVerified(s.backend, digest)
	if err == nil {
		return data, nil
	}
	if s.replica == nil {
		return nil, err
	}
	rdata, rcomp, rlogical, rerr := decodeVerified(s.replica, digest)
	if rerr != nil {
		// The replica could not help; report the primary failure.
		return nil, err
	}
	// Self-heal: write the replica's verified bytes back to the primary.
	// Best-effort — a failed heal still serves the read.
	_ = s.backend.PutBlob(digest, rcomp, rlogical)
	return rdata, nil
}

// GetPrimary retrieves a payload from the primary backend only — no
// replica fallback. Audits use it so a healthy replica cannot mask
// primary damage.
func (s *Store) GetPrimary(digest string) ([]byte, error) {
	data, _, _, err := decodeVerified(s.backend, digest)
	return data, err
}

// Has reports whether the digest is stored in the primary.
func (s *Store) Has(digest string) bool { return s.backend.HasBlob(digest) }

// Delete removes a blob from the primary. Deleting an absent digest is a
// no-op.
func (s *Store) Delete(digest string) { s.backend.DeleteBlob(digest) }

// Digests returns the sorted list of digests in the primary.
func (s *Store) Digests() []string { return s.backend.Digests() }

// Stats summarizes storage consumption.
type Stats struct {
	Blobs        int
	LogicalBytes int64
	StoredBytes  int64
}

// CompressionRatio returns logical/stored, or 0 for an empty store.
func (st Stats) CompressionRatio() float64 {
	if st.StoredBytes == 0 {
		return 0
	}
	return float64(st.LogicalBytes) / float64(st.StoredBytes)
}

// Stats returns current storage statistics.
func (s *Store) Stats() Stats {
	st := Stats{}
	for _, d := range s.backend.Digests() {
		comp, logical, err := s.backend.GetBlob(d)
		if err != nil {
			continue
		}
		st.Blobs++
		st.StoredBytes += int64(len(comp))
		st.LogicalBytes += logical
	}
	return st
}

// VerifyAll fixity-checks every primary blob and returns the digests that
// failed, sorted. It deliberately bypasses replica fallback: an audit must
// see primary damage even when reads would be served transparently. The
// sweep fans out across GOMAXPROCS workers — decompress-and-rehash is CPU
// bound, so archive-scale audits scale with cores.
func (s *Store) VerifyAll() []string {
	return s.VerifyAllWorkers(runtime.GOMAXPROCS(0))
}

// VerifyAllWorkers is VerifyAll with an explicit worker count (minimum 1).
func (s *Store) VerifyAllWorkers(workers int) []string {
	digests := s.backend.Digests()
	if workers < 1 {
		workers = 1
	}
	if workers > len(digests) {
		workers = len(digests)
	}
	if workers <= 1 {
		var bad []string
		for _, d := range digests {
			if _, err := s.GetPrimary(d); err != nil {
				bad = append(bad, d)
			}
		}
		return bad
	}
	var (
		mu   sync.Mutex
		bad  []string
		wg   sync.WaitGroup
		next = make(chan string)
	)
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for d := range next {
				if _, err := s.GetPrimary(d); err != nil {
					mu.Lock()
					bad = append(bad, d)
					mu.Unlock()
				}
			}
		}()
	}
	for _, d := range digests {
		next <- d
	}
	close(next)
	wg.Wait()
	sort.Strings(bad)
	return bad
}

// Corrupt flips a byte inside a stored blob — a fault-injection hook for
// testing fixity detection (bit rot on archival media). It requires a
// backend that supports corruption (MemBackend does).
func (s *Store) Corrupt(digest string) error {
	c, ok := s.backend.(Corrupter)
	if !ok {
		return fmt.Errorf("cas: backend %T does not support fault injection", s.backend)
	}
	return c.CorruptBlob(digest)
}

// Persist writes the store to w: a stream of
// (digestLen, digest, logicalLen, compLen, compressed bytes) records.
func (s *Store) Persist(w io.Writer) error {
	for _, d := range s.backend.Digests() {
		comp, logical, err := s.backend.GetBlob(d)
		if err != nil {
			return fmt.Errorf("cas: persisting %s: %w", d, err)
		}
		hdr := make([]byte, 2+len(d)+8+8)
		binary.LittleEndian.PutUint16(hdr, uint16(len(d)))
		copy(hdr[2:], d)
		binary.LittleEndian.PutUint64(hdr[2+len(d):], uint64(logical))
		binary.LittleEndian.PutUint64(hdr[2+len(d)+8:], uint64(len(comp)))
		if _, err := w.Write(hdr); err != nil {
			return err
		}
		if _, err := w.Write(comp); err != nil {
			return err
		}
	}
	return nil
}

// Load reads a persisted store and verifies every blob.
func Load(r io.Reader) (*Store, error) {
	s := NewStore()
	for {
		var lenBuf [2]byte
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("cas: loading: %w", err)
		}
		dl := int(binary.LittleEndian.Uint16(lenBuf[:]))
		if dl == 0 || dl > 128 {
			return nil, fmt.Errorf("cas: loading: implausible digest length %d", dl)
		}
		rest := make([]byte, dl+16)
		if _, err := io.ReadFull(r, rest); err != nil {
			return nil, fmt.Errorf("cas: loading: %w", err)
		}
		digest := string(rest[:dl])
		logical := int64(binary.LittleEndian.Uint64(rest[dl:]))
		compLen := binary.LittleEndian.Uint64(rest[dl+8:])
		if compLen > 1<<32 {
			return nil, fmt.Errorf("cas: loading: implausible blob size %d", compLen)
		}
		comp := make([]byte, compLen)
		if _, err := io.ReadFull(r, comp); err != nil {
			return nil, fmt.Errorf("cas: loading: %w", err)
		}
		if err := s.backend.PutBlob(digest, comp, logical); err != nil {
			return nil, fmt.Errorf("cas: loading %s: %w", digest, err)
		}
	}
	if bad := s.VerifyAll(); len(bad) > 0 {
		return nil, fmt.Errorf("%w: %d blobs failed fixity on load", ErrCorrupt, len(bad))
	}
	return s, nil
}
