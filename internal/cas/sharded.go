package cas

import (
	"runtime"
	"sort"
	"sync"
)

// ShardedBackend stripes blobs across N independently locked in-memory
// shards, keyed by digest prefix. A single-mutex MemBackend serializes
// every Put behind one lock; under the parallel ingest paths (streaming
// workers, fixity sweeps, archive replication) that lock is the
// bottleneck. Striping turns it into N uncontended locks — writers
// touching different shards never wait on each other, and the store's
// semantics are unchanged because a digest always maps to the same shard.
type ShardedBackend struct {
	shards []*MemBackend
}

// DefaultShards is the shard count NewShardedBackend uses when asked for
// an automatic size: enough stripes that GOMAXPROCS writers rarely
// collide, rounded up to a power of two so the selector is a mask.
func DefaultShards() int {
	n := 1
	for n < 4*runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	return n
}

// NewShardedBackend returns an empty backend striped across n shards.
// n < 1 selects DefaultShards(). Counts that are not powers of two are
// rounded up so shard selection stays a bit mask.
func NewShardedBackend(n int) *ShardedBackend {
	if n < 1 {
		n = DefaultShards()
	}
	pow := 1
	for pow < n {
		pow <<= 1
	}
	shards := make([]*MemBackend, pow)
	for i := range shards {
		shards[i] = NewMemBackend()
	}
	return &ShardedBackend{shards: shards}
}

// shard maps a digest to its stripe with an FNV-1a hash of the digest
// string. Hashing (rather than slicing leading hex characters) keeps the
// spread uniform for any digest scheme a future backend might store.
func (s *ShardedBackend) shard(digest string) *MemBackend {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(digest); i++ {
		h ^= uint32(digest[i])
		h *= prime32
	}
	return s.shards[h&uint32(len(s.shards)-1)]
}

// Shards returns the stripe count.
func (s *ShardedBackend) Shards() int { return len(s.shards) }

// PutBlob implements Backend.
func (s *ShardedBackend) PutBlob(digest string, comp []byte, logical int64) error {
	return s.shard(digest).PutBlob(digest, comp, logical)
}

// GetBlob implements Backend.
func (s *ShardedBackend) GetBlob(digest string) ([]byte, int64, error) {
	return s.shard(digest).GetBlob(digest)
}

// HasBlob implements Backend.
func (s *ShardedBackend) HasBlob(digest string) bool {
	return s.shard(digest).HasBlob(digest)
}

// DeleteBlob implements Backend.
func (s *ShardedBackend) DeleteBlob(digest string) {
	s.shard(digest).DeleteBlob(digest)
}

// Digests implements Backend: the union of all shards, sorted, so audit
// reports and Persist output stay deterministic regardless of how blobs
// landed across stripes.
func (s *ShardedBackend) Digests() []string {
	var (
		mu  sync.Mutex
		out []string
		wg  sync.WaitGroup
	)
	wg.Add(len(s.shards))
	for _, sh := range s.shards {
		go func(sh *MemBackend) {
			defer wg.Done()
			ds := sh.Digests()
			if len(ds) == 0 {
				return
			}
			mu.Lock()
			out = append(out, ds...)
			mu.Unlock()
		}(sh)
	}
	wg.Wait()
	sort.Strings(out)
	return out
}

// CorruptBlob implements Corrupter by delegating to the owning shard.
func (s *ShardedBackend) CorruptBlob(digest string) error {
	return s.shard(digest).CorruptBlob(digest)
}
