package cas

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"daspos/internal/xrand"
)

func TestPutGetRoundTrip(t *testing.T) {
	s := NewStore()
	data := []byte("the preserved analysis payload")
	d, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(d)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content mismatch")
	}
	if !s.Has(d) || s.Has("nope") {
		t.Fatal("Has broken")
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := NewStore()
	if err := quick.Check(func(data []byte) bool {
		d, err := s.Put(data)
		if err != nil {
			return false
		}
		got, err := s.Get(d)
		return err == nil && bytes.Equal(got, data)
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeduplication(t *testing.T) {
	s := NewStore()
	data := bytes.Repeat([]byte("x"), 10000)
	d1, _ := s.Put(data)
	d2, _ := s.Put(append([]byte(nil), data...))
	if d1 != d2 {
		t.Fatal("same content, different digests")
	}
	st := s.Stats()
	if st.Blobs != 1 {
		t.Fatalf("blobs %d", st.Blobs)
	}
	if st.LogicalBytes != 10000 {
		t.Fatalf("logical %d", st.LogicalBytes)
	}
}

func TestCompression(t *testing.T) {
	s := NewStore()
	// Highly compressible payload.
	if _, err := s.Put(bytes.Repeat([]byte("abcd"), 25000)); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.CompressionRatio() < 5 {
		t.Fatalf("compression ratio %v on repetitive data", st.CompressionRatio())
	}
}

func TestGetMissing(t *testing.T) {
	s := NewStore()
	if _, err := s.Get("deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err: %v", err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	s := NewStore()
	r := xrand.New(1)
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(r.Uint64())
	}
	d, _ := s.Put(data)
	if err := s.Corrupt(d); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(d); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corruption not detected: %v", err)
	}
	bad := s.VerifyAll()
	if len(bad) != 1 || bad[0] != d {
		t.Fatalf("VerifyAll: %v", bad)
	}
	if err := s.Corrupt("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt missing: %v", err)
	}
}

func TestDelete(t *testing.T) {
	s := NewStore()
	d, _ := s.Put([]byte("x"))
	s.Delete(d)
	if s.Has(d) {
		t.Fatal("deleted blob present")
	}
	s.Delete("nope") // no-op
	if s.Stats().Blobs != 0 {
		t.Fatal("stats after delete")
	}
}

func TestDigestsSorted(t *testing.T) {
	s := NewStore()
	for i := 0; i < 20; i++ {
		if _, err := s.Put([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ds := s.Digests()
	if len(ds) != 20 {
		t.Fatalf("digests %d", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		if ds[i] <= ds[i-1] {
			t.Fatal("not sorted")
		}
	}
}

func TestPersistLoad(t *testing.T) {
	s := NewStore()
	r := xrand.New(2)
	var digests []string
	for i := 0; i < 30; i++ {
		data := make([]byte, 100+r.Intn(5000))
		for j := range data {
			data[j] = byte(r.Uint64())
		}
		d, err := s.Put(data)
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, d)
	}
	var buf bytes.Buffer
	if err := s.Persist(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats() != s.Stats() {
		t.Fatalf("stats after load: %+v vs %+v", got.Stats(), s.Stats())
	}
	for _, d := range digests {
		a, _ := s.Get(d)
		b, err := got.Get(d)
		if err != nil || !bytes.Equal(a, b) {
			t.Fatalf("blob %s differs after reload", d)
		}
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	s := NewStore()
	d, _ := s.Put(bytes.Repeat([]byte("payload"), 100))
	_ = s.Corrupt(d)
	var buf bytes.Buffer
	_ = s.Persist(&buf)
	if _, err := Load(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt store loaded: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte{0xFF, 0xFF, 0x01})); err == nil {
		t.Fatal("garbage loaded")
	}
	// Truncated stream.
	s := NewStore()
	_, _ = s.Put([]byte("hello world hello world"))
	var buf bytes.Buffer
	_ = s.Persist(&buf)
	if _, err := Load(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
		t.Fatal("truncated stream loaded")
	}
	// Empty stream is a valid empty store.
	empty, err := Load(bytes.NewReader(nil))
	if err != nil || empty.Stats().Blobs != 0 {
		t.Fatalf("empty stream: %v", err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := xrand.New(uint64(w))
			for i := 0; i < 200; i++ {
				data := []byte{byte(w), byte(i), byte(r.Uint64())}
				d, err := s.Put(data)
				if err != nil {
					t.Errorf("put: %v", err)
					return
				}
				got, err := s.Get(d)
				if err != nil || !bytes.Equal(got, data) {
					t.Errorf("get: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkPut64K(b *testing.B) {
	r := xrand.New(1)
	data := make([]byte, 64<<10)
	for i := range data {
		data[i] = byte(r.Uint64() >> 56) // compressible-ish
	}
	s := NewStore()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data[0] = byte(i) // defeat dedup
		if _, err := s.Put(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet64K(b *testing.B) {
	s := NewStore()
	data := bytes.Repeat([]byte("daspos"), 11000)
	d, _ := s.Put(data)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(d); err != nil {
			b.Fatal(err)
		}
	}
}
