package skim

import (
	"strings"
	"testing"
	"testing/quick"

	"daspos/internal/datamodel"
	"daspos/internal/fourvec"
	"daspos/internal/xrand"
)

// evt builds an AOD event with the given muon pTs, jet pTs, and MET.
func evt(muPts, jetPts []float64, met float64) *datamodel.Event {
	e := &datamodel.Event{Tier: datamodel.TierAOD, Missing: datamodel.MET{Pt: met, SumEt: 100}}
	for _, pt := range muPts {
		e.Candidates = append(e.Candidates, datamodel.Candidate{
			Type: datamodel.ObjMuon, P: fourvec.PtEtaPhiM(pt, 0.1, 0.2, 0.105), Charge: -1,
		})
	}
	for _, pt := range jetPts {
		e.Candidates = append(e.Candidates, datamodel.Candidate{
			Type: datamodel.ObjJet, P: fourvec.PtEtaPhiM(pt, -0.5, 1.0, 5),
		})
	}
	e.Aux = map[string]float64{"bdt": 0.7}
	return e
}

func TestCutEval(t *testing.T) {
	e := evt([]float64{30, 20}, []float64{50}, 15)
	cases := []struct {
		cut  Cut
		want bool
	}{
		{Cut{"n_muons", OpGE, 2}, true},
		{Cut{"n_muons", OpGT, 2}, false},
		{Cut{"leading_muon_pt", OpGT, 25}, true},
		{Cut{"leading_jet_pt", OpLT, 40}, false},
		{Cut{"met", OpLE, 15}, true},
		{Cut{"met", OpEQ, 15}, true},
		{Cut{"met", OpNE, 15}, false},
		{Cut{"n_electrons", OpEQ, 0}, true},
		{Cut{"n_leptons", OpEQ, 2}, true},
		{Cut{"ht", OpGE, 50}, true},
		{Cut{"sum_et", OpGT, 99}, true},
		{Cut{"aux:bdt", OpGT, 0.5}, true},
	}
	for _, c := range cases {
		got, err := c.cut.Eval(e)
		if err != nil {
			t.Fatalf("%v: %v", c.cut, err)
		}
		if got != c.want {
			t.Errorf("%v: got %v", c.cut, got)
		}
	}
}

func TestCutErrors(t *testing.T) {
	e := evt(nil, nil, 0)
	if _, err := (Cut{"warp_factor", OpGT, 1}).Eval(e); err == nil {
		t.Fatal("unknown variable accepted")
	}
	if _, err := (Cut{"aux:missing", OpGT, 1}).Eval(e); err == nil {
		t.Fatal("missing aux accepted")
	}
	if _, err := (Cut{"met", Op("~"), 1}).Eval(e); err == nil {
		t.Fatal("bad operator accepted")
	}
}

func TestVariableCatalogueDocumented(t *testing.T) {
	for _, v := range Variables() {
		doc, ok := VariableDoc(v)
		if !ok || doc == "" {
			t.Errorf("variable %q undocumented", v)
		}
		// Every catalogue variable must evaluate on an empty event.
		if _, err := EvalVariable(evt(nil, nil, 0), v); err != nil {
			t.Errorf("variable %q: %v", v, err)
		}
	}
	if len(Variables()) < 10 {
		t.Fatalf("catalogue too small: %d", len(Variables()))
	}
}

func TestSelectionPassAndValidate(t *testing.T) {
	s := Selection{Name: "dimuon", Cuts: []Cut{
		{"n_muons", OpGE, 2},
		{"leading_muon_pt", OpGT, 25},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	ok, err := s.Pass(evt([]float64{30, 20}, nil, 0))
	if err != nil || !ok {
		t.Fatalf("pass: %v %v", ok, err)
	}
	ok, _ = s.Pass(evt([]float64{30}, nil, 0))
	if ok {
		t.Fatal("single-muon event passed dimuon selection")
	}
	bad := Selection{Name: "x", Cuts: []Cut{{"nope", OpGT, 1}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("unknown variable validated")
	}
	bad2 := Selection{Name: "x", Cuts: []Cut{{"met", Op("~"), 1}}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("bad op validated")
	}
}

func TestCutFlow(t *testing.T) {
	s := Selection{Name: "w", Cuts: []Cut{
		{"n_muons", OpGE, 1},
		{"met", OpGT, 25},
	}}
	events := []*datamodel.Event{
		evt([]float64{30}, nil, 40), // passes both
		evt([]float64{30}, nil, 10), // passes first only
		evt(nil, nil, 40),           // fails first
	}
	flow, err := s.CutFlow(events)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{3, 2, 1}
	for i := range want {
		if flow[i] != want[i] {
			t.Fatalf("cutflow %v want %v", flow, want)
		}
	}
}

func TestSlimPolicy(t *testing.T) {
	e := evt([]float64{30, 5}, []float64{50}, 10)
	e.Tracks = []datamodel.Track{{NHits: 8}}
	e.Clusters = []datamodel.Cluster{{E: 5}}
	p := SlimPolicy{
		Name:           "muons-only",
		DropRecoDetail: true,
		MinCandidatePt: 10,
		KeepTypes:      []datamodel.ObjectType{datamodel.ObjMuon},
		DropAux:        true,
	}
	out := p.Apply(e)
	if out.Tier != datamodel.TierDerived {
		t.Fatalf("tier %v", out.Tier)
	}
	if len(out.Tracks) != 0 || len(out.Clusters) != 0 {
		t.Fatal("reco detail survived")
	}
	if len(out.Candidates) != 1 || out.Candidates[0].Type != datamodel.ObjMuon {
		t.Fatalf("candidates: %+v", out.Candidates)
	}
	if out.Aux != nil {
		t.Fatal("aux survived DropAux")
	}
	// Source untouched.
	if len(e.Tracks) != 1 || len(e.Candidates) != 3 || e.Aux["bdt"] != 0.7 {
		t.Fatal("slimming mutated input")
	}
}

func TestSlimKeepAux(t *testing.T) {
	e := evt(nil, nil, 0)
	e.Aux["other"] = 1
	p := SlimPolicy{DropAux: true, KeepAux: []string{"bdt"}}
	out := p.Apply(e)
	if out.Aux["bdt"] != 0.7 {
		t.Fatal("kept aux lost")
	}
	if _, ok := out.Aux["other"]; ok {
		t.Fatal("unkept aux survived")
	}
}

func TestDerivationRun(t *testing.T) {
	d := Derivation{
		Name: "DIMUON",
		Selection: Selection{Name: "dimuon", Cuts: []Cut{
			{"n_muons", OpGE, 2},
		}},
		Slim: SlimPolicy{DropRecoDetail: true, KeepTypes: []datamodel.ObjectType{datamodel.ObjMuon}},
	}
	events := []*datamodel.Event{
		evt([]float64{30, 20}, []float64{60}, 5),
		evt([]float64{30}, nil, 5),
		evt(nil, []float64{100}, 5),
	}
	out, rep, err := d.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Input != 3 || rep.Selected != 1 || len(out) != 1 {
		t.Fatalf("report %+v, out %d", rep, len(out))
	}
	if rep.Efficiency() != 1.0/3 {
		t.Fatalf("efficiency %v", rep.Efficiency())
	}
	if len(out[0].CandidatesOf(datamodel.ObjJet)) != 0 {
		t.Fatal("jets survived muon-only derivation")
	}
}

func TestDerivationValidation(t *testing.T) {
	d := Derivation{Selection: Selection{Cuts: []Cut{{"met", OpGT, 1}}}}
	if _, _, err := d.Run(nil); err == nil {
		t.Fatal("nameless derivation ran")
	}
}

func TestDerivationJSONRoundTrip(t *testing.T) {
	d := Derivation{
		Name: "WSKIM",
		Selection: Selection{Name: "w", Cuts: []Cut{
			{"n_leptons", OpGE, 1},
			{"met", OpGT, 25},
		}},
		Slim: SlimPolicy{Name: "slim", DropRecoDetail: true, MinCandidatePt: 10, DropAux: true, KeepAux: []string{"mt"}},
	}
	data, err := d.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"variable": "met"`) {
		t.Fatalf("encoding not self-describing:\n%s", data)
	}
	got, err := DecodeDerivation(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || len(got.Selection.Cuts) != 2 || got.Slim.KeepAux[0] != "mt" {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := DecodeDerivation([]byte(`{"name":"x","selection":{"cuts":[{"variable":"bogus","op":">","value":1}]}}`)); err == nil {
		t.Fatal("invalid archived derivation accepted")
	}
	if _, err := DecodeDerivation([]byte("{bad")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestTrainProducesGroupFormats(t *testing.T) {
	train := Train{
		Name: "prod-train",
		Derivations: []Derivation{
			{Name: "MUON", Selection: Selection{Cuts: []Cut{{"n_muons", OpGE, 1}}},
				Slim: SlimPolicy{KeepTypes: []datamodel.ObjectType{datamodel.ObjMuon}}},
			{Name: "JET", Selection: Selection{Cuts: []Cut{{"n_jets", OpGE, 1}}},
				Slim: SlimPolicy{KeepTypes: []datamodel.ObjectType{datamodel.ObjJet}}},
		},
	}
	events := []*datamodel.Event{
		evt([]float64{30}, []float64{50}, 5),
		evt(nil, []float64{70}, 5),
	}
	out, reports, err := train.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	if len(out["MUON"]) != 1 || len(out["JET"]) != 2 {
		t.Fatalf("train outputs: MUON=%d JET=%d", len(out["MUON"]), len(out["JET"]))
	}
	if len(reports) != 2 || reports[0].Derivation != "MUON" {
		t.Fatalf("reports: %+v", reports)
	}
}

func TestTrainRejectsDuplicateNames(t *testing.T) {
	train := Train{Derivations: []Derivation{
		{Name: "A", Selection: Selection{Cuts: nil}},
		{Name: "A", Selection: Selection{Cuts: nil}},
	}}
	if _, _, err := train.Run(nil); err == nil {
		t.Fatal("duplicate derivation names accepted")
	}
}

func BenchmarkSelectionPass(b *testing.B) {
	s := Selection{Name: "dimuon", Cuts: []Cut{
		{"n_muons", OpGE, 2},
		{"leading_muon_pt", OpGT, 25},
		{"met", OpLT, 50},
	}}
	e := evt([]float64{30, 20}, []float64{50}, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Pass(e); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPassMatchesCutFlowProperty(t *testing.T) {
	// Property: the number of events passing Pass equals the last CutFlow
	// count, for random events and selections.
	rng := xrand.New(55)
	if err := quick.Check(func(nEvents, nCuts uint8) bool {
		sel := Selection{Name: "p"}
		vars := []string{"n_muons", "n_jets", "met", "leading_jet_pt"}
		for i := 0; i <= int(nCuts%4); i++ {
			sel.Cuts = append(sel.Cuts, Cut{
				Variable: vars[rng.Intn(len(vars))],
				Op:       OpGE,
				Value:    rng.Range(0, 3),
			})
		}
		var events []*datamodel.Event
		for i := 0; i <= int(nEvents%32); i++ {
			var mus, jets []float64
			for j := 0; j < rng.Intn(4); j++ {
				mus = append(mus, rng.Range(5, 60))
			}
			for j := 0; j < rng.Intn(4); j++ {
				jets = append(jets, rng.Range(20, 80))
			}
			events = append(events, evt(mus, jets, rng.Range(0, 60)))
		}
		flow, err := sel.CutFlow(events)
		if err != nil {
			return false
		}
		passed := 0
		for _, e := range events {
			ok, err := sel.Pass(e)
			if err != nil {
				return false
			}
			if ok {
				passed++
			}
		}
		return flow[len(flow)-1] == passed
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyMatchesRun(t *testing.T) {
	d := Derivation{
		Name:      "MU",
		Selection: Selection{Name: "mu", Cuts: []Cut{{Variable: "n_muons", Op: OpGE, Value: 1}}},
		Slim:      SlimPolicy{DropRecoDetail: true},
	}
	events := []*datamodel.Event{
		evt([]float64{25}, []float64{40}, 10),
		evt(nil, []float64{60}, 55),
		evt([]float64{12, 9}, nil, 5),
		evt(nil, nil, 80),
	}
	for i := range events {
		events[i].Number = uint64(i)
	}
	want, rep, err := d.Run(events)
	if err != nil {
		t.Fatal(err)
	}
	var got []*datamodel.Event
	for _, e := range events {
		out, ok, err := d.Apply(e)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			got = append(got, out)
		}
	}
	if len(got) != len(want) || len(got) != rep.Selected {
		t.Fatalf("Apply selected %d events, Run selected %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Number != want[i].Number || got[i].Tier != want[i].Tier {
			t.Fatalf("event %d differs between Apply and Run", i)
		}
	}
	if bad, ok, err := d.Apply(&datamodel.Event{Tier: datamodel.TierAOD}); ok || err != nil || bad != nil {
		t.Fatalf("muon-less event selected: %v %v %v", bad, ok, err)
	}
}
