// Package skim implements the post-AOD derivation machinery of the paper's
// workflow analysis (§3.2): "the dropping of events (known as 'skimming')
// and the reduction of the event content (known as 'slimming') result in a
// reduction of the final data size". The paper observes that "each
// processing step between the final centrally-processed format and some
// reduced format can be reduced to a logical skimming/slimming
// description" — so this package makes that description a first-class,
// JSON-serializable value: a preserved Derivation can be re-executed
// decades later without preserving any analyst code.
package skim

import (
	"encoding/json"
	"fmt"

	"daspos/internal/datamodel"
)

// Op is a comparison operator in a cut expression.
type Op string

// Supported comparison operators.
const (
	OpGT Op = ">"
	OpGE Op = ">="
	OpLT Op = "<"
	OpLE Op = "<="
	OpEQ Op = "=="
	OpNE Op = "!="
)

func (o Op) valid() bool {
	switch o {
	case OpGT, OpGE, OpLT, OpLE, OpEQ, OpNE:
		return true
	}
	return false
}

// Cut is one declarative requirement on an event variable.
type Cut struct {
	Variable string  `json:"variable"`
	Op       Op      `json:"op"`
	Value    float64 `json:"value"`
}

// String renders the cut in the conventional notation.
func (c Cut) String() string { return fmt.Sprintf("%s %s %g", c.Variable, c.Op, c.Value) }

// Eval evaluates the cut on an event.
func (c Cut) Eval(e *datamodel.Event) (bool, error) {
	v, err := EvalVariable(e, c.Variable)
	if err != nil {
		return false, err
	}
	switch c.Op {
	case OpGT:
		return v > c.Value, nil
	case OpGE:
		return v >= c.Value, nil
	case OpLT:
		return v < c.Value, nil
	case OpLE:
		return v <= c.Value, nil
	case OpEQ:
		return v == c.Value, nil
	case OpNE:
		return v != c.Value, nil
	default:
		return false, fmt.Errorf("skim: unknown operator %q", c.Op)
	}
}

// Variables understood by EvalVariable. Keeping the catalogue closed and
// documented is what makes archived selections interpretable without the
// code that wrote them (the Les Houches "unambiguously defined kinematic
// variables" recommendation).
var variableDocs = map[string]string{
	"n_muons":             "number of muon candidates",
	"n_electrons":         "number of electron candidates",
	"n_photons":           "number of photon candidates",
	"n_jets":              "number of jet candidates",
	"n_leptons":           "number of electron plus muon candidates",
	"n_tracks":            "number of reconstructed tracks (RECO tier only)",
	"leading_muon_pt":     "pT of the leading muon (GeV); 0 if none",
	"leading_electron_pt": "pT of the leading electron (GeV); 0 if none",
	"leading_photon_pt":   "pT of the leading photon (GeV); 0 if none",
	"leading_jet_pt":      "pT of the leading jet (GeV); 0 if none",
	"met":                 "missing transverse momentum (GeV)",
	"sum_et":              "scalar sum of transverse energy (GeV)",
	"ht":                  "scalar sum of jet pT (GeV)",
}

// VariableDoc returns the documentation line for a catalogue variable.
func VariableDoc(name string) (string, bool) {
	d, ok := variableDocs[name]
	return d, ok
}

// Variables returns the catalogue names (unsorted).
func Variables() []string {
	out := make([]string, 0, len(variableDocs))
	for v := range variableDocs {
		out = append(out, v)
	}
	return out
}

// EvalVariable computes a catalogue variable for an event. Aux variables
// are addressed as "aux:<key>" and read the event's Aux map.
func EvalVariable(e *datamodel.Event, name string) (float64, error) {
	switch name {
	case "n_muons":
		return float64(len(e.CandidatesOf(datamodel.ObjMuon))), nil
	case "n_electrons":
		return float64(len(e.CandidatesOf(datamodel.ObjElectron))), nil
	case "n_photons":
		return float64(len(e.CandidatesOf(datamodel.ObjPhoton))), nil
	case "n_jets":
		return float64(len(e.CandidatesOf(datamodel.ObjJet))), nil
	case "n_leptons":
		return float64(len(e.CandidatesOf(datamodel.ObjMuon)) + len(e.CandidatesOf(datamodel.ObjElectron))), nil
	case "n_tracks":
		return float64(len(e.Tracks)), nil
	case "leading_muon_pt":
		return leadingPt(e, datamodel.ObjMuon), nil
	case "leading_electron_pt":
		return leadingPt(e, datamodel.ObjElectron), nil
	case "leading_photon_pt":
		return leadingPt(e, datamodel.ObjPhoton), nil
	case "leading_jet_pt":
		return leadingPt(e, datamodel.ObjJet), nil
	case "met":
		return e.Missing.Pt, nil
	case "sum_et":
		return e.Missing.SumEt, nil
	case "ht":
		ht := 0.0
		for _, j := range e.CandidatesOf(datamodel.ObjJet) {
			ht += j.P.Pt()
		}
		return ht, nil
	}
	if len(name) > 4 && name[:4] == "aux:" {
		if v, ok := e.Aux[name[4:]]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("skim: event has no aux variable %q", name[4:])
	}
	return 0, fmt.Errorf("skim: unknown variable %q", name)
}

func leadingPt(e *datamodel.Event, t datamodel.ObjectType) float64 {
	c, ok := e.LeadingCandidate(t)
	if !ok {
		return 0
	}
	return c.P.Pt()
}

// Selection is a named conjunction of cuts: the skim half of a derivation.
type Selection struct {
	Name string `json:"name"`
	Cuts []Cut  `json:"cuts"`
}

// Validate checks operators and variable names without needing an event.
func (s Selection) Validate() error {
	for _, c := range s.Cuts {
		if !c.Op.valid() {
			return fmt.Errorf("skim: selection %q: bad operator %q", s.Name, c.Op)
		}
		if _, ok := variableDocs[c.Variable]; !ok {
			if len(c.Variable) <= 4 || c.Variable[:4] != "aux:" {
				return fmt.Errorf("skim: selection %q: unknown variable %q", s.Name, c.Variable)
			}
		}
	}
	return nil
}

// Pass reports whether the event satisfies every cut.
func (s Selection) Pass(e *datamodel.Event) (bool, error) {
	for _, c := range s.Cuts {
		ok, err := c.Eval(e)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// CutFlow evaluates the selection cut by cut and returns the number of
// events surviving each prefix — the tabular presentation Les Houches
// Recommendation 1a asks publications to include.
func (s Selection) CutFlow(events []*datamodel.Event) ([]int, error) {
	counts := make([]int, len(s.Cuts)+1)
	counts[0] = len(events)
	for _, e := range events {
		for i, c := range s.Cuts {
			ok, err := c.Eval(e)
			if err != nil {
				return nil, err
			}
			if !ok {
				break
			}
			counts[i+1]++
		}
	}
	return counts, nil
}

// SlimPolicy is the content-pruning half of a derivation.
type SlimPolicy struct {
	Name string `json:"name"`
	// DropRecoDetail removes tracks, vertices, and clusters (the RECO→AOD
	// slim).
	DropRecoDetail bool `json:"drop_reco_detail"`
	// MinCandidatePt prunes candidates below this pT (GeV).
	MinCandidatePt float64 `json:"min_candidate_pt"`
	// KeepTypes restricts candidates to the listed types; empty keeps all.
	KeepTypes []datamodel.ObjectType `json:"keep_types,omitempty"`
	// DropAux removes all aux variables except those in KeepAux.
	DropAux bool     `json:"drop_aux"`
	KeepAux []string `json:"keep_aux,omitempty"`
}

// Apply returns a pruned copy of the event at Derived tier. The input is
// never modified.
func (p SlimPolicy) Apply(e *datamodel.Event) *datamodel.Event {
	out := e.Clone()
	out.Tier = datamodel.TierDerived
	if p.DropRecoDetail {
		out.Tracks, out.Vertices, out.Clusters = nil, nil, nil
	}
	if p.MinCandidatePt > 0 || len(p.KeepTypes) > 0 {
		kept := out.Candidates[:0]
		for _, c := range out.Candidates {
			if p.MinCandidatePt > 0 && c.P.Pt() < p.MinCandidatePt {
				continue
			}
			if len(p.KeepTypes) > 0 && !containsType(p.KeepTypes, c.Type) {
				continue
			}
			kept = append(kept, c)
		}
		out.Candidates = kept
	}
	if p.DropAux {
		if len(p.KeepAux) == 0 {
			out.Aux = nil
		} else {
			aux := make(map[string]float64)
			for _, k := range p.KeepAux {
				if v, ok := out.Aux[k]; ok {
					aux[k] = v
				}
			}
			out.Aux = aux
		}
	}
	return out
}

func containsType(ts []datamodel.ObjectType, t datamodel.ObjectType) bool {
	for _, x := range ts {
		if x == t {
			return true
		}
	}
	return false
}

// Derivation is one preservable skim+slim step, the unit of the post-AOD
// workflow.
type Derivation struct {
	Name      string     `json:"name"`
	Selection Selection  `json:"selection"`
	Slim      SlimPolicy `json:"slim"`
}

// Validate checks the derivation is well-formed.
func (d Derivation) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("skim: derivation without a name")
	}
	return d.Selection.Validate()
}

// Report summarizes one derivation execution.
type Report struct {
	Derivation string
	Input      int
	Selected   int
}

// Efficiency returns the skim's selection efficiency.
func (r Report) Efficiency() float64 {
	if r.Input == 0 {
		return 0
	}
	return float64(r.Selected) / float64(r.Input)
}

// Apply evaluates the derivation on a single event: the derived event and
// true when selected, nil and false otherwise. It is the per-event unit
// Run batches over, and the stage adapter for streaming pipelines (the
// signature matches eventflow's stage functions; Apply never mutates its
// input, so any worker count is safe).
func (d Derivation) Apply(e *datamodel.Event) (*datamodel.Event, bool, error) {
	ok, err := d.Selection.Pass(e)
	if err != nil {
		return nil, false, fmt.Errorf("skim: derivation %q: %w", d.Name, err)
	}
	if !ok {
		return nil, false, nil
	}
	return d.Slim.Apply(e), true, nil
}

// Run executes the derivation over a sample, returning the derived events
// and an execution report.
func (d Derivation) Run(events []*datamodel.Event) ([]*datamodel.Event, Report, error) {
	if err := d.Validate(); err != nil {
		return nil, Report{}, err
	}
	rep := Report{Derivation: d.Name, Input: len(events)}
	var out []*datamodel.Event
	for _, e := range events {
		derived, ok, err := d.Apply(e)
		if err != nil {
			return nil, rep, err
		}
		if !ok {
			continue
		}
		rep.Selected++
		out = append(out, derived)
	}
	return out, rep, nil
}

// MarshalJSON is provided by the struct tags; Encode/Decode wrap them with
// validation so an archived derivation is checked on the way in and out.

// Encode serializes the derivation to its archival JSON form.
func (d Derivation) Encode() ([]byte, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return json.MarshalIndent(d, "", "  ")
}

// DecodeDerivation parses and validates an archived derivation.
func DecodeDerivation(data []byte) (Derivation, error) {
	var d Derivation
	if err := json.Unmarshal(data, &d); err != nil {
		return Derivation{}, fmt.Errorf("skim: parsing derivation: %w", err)
	}
	if err := d.Validate(); err != nil {
		return Derivation{}, err
	}
	return d, nil
}

// Train runs several derivations over one pass of the input — the
// CMS-style centralized production of group formats the paper contrasts
// with ATLAS's decentralized model.
type Train struct {
	Name        string       `json:"name"`
	Derivations []Derivation `json:"derivations"`
}

// Run executes every derivation and returns outputs keyed by derivation
// name, plus per-derivation reports in order.
func (t Train) Run(events []*datamodel.Event) (map[string][]*datamodel.Event, []Report, error) {
	out := make(map[string][]*datamodel.Event, len(t.Derivations))
	reports := make([]Report, 0, len(t.Derivations))
	for _, d := range t.Derivations {
		derived, rep, err := d.Run(events)
		if err != nil {
			return nil, reports, err
		}
		if _, dup := out[d.Name]; dup {
			return nil, reports, fmt.Errorf("skim: duplicate derivation name %q in train", d.Name)
		}
		out[d.Name] = derived
		reports = append(reports, rep)
	}
	return out, reports, nil
}
