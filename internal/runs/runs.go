// Package runs implements run and luminosity bookkeeping: the registry of
// data-taking runs with their integrated luminosity and data-quality
// verdicts, and the good-run lists every physics analysis starts from.
// The luminosity behind a preserved result is part of the result — the
// cross-section limits of the Les Houches and RECAST layers are only
// meaningful against the integrated luminosity of the runs analysed — so
// good-run lists serialize alongside the analyses they scope.
package runs

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"daspos/internal/datamodel"
)

// Quality is a run's data-quality verdict.
type Quality string

// Verdicts.
const (
	QualityUnchecked Quality = "unchecked"
	QualityGood      Quality = "good"
	QualityBad       Quality = "bad"
)

// Record is one data-taking run.
type Record struct {
	Run    uint32  `json:"run"`
	Events int     `json:"events"`
	LumiPb float64 `json:"lumi_pb"`
	// Quality is the DQ verdict; Defects document a bad verdict.
	Quality Quality  `json:"quality"`
	Defects []string `json:"defects,omitempty"`
}

// ErrNoRun is returned for unknown run numbers.
var ErrNoRun = errors.New("runs: no such run")

// Registry is the run catalogue. Safe for concurrent use: resume and
// run-status reporting read it while the pipeline registers runs.
type Registry struct {
	mu   sync.RWMutex
	runs map[uint32]*Record
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{runs: make(map[uint32]*Record)}
}

// Add registers a run as unchecked. Duplicate run numbers are rejected.
func (r *Registry) Add(run uint32, events int, lumiPb float64) error {
	if events < 0 || lumiPb < 0 {
		return fmt.Errorf("runs: run %d has negative extent", run)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.runs[run]; dup {
		return fmt.Errorf("runs: run %d already registered", run)
	}
	r.runs[run] = &Record{Run: run, Events: events, LumiPb: lumiPb, Quality: QualityUnchecked}
	return nil
}

// Get returns a copy of a run record.
func (r *Registry) Get(run uint32) (Record, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	rec, ok := r.runs[run]
	if !ok {
		return Record{}, false
	}
	cp := *rec
	cp.Defects = append([]string(nil), rec.Defects...)
	return cp, true
}

// SetQuality records the DQ verdict for a run. Marking a run bad requires
// at least one defect — an undocumented rejection is not auditable.
func (r *Registry) SetQuality(run uint32, q Quality, defects ...string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.runs[run]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoRun, run)
	}
	switch q {
	case QualityGood, QualityBad, QualityUnchecked:
	default:
		return fmt.Errorf("runs: unknown quality %q", q)
	}
	if q == QualityBad && len(defects) == 0 {
		return fmt.Errorf("runs: run %d marked bad without a defect", run)
	}
	rec.Quality = q
	rec.Defects = append([]string(nil), defects...)
	return nil
}

// Runs returns all run numbers, sorted.
func (r *Registry) Runs() []uint32 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.runsLocked()
}

// runsLocked returns all run numbers, sorted; callers hold r.mu.
func (r *Registry) runsLocked() []uint32 {
	out := make([]uint32, 0, len(r.runs))
	for run := range r.runs {
		out = append(out, run)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GoodRunList is the published set of analysable runs: the scope of every
// physics result derived from the sample.
type GoodRunList struct {
	// Name and Version identify the list; analyses cite both.
	Name    string   `json:"name"`
	Version string   `json:"version"`
	Runs    []uint32 `json:"runs"`
	// LumiPb is the integrated luminosity of the listed runs, frozen at
	// publication so the list is self-contained.
	LumiPb float64 `json:"lumi_pb"`
}

// Contains reports whether a run is in the list.
func (g *GoodRunList) Contains(run uint32) bool {
	i := sort.Search(len(g.Runs), func(i int) bool { return g.Runs[i] >= run })
	return i < len(g.Runs) && g.Runs[i] == run
}

// BuildGoodRunList publishes the registry's good runs under a name and
// version.
func (r *Registry) BuildGoodRunList(name, version string) *GoodRunList {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g := &GoodRunList{Name: name, Version: version}
	for _, run := range r.runsLocked() {
		rec := r.runs[run]
		if rec.Quality == QualityGood {
			g.Runs = append(g.Runs, run)
			g.LumiPb += rec.LumiPb
		}
	}
	return g
}

// Encode serializes the list for archiving.
func (g *GoodRunList) Encode() ([]byte, error) {
	if g.Name == "" || g.Version == "" {
		return nil, fmt.Errorf("runs: good-run list needs a name and version")
	}
	return json.MarshalIndent(g, "", "  ")
}

// DecodeGoodRunList parses an archived list, verifying the runs are
// sorted and unique.
func DecodeGoodRunList(data []byte) (*GoodRunList, error) {
	var g GoodRunList
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("runs: parsing good-run list: %w", err)
	}
	for i := 1; i < len(g.Runs); i++ {
		if g.Runs[i] <= g.Runs[i-1] {
			return nil, fmt.Errorf("runs: list %q not sorted/unique at %d", g.Name, i)
		}
	}
	return &g, nil
}

// SelectEvents keeps the events whose run is in the list: the data-quality
// filter at the head of every analysis chain.
func (g *GoodRunList) SelectEvents(events []*datamodel.Event) []*datamodel.Event {
	var out []*datamodel.Event
	for _, e := range events {
		if g.Contains(e.Run) {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSON persists the registry.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var all []*Record
	for _, run := range r.runsLocked() {
		all = append(all, r.runs[run])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(all)
}

// ReadJSON loads a registry.
func ReadJSON(rd io.Reader) (*Registry, error) {
	var all []*Record
	if err := json.NewDecoder(rd).Decode(&all); err != nil {
		return nil, fmt.Errorf("runs: parsing registry: %w", err)
	}
	r := NewRegistry()
	for _, rec := range all {
		if _, dup := r.runs[rec.Run]; dup {
			return nil, fmt.Errorf("runs: duplicate run %d on load", rec.Run)
		}
		cp := *rec
		r.runs[rec.Run] = &cp
	}
	return r, nil
}
