package runs

import (
	"bytes"
	"io"
	"math"
	"strings"
	"sync"
	"testing"

	"daspos/internal/datamodel"
)

func seededRegistry(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	for run := uint32(100); run < 110; run++ {
		if err := r.Add(run, 10000, 5.5); err != nil {
			t.Fatal(err)
		}
	}
	// Runs 103 and 107 are bad; 109 stays unchecked.
	for run := uint32(100); run < 109; run++ {
		q := QualityGood
		var defects []string
		if run == 103 || run == 107 {
			q = QualityBad
			defects = []string{"toroid off"}
		}
		if err := r.SetQuality(run, q, defects...); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestAddAndGet(t *testing.T) {
	r := seededRegistry(t)
	rec, ok := r.Get(103)
	if !ok || rec.Quality != QualityBad || rec.Defects[0] != "toroid off" {
		t.Fatalf("run 103: %+v", rec)
	}
	if _, ok := r.Get(999); ok {
		t.Fatal("phantom run")
	}
	if err := r.Add(100, 1, 1); err == nil {
		t.Fatal("duplicate run added")
	}
	if err := r.Add(200, -1, 1); err == nil {
		t.Fatal("negative events added")
	}
	if len(r.Runs()) != 10 {
		t.Fatalf("runs: %d", len(r.Runs()))
	}
}

func TestSetQualityRules(t *testing.T) {
	r := seededRegistry(t)
	if err := r.SetQuality(999, QualityGood); err == nil {
		t.Fatal("phantom run rated")
	}
	if err := r.SetQuality(100, Quality("excellent")); err == nil {
		t.Fatal("unknown quality accepted")
	}
	if err := r.SetQuality(100, QualityBad); err == nil {
		t.Fatal("bad verdict without defect accepted")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	r := seededRegistry(t)
	rec, _ := r.Get(103)
	rec.Defects[0] = "mutated"
	again, _ := r.Get(103)
	if again.Defects[0] != "toroid off" {
		t.Fatal("Get aliases registry storage")
	}
}

func TestGoodRunList(t *testing.T) {
	r := seededRegistry(t)
	grl := r.BuildGoodRunList("physics", "v1")
	// 9 checked runs minus 2 bad = 7 good; the unchecked run is excluded.
	if len(grl.Runs) != 7 {
		t.Fatalf("good runs: %v", grl.Runs)
	}
	if grl.Contains(103) || grl.Contains(109) {
		t.Fatal("bad or unchecked run in the list")
	}
	if !grl.Contains(100) || !grl.Contains(108) {
		t.Fatal("good run missing")
	}
	if math.Abs(grl.LumiPb-7*5.5) > 1e-9 {
		t.Fatalf("lumi %v", grl.LumiPb)
	}
}

func TestGoodRunListJSON(t *testing.T) {
	r := seededRegistry(t)
	grl := r.BuildGoodRunList("physics", "v1")
	data, err := grl.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGoodRunList(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.LumiPb != grl.LumiPb || len(got.Runs) != len(grl.Runs) {
		t.Fatal("round trip changed list")
	}
	if _, err := (&GoodRunList{}).Encode(); err == nil {
		t.Fatal("nameless list encoded")
	}
	if _, err := DecodeGoodRunList([]byte("{bad")); err == nil {
		t.Fatal("garbage decoded")
	}
	if _, err := DecodeGoodRunList([]byte(`{"name":"x","version":"1","runs":[5,3]}`)); err == nil {
		t.Fatal("unsorted list decoded")
	}
}

func TestSelectEvents(t *testing.T) {
	r := seededRegistry(t)
	grl := r.BuildGoodRunList("physics", "v1")
	var events []*datamodel.Event
	for run := uint32(100); run < 110; run++ {
		events = append(events, &datamodel.Event{Run: run, Number: uint64(run)})
	}
	kept := grl.SelectEvents(events)
	if len(kept) != 7 {
		t.Fatalf("kept %d", len(kept))
	}
	for _, e := range kept {
		if e.Run == 103 || e.Run == 107 || e.Run == 109 {
			t.Fatalf("bad-run event %d survived", e.Run)
		}
	}
}

func TestRegistryJSONRoundTrip(t *testing.T) {
	r := seededRegistry(t)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs()) != 10 {
		t.Fatalf("runs after reload: %d", len(got.Runs()))
	}
	rec, _ := got.Get(107)
	if rec.Quality != QualityBad {
		t.Fatalf("verdict lost: %+v", rec)
	}
	if _, err := ReadJSON(strings.NewReader("{bad")); err == nil {
		t.Fatal("garbage registry loaded")
	}
	if _, err := ReadJSON(strings.NewReader(`[{"run":1},{"run":1}]`)); err == nil {
		t.Fatal("duplicate runs loaded")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	// Exercised under -race in CI: writers registering and rating runs while
	// readers walk, build good-run lists, and serialize the registry.
	r := NewRegistry()
	const runsPerWriter = 50
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint32(1000 * (w + 1))
			for i := uint32(0); i < runsPerWriter; i++ {
				run := base + i
				if err := r.Add(run, 100, 1.0); err != nil {
					t.Errorf("Add(%d): %v", run, err)
					return
				}
				if err := r.SetQuality(run, QualityGood); err != nil {
					t.Errorf("SetQuality(%d): %v", run, err)
					return
				}
			}
		}(w)
	}
	for reader := 0; reader < 4; reader++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				for _, run := range r.Runs() {
					if run == 0 {
						t.Error("zero run observed")
						return
					}
				}
				r.Get(1000)
				r.BuildGoodRunList("physics", "race")
				if err := r.WriteJSON(io.Discard); err != nil {
					t.Errorf("WriteJSON: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := len(r.Runs()); got != 4*runsPerWriter {
		t.Fatalf("registry holds %d runs, want %d", got, 4*runsPerWriter)
	}
	grl := r.BuildGoodRunList("physics", "final")
	if len(grl.Runs) != 4*runsPerWriter {
		t.Fatalf("good-run list holds %d runs, want %d", len(grl.Runs), 4*runsPerWriter)
	}
}
