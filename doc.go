// Package daspos is a Go reproduction of the DASPOS (Data and Software
// Preservation for Open Science) Workshop 1 report: a complete data- and
// analysis-preservation platform for high energy physics, from the Monte
// Carlo generator and detector simulation at the bottom to the RECAST
// reinterpretation service and the preservation archive at the top.
//
// The root package carries the benchmark harness (bench_test.go): one
// benchmark per paper artifact, as indexed in DESIGN.md and recorded in
// EXPERIMENTS.md. The library lives under internal/, the executables under
// cmd/, and runnable walkthroughs under examples/.
package daspos
