package daspos

// Crash-storm integration tests: the checkpointed offline chain — RAW →
// RECO → AOD → derivation skims through the workflow engine — is killed
// at every instrumented point of the ledger's commit protocol, resumed,
// and must converge to tiers byte-identical with an uninterrupted run
// while never re-executing a step whose checkpointed outputs verify.

import (
	"bytes"
	"context"
	"os"
	"strconv"
	"sync"
	"testing"

	"daspos/internal/checkpoint"
	"daspos/internal/datamodel"
	"daspos/internal/eventflow"
	"daspos/internal/faults"
	"daspos/internal/provenance"
	"daspos/internal/rawdata"
	"daspos/internal/reco"
	"daspos/internal/workflow"
)

// The RAW tier is the workflow's primary input (the detector wrote it);
// producing it runs the full simulation chain, so it is computed once and
// shared by every kill/resume attempt in the storm.
var crashRaw struct {
	once sync.Once
	data []byte
	n    int
}

func crashRawInput(t testing.TB, d *detCond) map[string]*workflow.Artifact {
	t.Helper()
	crashRaw.once.Do(func() {
		a := rawArtifact(t, d.det, 40)
		crashRaw.data, crashRaw.n = a.Data, a.Events
	})
	return map[string]*workflow.Artifact{
		"raw.banks": {Name: "raw.banks", Tier: "RAW", Events: crashRaw.n, Data: crashRaw.data},
	}
}

// offlineChain is the production offline workflow on the streaming
// substrate, instrumented with per-step execution counters — the probe
// the skip assertions read.
func offlineChain(d *detCond, counts map[string]int) *workflow.Workflow {
	opts := eventflow.Options{BatchSize: 8}
	const workers = 2
	rec := reco.New(d.det)
	counted := func(name string, fn workflow.StepFunc) workflow.StepFunc {
		return func(ctx *workflow.Context) error {
			counts[name]++
			return fn(ctx)
		}
	}
	return &workflow.Workflow{
		Name:          "crash-chain",
		ConditionsTag: "e2e-v1",
		PrimaryInputs: []string{"raw.banks"},
		Steps: []workflow.Step{
			{
				Name: "reconstruction", Software: "daspos-reco", Version: rec.Version,
				Inputs: []string{"raw.banks"}, Outputs: []string{"reco.edm"},
				Run: counted("reconstruction", func(ctx *workflow.Context) error {
					in, err := ctx.InputReader("raw.banks")
					if err != nil {
						return err
					}
					out, err := ctx.StreamOutput("reco.edm", "RECO")
					if err != nil {
						return err
					}
					fw, err := datamodel.NewFileWriter(out, datamodel.TierRECO)
					if err != nil {
						return err
					}
					p := eventflow.New(ctx.Ctx(), "reconstruction", opts)
					src := eventflow.Source(p, "raw-read", rawdata.NewReader(in).Read)
					recoS := eventflow.MapWorkers(src, "reconstruct", workers,
						reco.ParallelStage(d.det, reco.DefaultConfig(), d.snap))
					eventflow.Sink(recoS, "reco-write", fw.Write)
					if err := p.Wait(); err != nil {
						return err
					}
					if err := fw.Close(); err != nil {
						return err
					}
					return out.Commit(fw.Count())
				}),
			},
			{
				Name: "aod-slim", Software: "daspos-datamodel", Version: "1.0",
				Inputs: []string{"reco.edm"}, Outputs: []string{"aod.edm"},
				Run: counted("aod-slim", func(ctx *workflow.Context) error {
					in, err := ctx.InputReader("reco.edm")
					if err != nil {
						return err
					}
					fr, err := datamodel.NewFileReader(in)
					if err != nil {
						return err
					}
					out, err := ctx.StreamOutput("aod.edm", "AOD")
					if err != nil {
						return err
					}
					fw, err := datamodel.NewFileWriter(out, datamodel.TierAOD)
					if err != nil {
						return err
					}
					p := eventflow.New(ctx.Ctx(), "aod-slim", opts)
					src := eventflow.Source(p, "reco-read", fr.Read)
					aodS := eventflow.Map(src, "slim", workers, func(e *datamodel.Event) (*datamodel.Event, bool, error) {
						return e.SlimToAOD(), true, nil
					})
					eventflow.Sink(aodS, "aod-write", fw.Write)
					if err := p.Wait(); err != nil {
						return err
					}
					if err := fw.Close(); err != nil {
						return err
					}
					return out.Commit(fw.Count())
				}),
			},
			{
				Name: "derivation-train", Software: "daspos-skim", Version: "1.0",
				Config: map[string]string{"train": "DIMUON+MET"},
				Inputs: []string{"aod.edm"}, Outputs: []string{"skim.DIMUON", "skim.MET"},
				Run: counted("derivation-train", func(ctx *workflow.Context) error {
					in, err := ctx.InputReader("aod.edm")
					if err != nil {
						return err
					}
					fr, err := datamodel.NewFileReader(in)
					if err != nil {
						return err
					}
					train := prodTrain()
					writers := make([]*workflow.ArtifactWriter, len(train.Derivations))
					files := make([]*datamodel.FileWriter, len(train.Derivations))
					for i, der := range train.Derivations {
						aw, err := ctx.StreamOutput("skim."+der.Name, "DERIVED")
						if err != nil {
							return err
						}
						fw, err := datamodel.NewFileWriter(aw, datamodel.TierDerived)
						if err != nil {
							return err
						}
						writers[i], files[i] = aw, fw
					}
					p := eventflow.New(ctx.Ctx(), "derivation-train", opts)
					src := eventflow.Source(p, "aod-read", fr.Read)
					eventflow.Sink(src, "derive", func(e *datamodel.Event) error {
						for i := range train.Derivations {
							derived, keep, err := train.Derivations[i].Apply(e)
							if err != nil {
								return err
							}
							if keep {
								if err := files[i].Write(derived); err != nil {
									return err
								}
							}
						}
						return nil
					})
					if err := p.Wait(); err != nil {
						return err
					}
					for i := range files {
						if err := files[i].Close(); err != nil {
							return err
						}
						if err := writers[i].Commit(files[i].Count()); err != nil {
							return err
						}
					}
					return nil
				}),
			},
		},
	}
}

var chainOutputs = []string{"reco.edm", "aod.edm", "skim.DIMUON", "skim.MET"}

// referenceTiers runs the chain uninterrupted, no ledger, and returns the
// byte-identity reference for every storm below.
func referenceTiers(t testing.TB, d *detCond) map[string][]byte {
	t.Helper()
	res, err := offlineChain(d, map[string]int{}).Execute(
		context.Background(), crashRawInput(t, d), provenance.NewStore())
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]byte, len(chainOutputs))
	for _, name := range chainOutputs {
		out[name] = res.Artifacts[name].Data
	}
	return out
}

func assertTiersIdentical(t *testing.T, label string, want map[string][]byte, res *workflow.Result) {
	t.Helper()
	for _, name := range chainOutputs {
		a := res.Artifacts[name]
		if a == nil {
			t.Fatalf("%s: tier %s missing", label, name)
		}
		if !bytes.Equal(a.Data, want[name]) {
			t.Fatalf("%s: tier %s differs from uninterrupted run", label, name)
		}
	}
}

// runKilled executes the checkpointed chain expecting the killer to fire;
// it reports whether the kill happened (false: the run completed).
func runKilled(t *testing.T, d *detCond, dir string, counts map[string]int, killer *faults.Killer, resume bool) (killed bool) {
	t.Helper()
	l, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetKill(killer.Hit)
	opt := workflow.WithCheckpoint(l)
	if resume {
		opt = workflow.ResumeFrom(l)
	}
	defer func() {
		if r := recover(); r != nil {
			if _, ok := faults.AsKill(r); !ok {
				panic(r)
			}
			killed = true
		}
	}()
	if _, err := offlineChain(d, counts).Execute(context.Background(), crashRawInput(t, d), provenance.NewStore(), opt); err != nil {
		t.Fatal(err)
	}
	return false
}

// doneSteps returns the steps the ledger records as Done AND whose
// artifacts pass fixity — exactly the set resume must not re-execute.
func doneSteps(t *testing.T, dir string) map[string]bool {
	t.Helper()
	l, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(map[string]bool)
	for _, info := range l.Status() {
		if info.State == checkpoint.StepDone && l.Verify(info.Key) == nil {
			done[info.Step] = true
		}
	}
	return done
}

func resumeToCompletion(t *testing.T, d *detCond, dir string, counts map[string]int) *workflow.Result {
	t.Helper()
	l, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	res, err := offlineChain(d, counts).Execute(
		context.Background(), crashRawInput(t, d), provenance.NewStore(), workflow.ResumeFrom(l))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCrashStormResumesByteIdentical kills the pipeline at EVERY
// instrumented point of the commit protocol — one fresh run per point —
// resumes each, and asserts the resumed output is byte-identical to the
// uninterrupted reference and that no step with verified checkpointed
// outputs re-executed.
func TestCrashStormResumesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("crash storm is a long test")
	}
	d := detectorWithConditions(t)
	want := referenceTiers(t, d)

	// Probe: count the kill points one uninterrupted checkpointed run
	// exposes. The storm sweeps all of them.
	probe := faults.NewKiller()
	if killed := runKilled(t, d, t.TempDir(), map[string]int{}, probe, false); killed {
		t.Fatal("disarmed probe killed the run")
	}
	total := probe.Hits()
	if total < 20 {
		t.Fatalf("only %d kill points over the run, want >= 20", total)
	}
	t.Logf("crash storm: sweeping %d kill points", total)

	for n := 1; n <= total; n++ {
		dir := t.TempDir()
		counts := map[string]int{}
		killer := faults.NewKiller()
		killer.CrashAfterN(n)
		if !runKilled(t, d, dir, counts, killer, false) {
			t.Fatalf("kill %d/%d did not fire", n, total)
		}
		survivors := doneSteps(t, dir)
		preKill := make(map[string]int, len(counts))
		for step, c := range counts {
			preKill[step] = c
		}

		res := resumeToCompletion(t, d, dir, counts)
		assertTiersIdentical(t, "kill at "+strconv.Itoa(n), want, res)
		if res.Executed+res.Skipped != 3 {
			t.Fatalf("kill %d: executed=%d skipped=%d", n, res.Executed, res.Skipped)
		}
		if res.Skipped != len(survivors) {
			t.Fatalf("kill %d: skipped %d steps, ledger held %d verified", n, res.Skipped, len(survivors))
		}
		for step, c := range counts {
			if survivors[step] && c != preKill[step] {
				t.Fatalf("kill %d: step %s with verified checkpoint re-executed", n, step)
			}
			if c > preKill[step]+1 {
				t.Fatalf("kill %d: step %s ran %d times on resume", n, step, c-preKill[step])
			}
		}
	}
}

// TestCrashStormRepeatedKills hammers ONE ledger directory: every attempt
// is killed a few points further in, resuming from whatever the previous
// death left, until the run finally completes. Progress must be monotone —
// checkpointed work is never lost to the next crash.
func TestCrashStormRepeatedKills(t *testing.T) {
	d := detectorWithConditions(t)
	want := referenceTiers(t, d)
	dir := t.TempDir()
	counts := map[string]int{}

	// Each attempt survives a little longer before dying. The budget must
	// grow: recovery is step-granular (a killed step restarts from its
	// beginning), so a fixed budget shorter than the longest step would
	// crash-loop forever — which is itself worth knowing about the design.
	attempts := 0
	for ; attempts < 40; attempts++ {
		killer := faults.NewKiller()
		killer.CrashAfterN(5 + attempts*4)
		if !runKilled(t, d, dir, counts, killer, attempts > 0) {
			break
		}
	}
	if attempts == 40 {
		t.Fatal("run never completed under repeated kills")
	}
	t.Logf("survived %d kills before completing", attempts)

	// The final state replays clean and byte-identical.
	res := resumeToCompletion(t, d, dir, counts)
	assertTiersIdentical(t, "repeated kills", want, res)
	if res.Skipped != 3 {
		t.Fatalf("completed run not fully checkpointed: skipped=%d", res.Skipped)
	}
	// Every step eventually ran, and no step ran once per attempt — the
	// ledger carried finished work across crashes.
	for _, step := range []string{"reconstruction", "aod-slim", "derivation-train"} {
		if counts[step] == 0 {
			t.Fatalf("step %s never executed", step)
		}
		if counts[step] > attempts+1 {
			t.Fatalf("step %s ran %d times over %d attempts — checkpoints not honoured", step, counts[step], attempts)
		}
	}
}

// TestResumeCorruptedArtifactForcesReExecution damages one checkpointed
// object and asserts resume re-executes exactly the affected step.
func TestResumeCorruptedArtifactForcesReExecution(t *testing.T) {
	d := detectorWithConditions(t)
	dir := t.TempDir()
	counts := map[string]int{}
	killer := faults.NewKiller() // disarmed
	if runKilled(t, d, dir, counts, killer, false) {
		t.Fatal("disarmed killer fired")
	}

	l, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var recoDigest string
	for _, info := range l.Status() {
		if info.Step == "reconstruction" {
			recoDigest = info.Artifacts[0].Digest
		}
	}
	obj := l.ObjectPath(recoDigest)
	l.Close()
	data, err := os.ReadFile(obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(obj, faults.CorruptBytes(data), 0o644); err != nil {
		t.Fatal(err)
	}

	res := resumeToCompletion(t, d, dir, counts)
	if counts["reconstruction"] != 2 {
		t.Fatalf("reconstruction ran %d times, want 2 (re-run after fixity failure)", counts["reconstruction"])
	}
	// Reconstruction is deterministic, so its re-produced output digest is
	// unchanged and the downstream steps stay skippable.
	if counts["aod-slim"] != 1 || counts["derivation-train"] != 1 {
		t.Fatalf("unaffected steps re-ran: %v", counts)
	}
	if res.Executed != 1 || res.Skipped != 2 {
		t.Fatalf("executed=%d skipped=%d, want 1/2", res.Executed, res.Skipped)
	}
	assertTiersIdentical(t, "corrupted artifact", referenceTiers(t, d), res)
	if done := doneSteps(t, dir); len(done) != 3 {
		t.Fatalf("ledger not repaired: %v", done)
	}
}

// TestResumeTornFinalJournalRecord tears the journal's real final record —
// the last step's done line — and asserts resume re-executes only that
// step, everything earlier staying checkpointed.
func TestResumeTornFinalJournalRecord(t *testing.T) {
	d := detectorWithConditions(t)
	dir := t.TempDir()
	counts := map[string]int{}
	if runKilled(t, d, dir, counts, faults.NewKiller(), false) {
		t.Fatal("disarmed killer fired")
	}

	l, err := checkpoint.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	journal := l.JournalPath()
	l.Close()
	if err := faults.TearFinalRecord(journal); err != nil {
		t.Fatal(err)
	}

	res := resumeToCompletion(t, d, dir, counts)
	if counts["derivation-train"] != 2 {
		t.Fatalf("interrupted final step ran %d times, want 2", counts["derivation-train"])
	}
	if counts["reconstruction"] != 1 || counts["aod-slim"] != 1 {
		t.Fatalf("intact steps re-ran: %v", counts)
	}
	if res.Executed != 1 || res.Skipped != 2 {
		t.Fatalf("executed=%d skipped=%d, want 1/2", res.Executed, res.Skipped)
	}
	assertTiersIdentical(t, "torn journal", referenceTiers(t, d), res)
}
