package daspos

import (
	"bytes"
	"context"
	"testing"

	"daspos/internal/catalog"
	"daspos/internal/provenance"
	"daspos/internal/workflow"
)

// TestCatalogBookkeepsWorkflowChain registers every workflow artifact as a
// catalogue dataset with parent links mirroring the step wiring, then
// checks that dataset lineage and provenance lineage tell the same story —
// the bookkeeping layer every experiment in the paper's survey maintains
// between processing steps.
func TestCatalogBookkeepsWorkflowChain(t *testing.T) {
	d := detectorWithConditions(t)
	prov := provenance.NewStore()
	wf := productionWorkflow(t, d)
	res, err := wf.Execute(context.Background(), map[string]*workflow.Artifact{
		"raw.banks": rawArtifact(t, d.det, 30),
	}, prov)
	if err != nil {
		t.Fatal(err)
	}

	cat := catalog.New()
	// Register the primary input and each step output as datasets, with
	// parent links following the step wiring.
	datasetName := map[string]string{"raw.banks": "/e2e/run1/RAW"}
	if err := cat.Create(catalog.Dataset{
		Name: datasetName["raw.banks"], Tier: "RAW", ProcessingVersion: "v1",
		ConditionsTag:    "e2e-v1",
		ProvenanceRecord: res.RecordIDs["raw.banks"],
	}); err != nil {
		t.Fatal(err)
	}
	tiers := map[string]string{"aod.edm": "AOD", "skim.MU": "DERIVED"}
	parents := map[string]string{"aod.edm": "raw.banks", "skim.MU": "aod.edm"}
	for _, name := range []string{"aod.edm", "skim.MU"} {
		a := res.Artifacts[name]
		dsName := "/e2e/run1/" + tiers[name]
		datasetName[name] = dsName
		if err := cat.Create(catalog.Dataset{
			Name: dsName, Tier: tiers[name], ProcessingVersion: "v1",
			ConditionsTag:    "e2e-v1",
			Parent:           datasetName[parents[name]],
			ProvenanceRecord: res.RecordIDs[name],
		}); err != nil {
			t.Fatal(err)
		}
		if err := cat.AddFile(dsName, catalog.FileEntry{
			LFN: name, Digest: a.Digest(), Bytes: int64(len(a.Data)), Events: a.Events,
		}); err != nil {
			t.Fatal(err)
		}
		if err := cat.Close(dsName); err != nil {
			t.Fatal(err)
		}
	}

	// Dataset lineage: skim → AOD → RAW.
	chain, err := cat.Lineage("/e2e/run1/DERIVED")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 || chain[2].Tier != "RAW" {
		t.Fatalf("dataset lineage: %d deep, root %s", len(chain), chain[len(chain)-1].Tier)
	}
	// Cross-check: each dataset's provenance record resolves, and walking
	// the provenance graph from the skim reaches the raw record the RAW
	// dataset points at.
	skimRec, ok := prov.Get(chain[0].ProvenanceRecord)
	if !ok {
		t.Fatal("skim provenance record missing")
	}
	lineage, err := prov.Lineage(skimRec.ID)
	if err != nil {
		t.Fatal(err)
	}
	rootID := chain[2].ProvenanceRecord
	found := false
	for _, rec := range lineage {
		if rec.ID == rootID {
			found = true
		}
	}
	if !found {
		t.Fatal("provenance lineage does not reach the RAW dataset's record")
	}
	// File digests in the catalogue match the artifacts byte for byte.
	ds, _ := cat.Get("/e2e/run1/AOD")
	if ds.Files[0].Digest != res.Artifacts["aod.edm"].Digest() {
		t.Fatal("catalogue digest drifted from artifact")
	}
	// The catalogue itself round-trips.
	var buf bytes.Buffer
	if err := cat.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	reloaded, err := catalog.ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if chain2, err := reloaded.Lineage("/e2e/run1/DERIVED"); err != nil || len(chain2) != 3 {
		t.Fatalf("lineage after reload: %v %d", err, len(chain2))
	}
}
