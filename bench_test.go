package daspos

// The benchmark harness: one benchmark per paper artifact, following the
// experiment index in DESIGN.md. Each benchmark both times the operation
// and reports the paper-shape quantity through b.ReportMetric, so a single
// `go test -bench=. -benchmem` run regenerates every number quoted in
// EXPERIMENTS.md.

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"

	"daspos/internal/archive"
	"daspos/internal/bridge"
	"daspos/internal/conditions"
	"daspos/internal/datamodel"
	"daspos/internal/detector"
	"daspos/internal/envcapture"
	"daspos/internal/generator"
	"daspos/internal/hepdata"
	"daspos/internal/hist"
	"daspos/internal/interview"
	"daspos/internal/leshouches"
	"daspos/internal/outreach"
	"daspos/internal/provenance"
	"daspos/internal/rawdata"
	"daspos/internal/recast"
	"daspos/internal/reco"
	"daspos/internal/rivet"
	"daspos/internal/sim"
	"daspos/internal/skim"
	"daspos/internal/trigger"
)

// ---------------------------------------------------------------------
// Shared fixtures, built once.

type fixtures struct {
	det  *detector.Detector
	db   *conditions.DB
	snap *conditions.Snapshot
	// recoEvents are Z events through the full chain at RECO tier.
	recoEvents []*datamodel.Event
	// rawSize is the encoded RAW size of the same events.
	rawSize int64
	nEvents int
}

var (
	fixOnce sync.Once
	fix     fixtures
)

func sharedFixtures(b *testing.B) *fixtures {
	b.Helper()
	fixOnce.Do(func() {
		fix.det = detector.Standard()
		fix.db = conditions.NewDB()
		if err := conditions.SeedStandard(fix.db, "bench", 1, 100, 10, 1); err != nil {
			panic(err)
		}
		fix.snap = fix.db.Snapshot("bench", 1)
		full := sim.NewFullSim(fix.det, 1)
		rec := reco.New(fix.det)
		gen := generator.NewDrellYanZ(generator.DefaultConfig(1))
		fix.nEvents = 100
		var rawBuf bytes.Buffer
		for i := 0; i < fix.nEvents; i++ {
			raw := rawdata.Digitize(1, full.Simulate(gen.Generate()))
			if err := rawdata.WriteEvent(&rawBuf, raw); err != nil {
				panic(err)
			}
			ev, err := rec.Reconstruct(raw, fix.snap)
			if err != nil {
				panic(err)
			}
			fix.recoEvents = append(fix.recoEvents, ev)
		}
		fix.rawSize = int64(rawBuf.Len())
	})
	return &fix
}

func dimuonRecord() *leshouches.AnalysisRecord {
	return &leshouches.AnalysisRecord{
		Name: "GPD_2013_DIMUON_HIGHMASS",
		Objects: []leshouches.ObjectDefinition{
			{Name: "sig_muon", Type: datamodel.ObjMuon, MinPt: 30, MaxAbsEta: 2.4},
		},
		Selection: []leshouches.Cut{
			{Variable: "count:sig_muon", Op: ">=", Value: 2},
			{Variable: "os_pair:sig_muon", Op: "==", Value: 1},
			{Variable: "inv_mass:sig_muon", Op: ">", Value: 400},
		},
		Background:     4.2,
		ObservedEvents: 5,
	}
}

// ---------------------------------------------------------------------
// T1 — Table 1: the outreach-infrastructure matrix.

func BenchmarkTable1OutreachMatrix(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = outreach.Table1().String()
	}
	if !strings.Contains(out, "iSpy") || !strings.Contains(out, "D lifetime") {
		b.Fatal("Table 1 content missing")
	}
	b.ReportMetric(float64(len(out)), "table-bytes")
}

// ---------------------------------------------------------------------
// A1-A4 — Appendix A maturity tables and sharing grid.

func BenchmarkInterviewMaturity(b *testing.B) {
	profiles := interview.StandardProfiles()
	var rendered int
	for i := 0; i < b.N; i++ {
		rendered = 0
		for _, a := range interview.Areas() {
			rendered += len(interview.MaturityTable(a).String())
		}
		for _, iv := range profiles {
			rendered += len(iv.RatingsTable().String())
			rendered += len(iv.SharingGridTable().String())
		}
		rendered += len(interview.Comparison(profiles).String())
	}
	b.ReportMetric(float64(rendered), "report-bytes")
	// The paper-shape check: CMS (approved policy) outranks ALICE.
	byName := map[string]*interview.Interview{}
	for _, iv := range profiles {
		byName[iv.Name] = iv
	}
	b.ReportMetric(byName["CMS"].OverallMaturity(), "cms-maturity")
	b.ReportMetric(byName["Alice"].OverallMaturity(), "alice-maturity")
}

// ---------------------------------------------------------------------
// W1 — tier-size cascade RAW → RECO → AOD → skim.

func BenchmarkTierReduction(b *testing.B) {
	f := sharedFixtures(b)
	var recoSize, aodSize, skimSize int64
	for i := 0; i < b.N; i++ {
		var err error
		recoSize, err = datamodel.EncodedSize(datamodel.TierRECO, f.recoEvents)
		if err != nil {
			b.Fatal(err)
		}
		var aod []*datamodel.Event
		for _, e := range f.recoEvents {
			aod = append(aod, e.SlimToAOD())
		}
		aodSize, err = datamodel.EncodedSize(datamodel.TierAOD, aod)
		if err != nil {
			b.Fatal(err)
		}
		derivation := skim.Derivation{
			Name: "DIMUON",
			Selection: skim.Selection{Name: "dimuon", Cuts: []skim.Cut{
				{Variable: "n_muons", Op: skim.OpGE, Value: 2},
			}},
			Slim: skim.SlimPolicy{KeepTypes: []datamodel.ObjectType{datamodel.ObjMuon}, DropAux: true},
		}
		derived, _, err := derivation.Run(aod)
		if err != nil {
			b.Fatal(err)
		}
		skimSize, err = datamodel.EncodedSize(datamodel.TierDerived, derived)
		if err != nil {
			b.Fatal(err)
		}
	}
	n := float64(f.nEvents)
	b.ReportMetric(float64(f.rawSize)/n, "raw-B/event")
	b.ReportMetric(float64(recoSize)/n, "reco-B/event")
	b.ReportMetric(float64(aodSize)/n, "aod-B/event")
	b.ReportMetric(float64(skimSize)/n, "skim-B/event")
	b.ReportMetric(float64(f.rawSize)/float64(skimSize), "raw/skim-reduction")
}

// ---------------------------------------------------------------------
// W2 — external-dependency census per step.

func BenchmarkDependencyEnumeration(b *testing.B) {
	f := sharedFixtures(b)
	full := sim.NewFullSim(f.det, 2)
	gen := generator.NewMinBias(generator.DefaultConfig(2))
	raw := rawdata.Digitize(1, full.Simulate(gen.Generate()))
	rec := reco.New(f.det)
	var recoDeps int
	for i := 0; i < b.N; i++ {
		if _, err := rec.Reconstruct(raw, f.snap); err != nil {
			b.Fatal(err)
		}
		recoDeps = len(rec.TouchedFolders())
	}
	// Post-AOD steps resolve nothing: the census is the contrast itself.
	b.ReportMetric(float64(recoDeps), "reco-deps")
	b.ReportMetric(0, "postaod-deps")
}

// ---------------------------------------------------------------------
// W3 — provenance completeness with and without external capture.

func BenchmarkProvenanceAudit(b *testing.B) {
	build := func() *provenance.Store {
		s := provenance.NewStore()
		for c := 0; c < 50; c++ {
			prev := ""
			for depth := 0; depth < 4; depth++ {
				var parents []string
				if prev != "" {
					parents = []string{prev}
				}
				id, err := s.Add(provenance.Record{
					Output:  provenance.Artifact{Name: "d", Events: c*10 + depth},
					Parents: parents,
				})
				if err != nil {
					b.Fatal(err)
				}
				prev = id
			}
		}
		return s
	}
	var withCapture, withoutCapture float64
	for i := 0; i < b.N; i++ {
		intact := build()
		withCapture = intact.Audit().CompleteFraction()
		lossy := build()
		lossy.ForgetEveryNth(3)
		withoutCapture = lossy.Audit().CompleteFraction()
	}
	b.ReportMetric(100*withCapture, "complete%-with-capture")
	b.ReportMetric(100*withoutCapture, "complete%-without-capture")
}

// ---------------------------------------------------------------------
// W4 — conditions access: ALICE-style snapshot vs database service.

func BenchmarkConditionsAccess(b *testing.B) {
	db := conditions.NewDB()
	if err := conditions.SeedStandard(db, "t", 1, 100000, 100, 1); err != nil {
		b.Fatal(err)
	}
	b.Run("service", func(b *testing.B) {
		view := db.View("t", 50000)
		for i := 0; i < b.N; i++ {
			if _, err := view.Lookup(conditions.FolderECalScale); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("snapshot", func(b *testing.B) {
		snap := db.Snapshot("t", 50000)
		for i := 0; i < b.N; i++ {
			if _, err := snap.Lookup(conditions.FolderECalScale); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------
// R1 — RIVET (light) vs RECAST (heavy) preservation cost per request.

func BenchmarkRivetVsRecast(b *testing.B) {
	f := sharedFixtures(b)
	record := dimuonRecord()
	model := recast.ModelSpec{Process: "zprime", MassGeV: 1200, Events: 20, Seed: 3}
	b.Run("recast-fullsim", func(b *testing.B) {
		backend := &recast.FullSimBackend{Det: f.det, CondDB: f.db, Tag: "bench", Run: 1, LuminosityPb: 20000}
		for i := 0; i < b.N; i++ {
			m := model
			m.Seed = uint64(i)
			if _, err := backend.Process(context.Background(), m, record); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rivet-bridge", func(b *testing.B) {
		backend := &bridge.RivetBackend{LuminosityPb: 20000}
		for i := 0; i < b.N; i++ {
			m := model
			m.Seed = uint64(i)
			if _, err := backend.Process(context.Background(), m, record); err != nil {
				b.Fatal(err)
			}
		}
	})
	// Capsule footprint: package closure of each tier's environment.
	reg := envcapture.StandardRegistry()
	_, cur, _ := envcapture.StandardPlatforms()
	heavy, err := envcapture.Capture(reg, "recast", cur, envcapture.PkgRef{Name: "recast-backend", Version: "0.7"})
	if err != nil {
		b.Fatal(err)
	}
	light, err := envcapture.Capture(reg, "rivet", cur, envcapture.PkgRef{Name: "rivet-lite", Version: "1.2"})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(heavy.PackageCount()), "recast-packages")
	b.ReportMetric(float64(light.PackageCount()), "rivet-packages")
}

// ---------------------------------------------------------------------
// R2 — the RECAST request round trip (submit → approve → process).

func BenchmarkRecastRoundtrip(b *testing.B) {
	svc := recast.NewService(&bridge.RivetBackend{LuminosityPb: 20000})
	if err := svc.Subscribe(recast.Subscription{Name: "GPD_2013_DIMUON_HIGHMASS", Record: dimuonRecord()}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		req, err := svc.Submit("GPD_2013_DIMUON_HIGHMASS", "bench", "",
			recast.ModelSpec{Process: "zprime", MassGeV: 1000, Events: 10, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if err := svc.Approve(req.ID); err != nil {
			b.Fatal(err)
		}
		if _, err := svc.Process(req.ID); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// R3 — bridge agreement with the full-sim back end.

func BenchmarkRecastRivetBridge(b *testing.B) {
	f := sharedFixtures(b)
	record := dimuonRecord()
	model := recast.ModelSpec{Process: "zprime", MassGeV: 1200, Events: 120, Seed: 5}
	full := &recast.FullSimBackend{Det: f.det, CondDB: f.db, Tag: "bench", Run: 1, LuminosityPb: 20000}
	light := &bridge.RivetBackend{LuminosityPb: 20000}
	var agr bridge.Agreement
	for i := 0; i < b.N; i++ {
		fr, err := full.Process(context.Background(), model, record)
		if err != nil {
			b.Fatal(err)
		}
		lr, err := light.Process(context.Background(), model, record)
		if err != nil {
			b.Fatal(err)
		}
		agr = bridge.CompareResults(fr, lr)
	}
	b.ReportMetric(agr.FullAcceptance, "fullsim-acceptance")
	b.ReportMetric(agr.BridgeAcceptance, "bridge-acceptance")
	b.ReportMetric(agr.DeltaSigma, "delta-sigma")
}

// ---------------------------------------------------------------------
// R4 — archive a RIVET analysis, re-run it on independent MC, validate.

func BenchmarkRivetReproduce(b *testing.B) {
	// Reference run, archived once.
	ref := rivetReference(b, 10, 2000)
	var pvalue float64
	for i := 0; i < b.N; i++ {
		run, err := rivet.NewRun("DASPOS_2013_ZMUMU")
		if err != nil {
			b.Fatal(err)
		}
		g := generator.NewDrellYanZ(generator.DefaultConfig(uint64(100 + i)))
		for j := 0; j < 2000; j++ {
			if err := run.Process(g.Generate()); err != nil {
				b.Fatal(err)
			}
		}
		if err := run.Finalize(); err != nil {
			b.Fatal(err)
		}
		results, err := run.Validate(ref)
		if err != nil {
			b.Fatal(err)
		}
		if !rivet.AllCompatible(results, 1e-4) {
			b.Fatal("re-run incompatible with archived reference")
		}
		pvalue = results[0].Chi2.PValue
	}
	b.ReportMetric(pvalue, "mass-pvalue")
}

func rivetReference(b *testing.B, seed uint64, n int) []byte {
	b.Helper()
	run, err := rivet.NewRun("DASPOS_2013_ZMUMU")
	if err != nil {
		b.Fatal(err)
	}
	g := generator.NewDrellYanZ(generator.DefaultConfig(seed))
	for i := 0; i < n; i++ {
		if err := run.Process(g.Generate()); err != nil {
			b.Fatal(err)
		}
	}
	if err := run.Finalize(); err != nil {
		b.Fatal(err)
	}
	data, err := run.ExportYODA()
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// ---------------------------------------------------------------------
// H1 — HepData ingest and query, including the large search payload.

func BenchmarkHepDataIngestQuery(b *testing.B) {
	h := hist.NewH1D("xsec", 40, 0, 80)
	for i := 0; i < 40; i++ {
		h.FillW(float64(i*2), float64(100-i))
	}
	var auxBytes int
	for i := 0; i < b.N; i++ {
		a := hepdata.NewArchive()
		rec := &hepdata.Record{
			InspireID: "1200001", Title: "Z pT spectrum", Collaboration: "DASPOS-GPD", Year: 2013,
			Tables: []hepdata.Table{hepdata.FromH1D(h, "Table1", "PT [GEV]", "DSIG/DPT [PB/GEV]")},
		}
		if err := a.Submit(rec); err != nil {
			b.Fatal(err)
		}
		search := &hepdata.Record{
			InspireID: "1300077", Title: "High-mass dimuon search", Collaboration: "DASPOS-GPD", Year: 2013,
			Tables: []hepdata.Table{hepdata.FromH1D(h, "Limits", "M [GEV]", "UL [PB]")},
			Aux: map[string][]byte{
				"cutflows.json":   make([]byte, 200<<10),
				"efficiency.csv":  make([]byte, 500<<10),
				"likelihood.json": make([]byte, 900<<10),
			},
		}
		if err := a.Submit(search); err != nil {
			b.Fatal(err)
		}
		if got := a.Search("dimuon"); len(got) != 1 {
			b.Fatal("search failed")
		}
		got, err := a.Get("ins1300077")
		if err != nil {
			b.Fatal(err)
		}
		auxBytes = got.AuxBytes()
	}
	b.ReportMetric(float64(auxBytes), "search-payload-bytes")
}

// ---------------------------------------------------------------------
// L1 — Les Houches reinterpretation of an archived record.

func BenchmarkLesHouchesReinterpret(b *testing.B) {
	record := dimuonRecord()
	gen := generator.NewZPrime(generator.DefaultConfig(9), 1500)
	fast := sim.NewFastSim(9)
	var events []*datamodel.Event
	for i := 0; i < 500; i++ {
		ev := gen.Generate()
		events = append(events, bridge.EventFromFastObjects(uint64(ev.Number), fast.Simulate(ev)))
	}
	b.ResetTimer()
	var res leshouches.Reinterpretation
	for i := 0; i < b.N; i++ {
		var err error
		res, err = leshouches.Reinterpret(record, events, 20000)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Acceptance, "acceptance")
	b.ReportMetric(res.UpperLimitXsecPb*1000, "UL-fb")
}

// ---------------------------------------------------------------------
// O1 — the AOD→simplified outreach conversion.

func BenchmarkOutreachConvert(b *testing.B) {
	f := sharedFixtures(b)
	conv := outreach.NewConverter(f.det)
	var exhibitBytes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var simpl []*outreach.SimplifiedEvent
		for _, e := range f.recoEvents {
			simpl = append(simpl, conv.Convert(e))
		}
		var buf bytes.Buffer
		if err := outreach.WriteExhibit(&buf, f.det, simpl); err != nil {
			b.Fatal(err)
		}
		exhibitBytes = buf.Len()
	}
	n := float64(f.nEvents)
	b.ReportMetric(float64(exhibitBytes)/n, "exhibit-B/event")
	b.ReportMetric(float64(f.rawSize)/float64(exhibitBytes), "raw/exhibit-reduction")
}

// ---------------------------------------------------------------------
// P1 — archival package ingest, fixity verification, and migration.

func BenchmarkArchiveIngestVerify(b *testing.B) {
	ref := rivetReference(b, 11, 1000)
	reg := envcapture.StandardRegistry()
	_, cur, next := envcapture.StandardPlatforms()
	env, err := envcapture.Capture(reg, "capsule", cur, envcapture.PkgRef{Name: "recast-backend", Version: "0.7"})
	if err != nil {
		b.Fatal(err)
	}
	envData, err := env.Encode()
	if err != nil {
		b.Fatal(err)
	}
	files := map[string][]byte{
		"analysis/reference.yoda": ref,
		"env/manifest.json":       envData,
		"docs/README.md":          []byte("# capsule\n"),
	}
	var upgrades int
	for i := 0; i < b.N; i++ {
		a := archive.New()
		id, err := a.Ingest(archive.Metadata{
			Title: "bench capsule", Creator: "daspos",
			Level: datamodel.DPHEPLevel3, EnvManifest: "env/manifest.json",
		}, files)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.VerifyPackage(id); err != nil {
			b.Fatal(err)
		}
		plan := envcapture.PlanMigration(reg, env, next)
		if !plan.OK() {
			b.Fatal("migration blocked")
		}
		upgrades = len(plan.Upgrades)
	}
	b.ReportMetric(float64(upgrades), "migration-upgrades")
}

// ---------------------------------------------------------------------
// Trigger rates: the online selection's accept fractions per process, a
// derived figure for the workflow substrate.

func BenchmarkTriggerRates(b *testing.B) {
	f := sharedFixtures(b)
	full := sim.NewFullSim(f.det, 6)
	gens := map[string]generator.Generator{
		"minbias": generator.NewMinBias(generator.DefaultConfig(6)),
		"zmumu":   generator.NewDrellYanZ(generator.DefaultConfig(6)),
	}
	samples := make(map[string][]*sim.Event)
	for name, g := range gens {
		for i := 0; i < 64; i++ {
			samples[name] = append(samples[name], full.Simulate(g.Generate()))
		}
	}
	var zFrac, mbFrac float64
	for i := 0; i < b.N; i++ {
		for name, sample := range samples {
			trg := trigger.New(trigger.StandardMenu(), f.det)
			accepted := 0
			for _, se := range sample {
				if trg.Evaluate(se).Accepted {
					accepted++
				}
			}
			frac := float64(accepted) / float64(len(sample))
			if name == "zmumu" {
				zFrac = frac
			} else {
				mbFrac = frac
			}
		}
	}
	b.ReportMetric(zFrac, "z-accept-frac")
	b.ReportMetric(mbFrac, "minbias-accept-frac")
}
