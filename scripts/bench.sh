#!/usr/bin/env sh
# bench.sh — run the performance harness and write BENCH_pipeline.json,
# BENCH_cluster.json, BENCH_recast.json, and BENCH_query.json at the repo
# root. Pass -short for the CI smoke variant (small sample, fewer worker
# counts) and -gate to enforce the acceptance thresholds (CI does):
# allocs/op and scaling for the pipeline, cached-lookup latency, allocs
# per query, and search sublinearity for the read path. Any other
# arguments are forwarded to daspos-bench. The harness refuses a
# multi-worker sweep at GOMAXPROCS=1 (the scaling curve would be fiction);
# pass -allow-single-cpu to override on a one-core box.
set -eu
cd "$(dirname "$0")/.."

echo "==> go run ./cmd/daspos-bench $*"
go run ./cmd/daspos-bench -out BENCH_pipeline.json -cluster-out BENCH_cluster.json -recast-out BENCH_recast.json -query-out BENCH_query.json "$@"

echo "bench: wrote BENCH_pipeline.json, BENCH_cluster.json, BENCH_recast.json, and BENCH_query.json"
