#!/usr/bin/env sh
# bench.sh — run the performance harness and write BENCH_pipeline.json and
# BENCH_cluster.json at the repo root. Pass -short for the CI smoke
# variant (small sample, fewer worker counts) and -gate to enforce the
# allocs/op and scaling acceptance thresholds (CI does); any other
# arguments are forwarded to daspos-bench. The harness refuses a
# multi-worker sweep at GOMAXPROCS=1 (the scaling curve would be fiction);
# pass -allow-single-cpu to override on a one-core box.
set -eu
cd "$(dirname "$0")/.."

echo "==> go run ./cmd/daspos-bench $*"
go run ./cmd/daspos-bench -out BENCH_pipeline.json -cluster-out BENCH_cluster.json -recast-out BENCH_recast.json "$@"

echo "bench: wrote BENCH_pipeline.json, BENCH_cluster.json, and BENCH_recast.json"
