#!/usr/bin/env sh
# bench.sh — run the performance harness and write BENCH_pipeline.json at
# the repo root. Pass -short for the CI smoke variant (small sample, fewer
# worker counts); any other arguments are forwarded to daspos-bench.
set -eu
cd "$(dirname "$0")/.."

echo "==> go run ./cmd/daspos-bench $*"
go run ./cmd/daspos-bench -out BENCH_pipeline.json "$@"

echo "bench: wrote BENCH_pipeline.json"
