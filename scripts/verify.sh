#!/usr/bin/env sh
# verify.sh — the full pre-merge gate: build, vet, and the test suite under
# the race detector. The resilience layer is concurrency-heavy (worker
# pools, circuit breakers, shared fault injectors), so -race is not
# optional here.
set -eu
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go build ./cmd/daspos-bench"
go build -o /dev/null ./cmd/daspos-bench

echo "==> go vet ./..."
go vet ./...

echo "==> daspos-vet ./... (preservation + concurrency invariants)"
go run ./cmd/daspos-vet -budget 60000 ./...

echo "==> go test -race ./..."
go test -race ./...

echo "verify: OK"
