package daspos

// Streaming-architecture integration tests: the full chain on the
// event-flow substrate must produce byte-identical tiers at any worker
// count and any batch size for a fixed seed — the determinism contract
// that makes parallel reprocessing preservation-safe — and must agree
// with a plain sequential loop over the same stage functions.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"daspos/internal/conditions"
	"daspos/internal/datamodel"
	"daspos/internal/detector"
	"daspos/internal/eventflow"
	"daspos/internal/generator"
	"daspos/internal/rawdata"
	"daspos/internal/recast"
	"daspos/internal/reco"
	"daspos/internal/sim"
	"daspos/internal/skim"
	"daspos/internal/trigger"
)

// streamChain is the fixed experimental setup for the determinism tests.
type streamChain struct {
	det  *detector.Detector
	snap reco.Source
	seed uint64
}

func newStreamChain(t testing.TB, seed uint64) *streamChain {
	t.Helper()
	det := detector.Standard()
	db := conditions.NewDB()
	if err := conditions.SeedStandard(db, "t", 1, 100, 10, seed); err != nil {
		t.Fatal(err)
	}
	return &streamChain{det: det, snap: db.Snapshot("t", 1), seed: seed}
}

func prodTrain() skim.Train {
	return skim.Train{
		Name: "prod-train",
		Derivations: []skim.Derivation{
			{
				Name:      "DIMUON",
				Selection: skim.Selection{Name: "dimuon", Cuts: []skim.Cut{{Variable: "n_muons", Op: skim.OpGE, Value: 2}}},
				Slim:      skim.SlimPolicy{KeepTypes: []datamodel.ObjectType{datamodel.ObjMuon}, DropAux: true},
			},
			{
				Name:      "MET",
				Selection: skim.Selection{Name: "met", Cuts: []skim.Cut{{Variable: "met", Op: skim.OpGT, Value: 30}}},
				Slim:      skim.SlimPolicy{MinCandidatePt: 10},
			},
		},
	}
}

// runStreaming drives generation → simulation → trigger → digitization →
// reconstruction → AOD slim → derivation skims on the event-flow
// substrate and returns the serialized bytes of every tier.
func runStreaming(t testing.TB, c *streamChain, events, workers, batchSize int) map[string][]byte {
	t.Helper()
	opts := eventflow.Options{BatchSize: batchSize}
	gen, err := generator.New(generator.ProcDrellYanZ, generator.DefaultConfig(c.seed))
	if err != nil {
		t.Fatal(err)
	}
	full := sim.NewFullSim(c.det, c.seed)
	trg := trigger.New(trigger.StandardMenu(), c.det)

	// Online pipeline: RAW production behind the trigger gate.
	var rawBuf bytes.Buffer
	builder := rawdata.NewWriter(&rawBuf)
	online := eventflow.New(context.Background(), "online", opts)
	hepmcS := eventflow.Source(online, "generate", generator.EventSource(gen, events))
	simS := eventflow.Map(hepmcS, "simulate", workers, full.StageFunc())
	trigS := eventflow.Map(simS, "trigger", 1, func(se *sim.Event) (*sim.Event, bool, error) {
		return se, trg.Evaluate(se).Accepted, nil
	})
	rawS := eventflow.Map(trigS, "digitize", workers, rawdata.DigitizeFunc(1))
	eventflow.Sink(rawS, "event-build", builder.Write)
	if err := online.Wait(); err != nil {
		t.Fatal(err)
	}

	// Offline: RAW → RECO.
	var recoBuf bytes.Buffer
	recoFile, err := datamodel.NewFileWriter(&recoBuf, datamodel.TierRECO)
	if err != nil {
		t.Fatal(err)
	}
	recoPipe := eventflow.New(context.Background(), "reco", opts)
	rawSrc := eventflow.Source(recoPipe, "raw-read", rawdata.NewReader(bytes.NewReader(rawBuf.Bytes())).Read)
	recoS := eventflow.MapWorkers(rawSrc, "reconstruct", workers,
		reco.ParallelStage(c.det, reco.DefaultConfig(), c.snap))
	eventflow.Sink(recoS, "reco-write", recoFile.Write)
	if err := recoPipe.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := recoFile.Close(); err != nil {
		t.Fatal(err)
	}

	// RECO → AOD.
	var aodBuf bytes.Buffer
	aodFile, err := datamodel.NewFileWriter(&aodBuf, datamodel.TierAOD)
	if err != nil {
		t.Fatal(err)
	}
	recoRead, err := datamodel.NewFileReader(bytes.NewReader(recoBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	aodPipe := eventflow.New(context.Background(), "aod", opts)
	aodSrc := eventflow.Source(aodPipe, "reco-read", recoRead.Read)
	aodS := eventflow.Map(aodSrc, "slim", workers, func(e *datamodel.Event) (*datamodel.Event, bool, error) {
		return e.SlimToAOD(), true, nil
	})
	eventflow.Sink(aodS, "aod-write", aodFile.Write)
	if err := aodPipe.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := aodFile.Close(); err != nil {
		t.Fatal(err)
	}

	// AOD → derivation skims, a sequential fan-out sink.
	train := prodTrain()
	skimBufs := make([]bytes.Buffer, len(train.Derivations))
	skimFiles := make([]*datamodel.FileWriter, len(train.Derivations))
	for i := range train.Derivations {
		fw, err := datamodel.NewFileWriter(&skimBufs[i], datamodel.TierDerived)
		if err != nil {
			t.Fatal(err)
		}
		skimFiles[i] = fw
	}
	aodRead, err := datamodel.NewFileReader(bytes.NewReader(aodBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	skimPipe := eventflow.New(context.Background(), "train", opts)
	skimSrc := eventflow.Source(skimPipe, "aod-read", aodRead.Read)
	eventflow.Sink(skimSrc, "derive", func(e *datamodel.Event) error {
		for i := range train.Derivations {
			derived, keep, err := train.Derivations[i].Apply(e)
			if err != nil {
				return err
			}
			if keep {
				if err := skimFiles[i].Write(derived); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err := skimPipe.Wait(); err != nil {
		t.Fatal(err)
	}
	out := map[string][]byte{
		"raw":  rawBuf.Bytes(),
		"reco": recoBuf.Bytes(),
		"aod":  aodBuf.Bytes(),
	}
	for i, d := range train.Derivations {
		if err := skimFiles[i].Close(); err != nil {
			t.Fatal(err)
		}
		out["skim."+d.Name] = skimBufs[i].Bytes()
	}
	return out
}

// runSequential produces the same tiers with plain loops — no eventflow,
// no goroutines — as the semantic reference the pipeline must match.
func runSequential(t testing.TB, c *streamChain, events int) map[string][]byte {
	t.Helper()
	gen, err := generator.New(generator.ProcDrellYanZ, generator.DefaultConfig(c.seed))
	if err != nil {
		t.Fatal(err)
	}
	full := sim.NewFullSim(c.det, c.seed)
	trg := trigger.New(trigger.StandardMenu(), c.det)

	var rawBuf bytes.Buffer
	var raws []*rawdata.Event
	for i := 0; i < events; i++ {
		se := full.SimulateSeeded(gen.Generate())
		if !trg.Evaluate(se).Accepted {
			continue
		}
		raws = append(raws, rawdata.Digitize(1, se))
	}
	for _, r := range raws {
		if err := rawdata.WriteEvent(&rawBuf, r); err != nil {
			t.Fatal(err)
		}
	}

	rec := reco.New(c.det)
	var recoEvents, aodEvents []*datamodel.Event
	for _, r := range raws {
		ev, err := rec.Reconstruct(r, c.snap)
		if err != nil {
			t.Fatal(err)
		}
		recoEvents = append(recoEvents, ev)
		aodEvents = append(aodEvents, ev.SlimToAOD())
	}
	var recoBuf, aodBuf bytes.Buffer
	if _, err := datamodel.WriteEvents(&recoBuf, datamodel.TierRECO, recoEvents); err != nil {
		t.Fatal(err)
	}
	if _, err := datamodel.WriteEvents(&aodBuf, datamodel.TierAOD, aodEvents); err != nil {
		t.Fatal(err)
	}

	train := prodTrain()
	out := map[string][]byte{
		"raw":  rawBuf.Bytes(),
		"reco": recoBuf.Bytes(),
		"aod":  aodBuf.Bytes(),
	}
	for _, d := range train.Derivations {
		var derived []*datamodel.Event
		for _, e := range aodEvents {
			de, keep, err := d.Apply(e)
			if err != nil {
				t.Fatal(err)
			}
			if keep {
				derived = append(derived, de)
			}
		}
		var buf bytes.Buffer
		if _, err := datamodel.WriteEvents(&buf, datamodel.TierDerived, derived); err != nil {
			t.Fatal(err)
		}
		out["skim."+d.Name] = buf.Bytes()
	}
	return out
}

func tierDigests(tiers map[string][]byte) map[string]string {
	out := make(map[string]string, len(tiers))
	for name, data := range tiers {
		sum := sha256.Sum256(data)
		out[name] = hex.EncodeToString(sum[:])
	}
	return out
}

func TestStreamingByteIdenticalAcrossWorkerCounts(t *testing.T) {
	const events, seed = 120, 20130517
	c := newStreamChain(t, seed)
	want := tierDigests(runSequential(t, c, events))
	if len(want) != 5 {
		t.Fatalf("reference tiers: %d", len(want))
	}
	for _, cfg := range []struct{ workers, batch int }{
		{1, 32}, {2, 32}, {4, 32}, {8, 32}, {4, 1}, {4, 7}, {2, 256},
	} {
		got := tierDigests(runStreaming(t, c, events, cfg.workers, cfg.batch))
		for tier, digest := range want {
			if got[tier] != digest {
				t.Errorf("workers=%d batch=%d: tier %s digest %s != sequential %s",
					cfg.workers, cfg.batch, tier, got[tier], digest)
			}
		}
	}
}

// BenchmarkPipelineStreaming compares the two architectures over the same
// physics: the pre-refactor whole-slice chain, which materializes every
// tier as a slice and round-trips the serialized bytes between steps
// (encode RAW → decode RAW → encode RECO → decode RECO → encode AOD), and
// the streaming chain, which moves events through one pipeline and writes
// each tier as it passes — no intermediate decode, bounded memory.
func BenchmarkPipelineStreaming(b *testing.B) {
	const events, seed = 150, 99
	c := newStreamChain(b, seed)
	perEvent := func(b *testing.B) {
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*events), "ns/event")
	}

	b.Run("whole-slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gen, err := generator.New(generator.ProcDrellYanZ, generator.DefaultConfig(seed))
			if err != nil {
				b.Fatal(err)
			}
			full := sim.NewFullSim(c.det, seed)
			var raws []*rawdata.Event
			for j := 0; j < events; j++ {
				raws = append(raws, rawdata.Digitize(1, full.SimulateSeeded(gen.Generate())))
			}
			var rawBuf bytes.Buffer
			if err := rawdata.WriteFile(&rawBuf, raws); err != nil {
				b.Fatal(err)
			}
			decoded, err := rawdata.ReadFile(bytes.NewReader(rawBuf.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			rec := reco.New(c.det)
			var recoEvents []*datamodel.Event
			for _, r := range decoded {
				ev, err := rec.Reconstruct(r, c.snap)
				if err != nil {
					b.Fatal(err)
				}
				recoEvents = append(recoEvents, ev)
			}
			var recoBuf bytes.Buffer
			if _, err := datamodel.WriteEvents(&recoBuf, datamodel.TierRECO, recoEvents); err != nil {
				b.Fatal(err)
			}
			_, recoDecoded, err := datamodel.ReadEvents(bytes.NewReader(recoBuf.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			var aod []*datamodel.Event
			for _, e := range recoDecoded {
				aod = append(aod, e.SlimToAOD())
			}
			var aodBuf bytes.Buffer
			if _, err := datamodel.WriteEvents(&aodBuf, datamodel.TierAOD, aod); err != nil {
				b.Fatal(err)
			}
		}
		perEvent(b)
	})

	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("streaming/workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				gen, err := generator.New(generator.ProcDrellYanZ, generator.DefaultConfig(seed))
				if err != nil {
					b.Fatal(err)
				}
				full := sim.NewFullSim(c.det, seed)
				var rawBuf, recoBuf, aodBuf bytes.Buffer
				builder := rawdata.NewWriter(&rawBuf)
				recoFile, err := datamodel.NewFileWriter(&recoBuf, datamodel.TierRECO)
				if err != nil {
					b.Fatal(err)
				}
				aodFile, err := datamodel.NewFileWriter(&aodBuf, datamodel.TierAOD)
				if err != nil {
					b.Fatal(err)
				}
				p := eventflow.New(context.Background(), "chain", eventflow.Options{})
				hepmcS := eventflow.Source(p, "generate", generator.EventSource(gen, events))
				simS := eventflow.Map(hepmcS, "simulate", workers, full.StageFunc())
				rawS := eventflow.Map(simS, "digitize", workers, rawdata.DigitizeFunc(1))
				// Tier tee: write RAW as it passes, one worker because the
				// underlying writer is sequential state.
				rawT := eventflow.Map(rawS, "raw-write", 1, func(e *rawdata.Event) (*rawdata.Event, bool, error) {
					return e, true, builder.Write(e)
				})
				recoS := eventflow.MapWorkers(rawT, "reconstruct", workers,
					reco.ParallelStage(c.det, reco.DefaultConfig(), c.snap))
				recoT := eventflow.Map(recoS, "reco-write", 1, func(e *datamodel.Event) (*datamodel.Event, bool, error) {
					return e, true, recoFile.Write(e)
				})
				aodS := eventflow.Map(recoT, "slim", workers, func(e *datamodel.Event) (*datamodel.Event, bool, error) {
					return e.SlimToAOD(), true, nil
				})
				eventflow.Sink(aodS, "aod-write", aodFile.Write)
				if err := p.Wait(); err != nil {
					b.Fatal(err)
				}
				if err := recoFile.Close(); err != nil {
					b.Fatal(err)
				}
				if err := aodFile.Close(); err != nil {
					b.Fatal(err)
				}
			}
			perEvent(b)
		})
	}
}

func TestFullSimBackendWorkerInvariance(t *testing.T) {
	run := func(workers int) *recast.Result {
		det := detector.Standard()
		db := conditions.NewDB()
		if err := conditions.SeedStandard(db, "t", 1, 10, 10, 1); err != nil {
			t.Fatal(err)
		}
		backend := &recast.FullSimBackend{
			Det: det, CondDB: db, Tag: "t", Run: 1, LuminosityPb: 20000, Workers: workers,
		}
		res, err := backend.Process(
			context.Background(),
			recast.ModelSpec{Process: "zprime", MassGeV: 1000, Events: 40, Seed: 7},
			dimuonSearchRecord(),
		)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(4)
	if seq.Generated != par.Generated || seq.Selected != par.Selected {
		t.Fatalf("selection differs: sequential %d/%d, parallel %d/%d",
			seq.Selected, seq.Generated, par.Selected, par.Generated)
	}
	if seq.Acceptance != par.Acceptance || seq.UpperLimitXsecPb != par.UpperLimitXsecPb {
		t.Fatalf("limits differ: %+v vs %+v", seq, par)
	}
	if len(seq.CutFlow) != len(par.CutFlow) {
		t.Fatalf("cut-flow lengths differ")
	}
	for i := range seq.CutFlow {
		if seq.CutFlow[i] != par.CutFlow[i] {
			t.Fatalf("cut flow differs at step %d: %d vs %d", i, seq.CutFlow[i], par.CutFlow[i])
		}
	}
}
