package daspos

// Multi-node chaos end-to-end: drive a five-node preservation network
// through the failure model the paper's multi-site replication story
// assumes survivable — a dead node, a network partition, a slow site,
// a sustained fault storm on the wire, and replica bit-rot — and prove
// that after the weather clears, anti-entropy repair converges the
// cluster back to 100% fixity, full replication factor, and an archive
// byte-identical to one ingested with no faults at all.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"daspos/internal/archive"
	"daspos/internal/cas"
	"daspos/internal/cluster"
	"daspos/internal/datamodel"
	"daspos/internal/faults"
	"daspos/internal/node"
	"daspos/internal/resilience"
	"daspos/internal/xrand"
)

// chaosCorpus builds the deterministic set of packages both the baseline
// and the cluster ingest, so the two archives are comparable byte for
// byte.
func chaosCorpus(rng *xrand.Rand) []struct {
	meta  archive.Metadata
	files map[string][]byte
} {
	var out []struct {
		meta  archive.Metadata
		files map[string][]byte
	}
	for i := 0; i < 10; i++ {
		files := map[string][]byte{}
		for f := 0; f < 4; f++ {
			buf := make([]byte, 2048+int(rng.Uint64()%4096))
			for j := range buf {
				buf[j] = byte(rng.Uint64())
			}
			files[fmt.Sprintf("data/file-%d.bin", f)] = buf
		}
		files["README"] = []byte(fmt.Sprintf("analysis capsule %d", i))
		out = append(out, struct {
			meta  archive.Metadata
			files map[string][]byte
		}{
			meta: archive.Metadata{
				Title:   fmt.Sprintf("chaos capsule %d", i),
				Creator: "e2e",
				Level:   datamodel.DPHEPLevel3,
			},
			files: files,
		})
	}
	return out
}

func ingestCorpus(t *testing.T, a *archive.Archive, corpus []struct {
	meta  archive.Metadata
	files map[string][]byte
}) []string {
	t.Helper()
	var ids []string
	for _, c := range corpus {
		id, err := a.Ingest(c.meta, c.files)
		if err != nil {
			t.Fatalf("ingest %q: %v", c.meta.Title, err)
		}
		ids = append(ids, id)
	}
	return ids
}

func TestClusterChaosE2E(t *testing.T) {
	ctx := context.Background()
	corpus := chaosCorpus(xrand.New(0xda5905))

	// Fault-free baseline: the ground truth every restored byte is
	// compared against.
	baseline := archive.New()
	ids := ingestCorpus(t, baseline, corpus)

	// --- five-node cluster behind a faulty network ---
	inj := faults.NewNetInjector(42)
	var (
		nodes   []*node.Node
		servers []*httptest.Server
		infos   []cluster.NodeInfo
		hosts   []string
	)
	for i := 0; i < 5; i++ {
		nd := node.New(fmt.Sprintf("site-%d", i), cas.NewMemBackend())
		srv := httptest.NewServer(nd.Handler())
		t.Cleanup(srv.Close)
		nodes = append(nodes, nd)
		servers = append(servers, srv)
		infos = append(infos, cluster.NodeInfo{ID: nd.ID(), URL: srv.URL})
		hosts = append(hosts, srv.Listener.Addr().String())
	}
	cl, err := cluster.New(ctx, cluster.Config{
		Nodes:             infos,
		ReplicationFactor: 3,
		Transport:         &faults.Transport{Inj: inj},
		Retry:             resilience.Policy{MaxAttempts: 6, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond, Jitter: 0.2},
		Breaker:           resilience.BreakerConfig{FailureThreshold: 8, OpenInterval: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	remote := archive.NewWithStore(cas.NewStoreWith(cl))

	// Ingest under a 30% fault storm: nearly every third request on the
	// wire answers 503, and some blob reads flip bits in flight. The
	// retry/quorum machinery must absorb all of it.
	inj.WithErrorRate(0.30).WithCorruptRate(0.05)
	if n, err := archive.ReplicateCtx(ctx, remote, baseline, resilience.Policy{
		MaxAttempts: 8, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond, Jitter: 0.2,
	}); err != nil {
		t.Fatalf("replicating into cluster under faults: %v (copied %d)", err, n)
	} else if n != len(ids) {
		t.Fatalf("replicated %d packages, want %d", n, len(ids))
	}

	// --- chaos proper ---
	// Site 2 dies outright (process gone, socket closed).
	servers[2].Close()
	// Site 3 is partitioned away.
	inj.Partition(hosts[3])
	// Site 4 turns slow.
	inj.SetSlow(hosts[4], faults.SlowSpec{Base: 2 * time.Millisecond, Jitter: 3 * time.Millisecond})
	// Bit-rot eats one replica of the first few digests on site 0.
	rotted := 0
	for _, d := range nodes[0].Backend().Digests() {
		if rotted == 6 {
			break
		}
		if err := nodes[0].Corrupt(d); err != nil {
			t.Fatal(err)
		}
		rotted++
	}

	// Sweeps during the storm make progress (repairing what they can
	// reach) but cannot converge; that is expected and not asserted.
	_, _ = cl.Sweep(ctx)
	_, _ = cl.Sweep(ctx)

	// Reads must still serve verified bytes while 2/5 of the sites are
	// dark and the wire is stormy.
	if got, err := remote.Fetch(ids[0], "README"); err != nil {
		t.Fatalf("read during chaos: %v", err)
	} else if !bytes.Equal(got, []byte("analysis capsule 0")) {
		t.Fatal("read during chaos returned wrong bytes")
	}

	// --- the weather clears ---
	inj.HealAll()
	inj.ClearSlow(hosts[4])
	inj.WithErrorRate(0).WithCorruptRate(0)
	// The dead site is rebuilt from scratch: same identity, empty disk,
	// new address. Placement is unchanged (same ID on the ring), so
	// anti-entropy re-replicates everything it owned.
	cl.RemoveNode("site-2")
	rebuilt := node.New("site-2", cas.NewMemBackend())
	srv := httptest.NewServer(rebuilt.Handler())
	t.Cleanup(srv.Close)
	nodes[2] = rebuilt
	if err := cl.AddNode(cluster.NodeInfo{ID: "site-2", URL: srv.URL}); err != nil {
		t.Fatal(err)
	}

	final, err := cl.SweepUntilConverged(ctx, 25)
	if err != nil {
		t.Fatalf("anti-entropy never converged: %v (%s)", err, final)
	}
	if !final.Converged() {
		t.Fatalf("final sweep not converged: %s", final)
	}

	// 100% fixity through the archive layer's own audit.
	rep := remote.VerifyAll()
	if len(rep.Damaged) != 0 || rep.Healthy != rep.Packages {
		t.Fatalf("post-repair fixity audit: %d/%d healthy, damaged=%v", rep.Healthy, rep.Packages, rep.Damaged)
	}

	// Full replication factor: every blob on exactly RF nodes.
	perDigest := map[string]int{}
	total := 0
	for _, nd := range nodes {
		for _, d := range nd.Backend().Digests() {
			perDigest[d]++
			total++
		}
	}
	for d, n := range perDigest {
		if n != 3 {
			t.Fatalf("digest %s on %d nodes after repair, want 3", d[:12], n)
		}
	}
	if want := len(perDigest) * 3; total != want {
		t.Fatalf("cluster holds %d replicas, want %d", total, want)
	}

	// Byte-identical to the fault-free archive.
	for i, id := range ids {
		pkg, ok := remote.Get(id)
		if !ok {
			t.Fatalf("package %d (%s) missing from cluster archive", i, id)
		}
		for _, f := range pkg.Files {
			got, err := remote.Fetch(id, f.Path)
			if err != nil {
				t.Fatalf("fetch %s/%s: %v", id, f.Path, err)
			}
			want, err := baseline.Fetch(id, f.Path)
			if err != nil {
				t.Fatalf("baseline fetch %s/%s: %v", id, f.Path, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s/%s differs from fault-free baseline", id, f.Path)
			}
		}
	}
}
