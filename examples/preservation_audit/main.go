// Preservation audit: the paper's risk catalogue, exercised end to end.
//
// Runs a processing workflow with full provenance capture, then audits the
// three failure modes the workshop identified: lost parentage in derived
// datasets (§3.2), bit rot in the archive, and platform drift under the
// captured software environment. Ends with the Appendix A maturity
// assessment across the built-in experiment profiles.
//
// Run with: go run ./examples/preservation_audit
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"daspos/internal/archive"
	"daspos/internal/datamodel"
	"daspos/internal/envcapture"
	"daspos/internal/interview"
	"daspos/internal/provenance"
	"daspos/internal/workflow"
)

func main() {
	log.SetFlags(0)

	// 1. A three-step workflow with provenance capture.
	fmt.Println("== 1. run a chain with external provenance capture ==")
	prov := provenance.NewStore()
	wf := demoWorkflow()
	res, err := wf.Execute(context.Background(), map[string]*workflow.Artifact{
		"raw": {Name: "raw", Tier: "RAW", Events: 1000, Data: bytes.Repeat([]byte("raw"), 4000)},
	}, prov)
	if err != nil {
		log.Fatal(err)
	}
	audit := prov.Audit()
	fmt.Printf("captured %d provenance records; complete chains: %.0f%%\n",
		audit.Records, 100*audit.CompleteFraction())

	// 2. Failure mode 1: the processing system did not retain parentage.
	fmt.Println("\n== 2. failure: parentage not retained (paper §3.2) ==")
	lossy := mustReload(prov)
	dropped := lossy.ForgetEveryNth(2)
	after := lossy.Audit()
	fmt.Printf("dropped %d intermediate records -> complete chains fall to %.0f%%\n",
		dropped, 100*after.CompleteFraction())
	fmt.Printf("the external store still has them: %.0f%% with full capture\n",
		100*prov.Audit().CompleteFraction())

	// 3. Failure mode 2: bit rot in the archive, caught by fixity.
	fmt.Println("\n== 3. failure: bit rot on archival media ==")
	store := archive.New()
	files := map[string][]byte{}
	for name, a := range res.Artifacts {
		files["data/"+name] = a.Data
	}
	var provBuf bytes.Buffer
	if err := prov.WriteJSON(&provBuf); err != nil {
		log.Fatal(err)
	}
	files["prov/chain.json"] = provBuf.Bytes()
	id, err := store.Ingest(archive.Metadata{
		Title: "audited chain", Creator: "daspos",
		Level: datamodel.DPHEPLevel3, Provenance: "prov/chain.json",
	}, files)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ingested package %s; initial fixity: %v\n", id[:12], store.VerifyPackage(id) == nil)
	pkg, _ := store.Get(id)
	if err := store.CorruptBlob(pkg.Files[0].Digest); err != nil {
		log.Fatal(err)
	}
	if err := store.VerifyPackage(id); err != nil {
		fmt.Printf("scheduled audit detects the damage: %v\n", err)
	} else {
		log.Fatal("bit rot went undetected")
	}

	// 4. Failure mode 3: platform drift under the captured environment.
	fmt.Println("\n== 4. failure: the computing platform moved on ==")
	reg := envcapture.StandardRegistry()
	old, cur, next := envcapture.StandardPlatforms()
	_ = old
	manifest, err := envcapture.Capture(reg, "audited-chain", cur,
		envcapture.PkgRef{Name: "recast-backend", Version: "0.7"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured environment: %d packages on %s\n", manifest.PackageCount(), manifest.Platform)
	plan := envcapture.PlanMigration(reg, manifest, next)
	fmt.Printf("migration to %s: %d unchanged, %d upgrades, %d blocked\n",
		next, len(plan.Unchanged), len(plan.Upgrades), len(plan.Blocked))
	for _, u := range plan.Upgrades {
		fmt.Printf("  upgrade %s -> %s\n", u.Package, u.NewVersion)
	}
	if plan.OK() {
		migrated, err := envcapture.ApplyMigration(reg, manifest, plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("migrated manifest runs on %s with %d packages\n",
			migrated.Platform, migrated.PackageCount())
	}

	// 5. The maturity assessment across experiments.
	fmt.Println("\n== 5. Appendix A maturity assessment ==")
	fmt.Println(interview.Comparison(interview.StandardProfiles()))
}

func demoWorkflow() *workflow.Workflow {
	pass := func(in, out, tier string) workflow.StepFunc {
		return func(ctx *workflow.Context) error {
			a, err := ctx.Input(in)
			if err != nil {
				return err
			}
			ctx.External("conditions:calo/ecal_scale")
			return ctx.Output(out, tier, a.Events, append(append([]byte(nil), a.Data...), out...))
		}
	}
	return &workflow.Workflow{
		Name:          "audited-chain",
		ConditionsTag: "prod-v1",
		PrimaryInputs: []string{"raw"},
		Steps: []workflow.Step{
			{Name: "reco", Software: "daspos-reco", Version: "3.2.1",
				Inputs: []string{"raw"}, Outputs: []string{"reco"},
				Run: pass("raw", "reco", "RECO")},
			{Name: "slim", Software: "daspos-skim", Version: "1.0",
				Inputs: []string{"reco"}, Outputs: []string{"aod"},
				Run: pass("reco", "aod", "AOD")},
			{Name: "derive", Software: "daspos-skim", Version: "1.0",
				Inputs: []string{"aod"}, Outputs: []string{"skim"},
				Run: pass("aod", "skim", "DERIVED")},
		},
	}
}

func mustReload(s *provenance.Store) *provenance.Store {
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		log.Fatal(err)
	}
	cp, err := provenance.ReadJSON(bytes.NewReader(buf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	return cp
}
