// Quickstart: the full DASPOS loop in one file.
//
// Generate Monte Carlo events, run a preserved (RIVET-style) analysis over
// them, archive the result as a capsule with reference data, then — as a
// future user would — load the capsule back from the archive, re-run the
// analysis on an independent sample, and validate the re-run against the
// archived reference.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"daspos/internal/archive"
	"daspos/internal/core"
	"daspos/internal/datamodel"
	"daspos/internal/generator"
	"daspos/internal/leshouches"
	"daspos/internal/rivet"
)

func main() {
	log.SetFlags(0)

	// 1. Run the preserved analysis over freshly generated events.
	fmt.Println("== 1. original analysis run ==")
	run, err := rivet.NewRun("DASPOS_2013_ZMUMU")
	if err != nil {
		log.Fatal(err)
	}
	gen := generator.NewDrellYanZ(generator.DefaultConfig(1))
	for i := 0; i < 3000; i++ {
		if err := run.Process(gen.Generate()); err != nil {
			log.Fatal(err)
		}
	}
	if err := run.Finalize(); err != nil {
		log.Fatal(err)
	}
	mass := run.Histograms()[0]
	fmt.Printf("dimuon mass peak at %.1f GeV from %d events\n",
		mass.BinCenter(mass.MaxBin()), mass.Entries)

	// 2. Export the reference data and build the capsule.
	fmt.Println("\n== 2. build and archive the capsule ==")
	reference, err := run.ExportYODA()
	if err != nil {
		log.Fatal(err)
	}
	capsule := &core.Capsule{
		Title:       "Quickstart Z capsule",
		Creator:     "you",
		Description: "Z->mumu lineshape preserved by the quickstart example",
		Analysis: &leshouches.AnalysisRecord{
			Name: "QUICKSTART_ZMUMU",
			Objects: []leshouches.ObjectDefinition{
				{Name: "mu", Type: datamodel.ObjMuon, MinPt: 20, MaxAbsEta: 2.4},
			},
			Selection: []leshouches.Cut{
				{Variable: "count:mu", Op: ">=", Value: 2},
				{Variable: "os_pair:mu", Op: "==", Value: 1},
			},
			Background:     100,
			ObservedEvents: 103,
		},
		Reference: reference,
	}
	store := archive.New()
	id, err := capsule.Ingest(store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived as package %s (%d payload files)\n", id[:12], 3)

	// 3. Decades later: load the capsule and re-run on independent MC.
	fmt.Println("\n== 3. reload and validate a re-run ==")
	loaded, err := core.FromArchive(store, id)
	if err != nil {
		log.Fatal(err)
	}
	rerun, err := rivet.NewRun("DASPOS_2013_ZMUMU")
	if err != nil {
		log.Fatal(err)
	}
	gen2 := generator.NewDrellYanZ(generator.DefaultConfig(999)) // independent sample
	for i := 0; i < 3000; i++ {
		if err := rerun.Process(gen2.Generate()); err != nil {
			log.Fatal(err)
		}
	}
	if err := rerun.Finalize(); err != nil {
		log.Fatal(err)
	}
	outcomes, err := loaded.ValidateRerun(rerun.Histograms())
	if err != nil {
		log.Fatal(err)
	}
	allOK := true
	for _, o := range outcomes {
		status := "COMPATIBLE"
		if o.MissingReference {
			status = "NO REFERENCE"
			allOK = false
		} else if !o.Chi2.Compatible(0.01) {
			status = "INCOMPATIBLE"
			allOK = false
		}
		fmt.Printf("%-28s chi2/ndf=%.2f p=%.3f  %s\n",
			o.Histogram, o.Chi2.Reduced(), o.Chi2.PValue, status)
	}
	if !allOK {
		log.Fatal("validation failed: the preserved analysis did not reproduce")
	}
	fmt.Println("\nthe archived analysis reproduces on independent Monte Carlo ✔")
}
