// Recast reinterpretation: the theorist's use case from §2.3-2.4.
//
// An experiment subscribes its preserved high-mass dimuon search to a
// RECAST service. A theorist submits a Z′ model over HTTP; the experiment
// approves; the request is processed twice — once by the heavyweight
// full-simulation back end and once by the RIVET bridge — and the limits
// and costs of the two tiers are compared (the DASPOS interoperability
// project from the paper's conclusions).
//
// Run with: go run ./examples/recast_reinterpret
package main

import (
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"daspos/internal/bridge"
	"daspos/internal/conditions"
	"daspos/internal/datamodel"
	"daspos/internal/detector"
	"daspos/internal/leshouches"
	"daspos/internal/recast"
)

func main() {
	log.SetFlags(0)

	record := &leshouches.AnalysisRecord{
		Name:        "GPD_2013_DIMUON_HIGHMASS",
		Description: "High-mass opposite-sign dimuon search, 20/fb",
		Objects: []leshouches.ObjectDefinition{
			{Name: "sig_muon", Type: datamodel.ObjMuon, MinPt: 30, MaxAbsEta: 2.4},
		},
		Selection: []leshouches.Cut{
			{Variable: "count:sig_muon", Op: ">=", Value: 2},
			{Variable: "os_pair:sig_muon", Op: "==", Value: 1},
			{Variable: "inv_mass:sig_muon", Op: ">", Value: 400},
		},
		Background:     4.2,
		ObservedEvents: 5,
	}
	model := recast.ModelSpec{Process: "zprime", MassGeV: 1200, Events: 250, Seed: 21}

	// Tier 1: the full-simulation back end over HTTP, with the approval
	// workflow the paper's "closed system" requires.
	fmt.Println("== full-simulation back end (over HTTP) ==")
	det := detector.Standard()
	db := conditions.NewDB()
	if err := conditions.SeedStandard(db, "prod", 1, 10, 10, 1); err != nil {
		log.Fatal(err)
	}
	fullSvc := recast.NewService(&recast.FullSimBackend{
		Det: det, CondDB: db, Tag: "prod", Run: 1, LuminosityPb: 20000,
	})
	mustSubscribe(fullSvc, record)
	srv := httptest.NewServer(fullSvc.Handler())
	defer srv.Close()

	theorist := &recast.Client{BaseURL: srv.URL}
	experiment := &recast.Client{BaseURL: srv.URL, Experiment: true}
	req, err := theorist.Submit("GPD_2013_DIMUON_HIGHMASS", "theorist@ippp", "Z' coupling scan", model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s; awaiting experiment approval...\n", req.ID)
	if err := experiment.Approve(req.ID); err != nil {
		log.Fatal(err)
	}
	t0 := time.Now()
	done, err := experiment.ProcessRequest(req.ID)
	if err != nil {
		log.Fatal(err)
	}
	fullDur := time.Since(t0)
	printResult(done.Result, fullDur)

	// Tier 2: the RIVET bridge, in-process.
	fmt.Println("\n== RIVET-bridge back end ==")
	bridgeSvc := recast.NewService(&bridge.RivetBackend{LuminosityPb: 20000})
	mustSubscribe(bridgeSvc, record)
	breq, err := bridgeSvc.Submit("GPD_2013_DIMUON_HIGHMASS", "theorist@ippp", "same model", model)
	if err != nil {
		log.Fatal(err)
	}
	if err := bridgeSvc.Approve(breq.ID); err != nil {
		log.Fatal(err)
	}
	t1 := time.Now()
	bdone, err := bridgeSvc.Process(breq.ID)
	if err != nil {
		log.Fatal(err)
	}
	bridgeDur := time.Since(t1)
	printResult(bdone.Result, bridgeDur)

	// Agreement and cost.
	fmt.Println("\n== tier comparison (experiment R3) ==")
	agr := bridge.CompareResults(done.Result, bdone.Result)
	fmt.Printf("acceptance: fullsim %.3f vs bridge %.3f (Δ = %.1fσ)\n",
		agr.FullAcceptance, agr.BridgeAcceptance, agr.DeltaSigma)
	fmt.Printf("wall-clock: fullsim %v vs bridge %v (%.0fx faster)\n",
		fullDur.Round(time.Millisecond), bridgeDur.Round(time.Millisecond),
		float64(fullDur)/float64(bridgeDur))
	if agr.Discrepant {
		fmt.Println("tiers DISAGREE: detector effects matter for this analysis")
	} else {
		fmt.Println("tiers agree within statistics: the light tier suffices here")
	}
}

func mustSubscribe(svc *recast.Service, record *leshouches.AnalysisRecord) {
	if err := svc.Subscribe(recast.Subscription{
		Name: record.Name, Description: record.Description, Record: record,
	}); err != nil {
		log.Fatal(err)
	}
}

func printResult(r *recast.Result, dur time.Duration) {
	fmt.Printf("back end %s finished in %v:\n", r.BackEnd, dur.Round(time.Millisecond))
	fmt.Printf("  cut flow %v -> acceptance %.3f\n", r.CutFlow, r.Acceptance)
	fmt.Printf("  95%% CL: %.2f signal events, %.4g pb\n", r.UpperLimitEvents, r.UpperLimitXsecPb)
}
