// Masterclass: the outreach path of the paper's §2.1-2.2.
//
// Run collision-like events through the full chain (simulation, raw data,
// reconstruction), convert the RECO output to the simplified Level 2
// format with the common converter, bundle an ig-like exhibit file, and
// run the Z-path master class a student would perform on it. Finishes by
// printing the experiment's Table 1 outreach profile.
//
// Run with: go run ./examples/masterclass
package main

import (
	"bytes"
	"fmt"
	"log"

	"daspos/internal/conditions"
	"daspos/internal/detector"
	"daspos/internal/generator"
	"daspos/internal/outreach"
	"daspos/internal/rawdata"
	"daspos/internal/reco"
	"daspos/internal/sim"
)

func main() {
	log.SetFlags(0)

	// 1. Produce RECO events through the real chain.
	fmt.Println("== 1. produce the classroom sample ==")
	det := detector.Standard()
	db := conditions.NewDB()
	if err := conditions.SeedStandard(db, "prod", 1, 10, 10, 3); err != nil {
		log.Fatal(err)
	}
	full := sim.NewFullSim(det, 3)
	rec := reco.New(det)
	snap := db.Snapshot("prod", 1)
	gen := generator.NewDrellYanZ(generator.DefaultConfig(3))

	conv := outreach.NewConverter(det)
	var sample []*outreach.SimplifiedEvent
	const events = 150
	for i := 0; i < events; i++ {
		raw := rawdata.Digitize(1, full.Simulate(gen.Generate()))
		ev, err := rec.Reconstruct(raw, snap)
		if err != nil {
			log.Fatal(err)
		}
		sample = append(sample, conv.Convert(ev))
	}
	fmt.Printf("converted %d events to the simplified format\n", len(sample))

	// 2. Bundle the ig-like exhibit (geometry + events in one zip).
	var exhibit bytes.Buffer
	if err := outreach.WriteExhibit(&exhibit, det, sample); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exhibit file: %d bytes (geometry + %d events)\n", exhibit.Len(), len(sample))

	// 3. A classroom opens the exhibit and runs the Z path.
	fmt.Println("\n== 2. the classroom runs the Z path ==")
	_, classroomEvents, err := outreach.ReadExhibit(bytes.NewReader(exhibit.Bytes()), int64(exhibit.Len()))
	if err != nil {
		log.Fatal(err)
	}
	zpath, ok := outreach.MasterClassByName("z-path")
	if !ok {
		log.Fatal("z-path master class missing")
	}
	fmt.Println(zpath.Documentation)
	res, err := zpath.Run(classroomEvents)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevents used: %d\n%s: %.1f\n", res.EventsUsed, res.EstimateLabel, res.Estimate)

	// 4. The LHCb exercise: D lifetime from preprocessed candidates.
	fmt.Println("\n== 3. the LHCb D-lifetime master class ==")
	dgen := generator.NewDZero(generator.DefaultConfig(4))
	var candidates []outreach.DecayCandidate
	for i := 0; i < 2000; i++ {
		candidates = append(candidates, outreach.ConvertTruth(dgen.Generate())...)
	}
	dlife, _ := outreach.DecayMasterClassByName("d-lifetime")
	dres, err := dlife.Run(candidates)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d candidates -> %s: %.3f (published: 0.410 ps)\n",
		dres.EventsUsed, dres.EstimateLabel, dres.Estimate)

	// 5. The Table 1 context for these exercises.
	fmt.Println("\n== 4. where this sits in the outreach landscape (Table 1) ==")
	fmt.Println(outreach.Table1())
}
