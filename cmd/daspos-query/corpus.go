package main

import (
	"fmt"

	"daspos/internal/catalog"
	"daspos/internal/hepdata"
	"daspos/internal/xrand"
)

// Deterministic demo corpus: the same (seed, i) always yields the same
// record or dataset, so demo runs, bench runs, and a served corpus agree
// on keys and validators.

var (
	corpusReactions = []string{
		"P P --> Z0 X", "P P --> W+ X", "P P --> ZPRIME X", "P P --> H0 X",
		"P P --> TOP TOPBAR X", "P P --> JET JET X",
	}
	corpusObservables = []string{"DSIG/DPT", "SIG", "DSIG/DM", "DSIG/DETA", "EFF"}
	corpusCollabs     = []string{"DASPOS-GPD", "ATLAS", "CMS", "LHCB"}
	corpusTiers       = []string{"RAW", "RECO", "AOD", "SKIM"}
)

func demoRecord(seed uint64, i int) *hepdata.Record {
	rng := xrand.New(seed ^ uint64(i)*0x9e3779b97f4a7c15)
	ntab := 1 + int(rng.Uint64n(3))
	rec := &hepdata.Record{
		InspireID:     fmt.Sprintf("%07d", 1200000+i),
		Title:         fmt.Sprintf("Measurement %d of %s production at 8 TeV", i, []string{"boson", "dimuon", "dijet", "top-quark"}[i%4]),
		Collaboration: corpusCollabs[i%len(corpusCollabs)],
		Year:          2008 + i%12,
		Abstract:      "Differential cross sections measured with the preserved analysis chain.",
	}
	for t := 0; t < ntab; t++ {
		tab := hepdata.Table{
			Name:        fmt.Sprintf("Table%d", t+1),
			XHeader:     "PT [GEV]",
			YHeader:     "DSIG/DPT [PB/GEV]",
			Reactions:   []string{corpusReactions[(i+t)%len(corpusReactions)]},
			Observables: []string{corpusObservables[(i+t)%len(corpusObservables)]},
		}
		npts := 4 + int(rng.Uint64n(12))
		for p := 0; p < npts; p++ {
			lo := float64(p * 10)
			y := 100 / (1 + lo/25)
			tab.Points = append(tab.Points, hepdata.Point{
				XLo: lo, X: lo + 5, XHi: lo + 10, Y: y,
				Errors: []hepdata.Uncertainty{
					{Label: "stat", Plus: y * 0.03, Minus: y * 0.03},
					{Label: "sys", Plus: y * 0.05, Minus: y * 0.04},
				},
			})
		}
		rec.Tables = append(rec.Tables, tab)
	}
	return rec
}

func demoDataset(seed uint64, i int) *catalog.Dataset {
	_ = seed
	tier := corpusTiers[i%len(corpusTiers)]
	return &catalog.Dataset{
		Name:              fmt.Sprintf("/mc8tev/sample%03d/%s/v%d", i, tier, 1+i%3),
		Tier:              tier,
		ProcessingVersion: fmt.Sprintf("v%d", 1+i%3),
		Metadata: map[string]string{
			"campaign":  fmt.Sprintf("mc%d", 20+i%4),
			"generator": []string{"pythia8", "herwig", "sherpa"}[i%3],
		},
	}
}
