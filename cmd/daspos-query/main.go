// Command daspos-query serves the preserved-analysis read path: indexed
// search, cached conditional-GET record serving, and streamed export over
// the HepData archive and the dataset catalog.
//
// Usage:
//
//	daspos-query serve [-addr :8090] [-cache N] [-page N] [-max-page N]
//	                   [-records N] [-datasets N] [-seed S]
//	daspos-query demo  [-records N] [-datasets N] [-reads N] [-seed S]
//	                   [-hot-fraction F]
//
// serve starts the HTTP query front end with a deterministic demo corpus
// published (use -records 0 for an empty server and POST your own):
// GET /records?q=... searches the inverted index, GET /records/{id} serves
// cached record bodies with strong ETags, /export streams result sets
// without buffering them, and GET /status reports index and cache
// counters. demo runs a seeded read mix against an in-process server and
// prints the stage report — cache hits, misses, coalesced fills, 304s.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"daspos/internal/catalog"
	"daspos/internal/faults"
	"daspos/internal/hepdata"
	"daspos/internal/queryserve"
	"daspos/internal/texttable"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daspos-query: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: daspos-query {serve|demo} [flags]")
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "demo":
		demo(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q", os.Args[1])
	}
}

func newServer(cacheSize, page, maxPage, records, datasets int, seed uint64) *queryserve.Server {
	archive := hepdata.NewArchive()
	cat := catalog.New()
	srv, err := queryserve.NewServer(queryserve.Config{
		Archive:     archive,
		Catalog:     cat,
		CacheSize:   cacheSize,
		DefaultPage: page,
		MaxPage:     maxPage,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < records; i++ {
		if _, err := srv.PublishRecord(demoRecord(seed, i)); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < datasets; i++ {
		if _, err := srv.PublishDataset(demoDataset(seed, i)); err != nil {
			log.Fatal(err)
		}
	}
	return srv
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8090", "listen address")
	cacheSize := fs.Int("cache", 4096, "record cache capacity (entries)")
	page := fs.Int("page", 100, "default page size")
	maxPage := fs.Int("max-page", 1000, "page size ceiling")
	records := fs.Int("records", 200, "demo records to publish at startup (0 = start empty)")
	datasets := fs.Int("datasets", 60, "demo datasets to publish at startup")
	seed := fs.Uint64("seed", 11, "demo corpus seed")
	_ = fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := newServer(*cacheSize, *page, *maxPage, *records, *datasets, *seed)
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(sctx)
	}()
	st := srv.Stats()
	log.Printf("query front end on %s (%d records, %d datasets, %d index terms, cache %d)",
		*addr, st.Records, st.Datasets, st.IndexTerms, *cacheSize)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}

func demo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	records := fs.Int("records", 400, "demo records to publish")
	datasets := fs.Int("datasets", 80, "demo datasets to publish")
	reads := fs.Int("reads", 2000, "reads in the mixed workload")
	seed := fs.Uint64("seed", 11, "corpus and schedule seed")
	hotFraction := fs.Float64("hot-fraction", 0.85, "fraction of lookups hitting the hot set")
	_ = fs.Parse(args)

	srv := newServer(4096, 100, 1000, *records, *datasets, *seed)
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	// The read mix: hot-key lookups over a small working set, a cold tail,
	// plus searches, paginated scans, and export streams.
	var hot, cold []string
	for i := 0; i < *records; i++ {
		id := demoRecord(*seed, i).ID()
		if i < 8 {
			hot = append(hot, id)
		} else {
			cold = append(cold, id)
		}
	}
	keys := faults.ReadSchedule(*seed, faults.ReadShape{
		HotKeys: hot, ColdKeys: cold, HotFraction: *hotFraction,
	}, *reads)

	client := hts.Client()
	etags := make(map[string]string) // warm validators for conditional GETs
	var mu sync.Mutex
	get := func(path, validator string) (int, string) {
		req, err := http.NewRequest("GET", hts.URL+path, nil)
		if err != nil {
			log.Fatal(err)
		}
		if validator != "" {
			req.Header.Set("If-None-Match", validator)
		}
		resp, err := client.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 4096)
		for {
			if _, err := resp.Body.Read(buf); err != nil {
				break
			}
		}
		return resp.StatusCode, resp.Header.Get("ETag")
	}

	start := time.Now()
	var wg sync.WaitGroup
	per := len(keys) / 4
	for w := 0; w < 4; w++ {
		part := keys[w*per : (w+1)*per]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, key := range part {
				mu.Lock()
				validator := etags[key]
				mu.Unlock()
				code, etag := get("/records/"+key, validator)
				if code == 200 && etag != "" {
					mu.Lock()
					etags[key] = etag
					mu.Unlock()
				}
				switch i % 50 {
				case 10:
					get("/records?q=reaction:PP-->ZPRIMEX", "")
				case 20:
					get("/records?q=boson+measurement&mode=or&limit=25", "")
				case 30:
					get("/records/"+key+"/export?format=csv", "")
				case 40:
					get("/datasets?tier=AOD", "")
				case 45:
					get("/records?limit=50", "") // paginated scan page
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	st := srv.Stats()
	t := texttable.New("Counter", "Value")
	t.Title = fmt.Sprintf("daspos-query demo: %d reads in %v (%d records, %d datasets)",
		*reads, elapsed.Round(time.Millisecond), st.Records, st.Datasets)
	t.SetAlign(1, texttable.Right)
	t.AddRow("index docs", st.IndexDocs)
	t.AddRow("index terms", st.IndexTerms)
	t.AddRow("record lookups", st.Lookups)
	t.AddRow("searches", st.Searches)
	t.AddRow("pages served", st.Pages)
	t.AddRow("exports streamed", st.Exports)
	t.AddRow("304 not modified", st.NotModified)
	t.AddRow("cache hits", st.Cache.Hits)
	t.AddRow("cache misses", st.Cache.Misses)
	t.AddRow("coalesced fills", st.Cache.Coalesced)
	t.AddRow("evictions", st.Cache.Evictions)
	fmt.Println(t)
	if st.Cache.Hits+st.Cache.Misses > 0 {
		fmt.Printf("cache hit rate: %.1f%%\n",
			100*float64(st.Cache.Hits)/float64(st.Cache.Hits+st.Cache.Misses))
	}
}
