// Command daspos-archive manages preservation-archive files: create builds
// a demonstration archive containing a fully populated analysis capsule,
// verify runs the fixity audit on an existing archive file, and list shows
// the package catalogue.
//
// Usage:
//
//	daspos-archive create -out archive.daspos [-seed S] [-events N]
//	daspos-archive verify -in archive.daspos
//	daspos-archive list -in archive.daspos
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"daspos/internal/archive"
	"daspos/internal/core"
	"daspos/internal/datamodel"
	"daspos/internal/envcapture"
	"daspos/internal/generator"
	"daspos/internal/interview"
	"daspos/internal/leshouches"
	"daspos/internal/provenance"
	"daspos/internal/rivet"
	"daspos/internal/texttable"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daspos-archive: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: daspos-archive {create|verify|list} [flags]")
	}
	switch os.Args[1] {
	case "create":
		create(os.Args[2:])
	case "verify":
		verify(os.Args[2:])
	case "list":
		list(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q", os.Args[1])
	}
}

func create(args []string) {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	out := fs.String("out", "archive.daspos", "output archive file")
	seed := fs.Uint64("seed", 7, "seed for the demonstration capsule's reference run")
	events := fs.Int("events", 2000, "reference-run statistics")
	_ = fs.Parse(args)

	capsule := buildDemoCapsule(*seed, *events)
	a := archive.New()
	id, err := capsule.Ingest(a)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := a.Persist(f); err != nil {
		log.Fatal(err)
	}
	st := a.Stats()
	fmt.Printf("created %s: package %s\n", *out, id)
	fmt.Printf("payload %s in %d blobs (compression %.1fx)\n",
		interview.FormatBytes(st.LogicalBytes), st.Blobs, st.CompressionRatio())
}

func verify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("in", "archive.daspos", "archive file to audit")
	_ = fs.Parse(args)
	a := open(*in)
	rep := a.VerifyAll()
	fmt.Printf("packages: %d, healthy: %d\n", rep.Packages, rep.Healthy)
	for id, msg := range rep.Damaged {
		fmt.Printf("DAMAGED %s: %s\n", id, msg)
	}
	if len(rep.Damaged) > 0 {
		os.Exit(1)
	}
}

func list(args []string) {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	in := fs.String("in", "archive.daspos", "archive file to list")
	_ = fs.Parse(args)
	a := open(*in)
	t := texttable.New("ID", "Title", "Level", "Files", "Bytes")
	t.Title = "Archive catalogue"
	t.SetAlign(3, texttable.Right)
	t.SetAlign(4, texttable.Right)
	for _, meta := range a.List() {
		pkg, _ := a.Get(meta.ID)
		t.AddRow(meta.ID[:12], meta.Title, meta.Level.String(),
			len(pkg.Files), interview.FormatBytes(pkg.TotalBytes()))
	}
	fmt.Println(t)
}

func open(path string) *archive.Archive {
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	a, err := archive.ReadFrom(f)
	if err != nil {
		log.Fatal(err)
	}
	return a
}

// buildDemoCapsule assembles a complete capsule: a Z→µµ reference run, the
// matching Les Houches record, environment manifest, and provenance.
func buildDemoCapsule(seed uint64, events int) *core.Capsule {
	run, err := rivet.NewRun("DASPOS_2013_ZMUMU")
	if err != nil {
		log.Fatal(err)
	}
	g := generator.NewDrellYanZ(generator.DefaultConfig(seed))
	for i := 0; i < events; i++ {
		if err := run.Process(g.Generate()); err != nil {
			log.Fatal(err)
		}
	}
	if err := run.Finalize(); err != nil {
		log.Fatal(err)
	}
	ref, err := run.ExportYODA()
	if err != nil {
		log.Fatal(err)
	}
	reg := envcapture.StandardRegistry()
	_, cur, _ := envcapture.StandardPlatforms()
	env, err := envcapture.Capture(reg, "zmumu", cur, envcapture.PkgRef{Name: "rivet-lite", Version: "1.2"})
	if err != nil {
		log.Fatal(err)
	}
	prov := provenance.NewStore()
	root, err := prov.Add(provenance.Record{
		Output:   provenance.Artifact{Name: "mc.zmumu", Tier: "HEPMC", Events: events},
		Producer: provenance.Producer{Step: "generation", Software: "daspos-generator", Version: "2.0"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := prov.Add(provenance.Record{
		Output:   provenance.Artifact{Name: "zmumu.reference", Tier: "L1", Bytes: int64(len(ref))},
		Producer: provenance.Producer{Step: "rivet-run", Software: "rivet-lite", Version: "1.2"},
		Parents:  []string{root},
	}); err != nil {
		log.Fatal(err)
	}
	return &core.Capsule{
		Title:         "Z lineshape capsule",
		Creator:       "DASPOS",
		Description:   "Preserved Z->mumu lineshape measurement with reference data",
		ConditionsTag: "mc-v1",
		Analysis: &leshouches.AnalysisRecord{
			Name: "GPD_2013_ZMUMU",
			Objects: []leshouches.ObjectDefinition{
				{Name: "mu", Type: datamodel.ObjMuon, MinPt: 20, MaxAbsEta: 2.4},
			},
			Selection: []leshouches.Cut{
				{Variable: "count:mu", Op: ">=", Value: 2},
				{Variable: "os_pair:mu", Op: "==", Value: 1},
				{Variable: "inv_mass:mu", Op: ">", Value: 60},
			},
			Background:     120,
			ObservedEvents: 118,
		},
		Reference:   ref,
		Environment: env,
		Provenance:  prov,
	}
}
