// Command daspos-vet runs the project's preservation-invariant analyzers
// over the module: determinism (no clocks or global RNG in the pipeline
// core), durability (fsync-before-rename commit ordering), errclass (the
// transient/permanent taxonomy survives every wrap), ctxprop (exported
// service entry points are cancellable), and closecheck (write-path
// Close/Flush errors are never discarded).
//
// Usage:
//
//	daspos-vet [-only determinism,durability,...] [-json] [packages]
//
// Packages default to ./.... The exit status is 1 when any finding is
// reported, 2 on a load or usage error — so the tool slots into
// scripts/verify.sh and CI as a blocking stage. A deliberate exemption is
// annotated in the source with the finding's //daspos:<token> comment
// (e.g. //daspos:wallclock-ok on a metrics-only timer).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"daspos/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daspos-vet: ")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Parse()

	all := analysis.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(all, *only)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset, pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	findings := analysis.Run(fset, pkgs, selected)
	if findings == nil {
		findings = []analysis.Finding{} // a clean run is [], not null
	}
	if *asJSON {
		out, err := json.MarshalIndent(findings, "", "  ")
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		fmt.Printf("%s\n", out)
	} else {
		for _, f := range findings {
			fmt.Printf("%s\n    invariant: %s\n", f, f.Why)
		}
	}
	if len(findings) > 0 {
		if !*asJSON {
			log.Printf("%d finding(s) in %d package(s)", len(findings), len(pkgs))
		}
		os.Exit(1)
	}
}

// selectAnalyzers filters the suite by the -only flag.
func selectAnalyzers(all []*analysis.Analyzer, only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return out, nil
}
