// Command daspos-vet runs the project's preservation-invariant analyzers
// over the module: determinism (no clocks or global RNG in the pipeline
// core), durability (fsync-before-rename commit ordering), errclass (the
// transient/permanent taxonomy survives every wrap), ctxprop (exported
// service entry points are cancellable), closecheck (write-path
// Close/Flush errors are never discarded), clonecheck (handed-out data is
// defensively copied), and the concurrency-discipline trio — lockcheck
// (no blocking operations while a mutex is held on the hot path),
// leakcheck (every goroutine has a termination path), and atomiccheck
// (no mixed atomic/plain field access, no copied locks).
//
// Usage:
//
//	daspos-vet [-only determinism,lockcheck,...] [-json] [-budget ms] [packages]
//
// Packages default to ./.... The exit status is 1 when any finding is
// reported (or the -budget wall-time ceiling is blown), 2 on a load or
// usage error — so the tool slots into scripts/verify.sh and CI as a
// blocking stage. A deliberate exemption is annotated in the source with
// the finding's //daspos:<token> comment (e.g. //daspos:lock-ok on a
// write-ahead journal append); a stale annotation is itself a finding.
//
// With -json the output is an object: {"findings": [...], "timing":
// [{"analyzer", "millis"}, ...], "total_millis": n} — the timing block
// is what the CI budget check reads.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"daspos/internal/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daspos-vet: ")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings and per-analyzer timing as a JSON object")
	list := flag.Bool("list", false, "list the analyzers and exit")
	budget := flag.Float64("budget", 0, "fail (exit 1) if total analyzer wall time exceeds this many milliseconds (0 = no ceiling)")
	flag.Parse()

	all := analysis.Analyzers()
	if *list {
		for _, a := range all {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := selectAnalyzers(all, *only)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	fset, pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		log.Print(err)
		os.Exit(2)
	}

	findings, timing := analysis.RunTimed(fset, pkgs, selected)
	if findings == nil {
		findings = []analysis.Finding{} // a clean run is [], not null
	}
	var totalMillis float64
	for _, tm := range timing {
		totalMillis += tm.Millis
	}
	if *asJSON {
		out, err := json.MarshalIndent(struct {
			Findings    []analysis.Finding        `json:"findings"`
			Timing      []analysis.AnalyzerTiming `json:"timing"`
			TotalMillis float64                   `json:"total_millis"`
		}{findings, timing, totalMillis}, "", "  ")
		if err != nil {
			log.Print(err)
			os.Exit(2)
		}
		fmt.Printf("%s\n", out)
	} else {
		for _, f := range findings {
			fmt.Printf("%s\n    invariant: %s\n", f, f.Why)
		}
	}
	fail := false
	if len(findings) > 0 {
		if !*asJSON {
			log.Printf("%d finding(s) in %d package(s)", len(findings), len(pkgs))
		}
		fail = true
	}
	if *budget > 0 && totalMillis > *budget {
		log.Printf("analyzer wall time %.0fms exceeds the %.0fms budget — profile the slow analyzer before it rots the edit loop", totalMillis, *budget)
		for _, tm := range timing {
			log.Printf("    %-12s %8.1fms", tm.Analyzer, tm.Millis)
		}
		fail = true
	}
	if fail {
		os.Exit(1)
	}
}

// selectAnalyzers filters the suite by the -only flag.
func selectAnalyzers(all []*analysis.Analyzer, only string) ([]*analysis.Analyzer, error) {
	if only == "" {
		return all, nil
	}
	byName := make(map[string]*analysis.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			valid := make([]string, len(all))
			for i, a := range all {
				valid[i] = a.Name
			}
			return nil, fmt.Errorf("unknown analyzer %q: valid names are %s", name, strings.Join(valid, ", "))
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only selected no analyzers")
	}
	return out, nil
}
