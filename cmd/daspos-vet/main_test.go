package main

import (
	"strings"
	"testing"

	"daspos/internal/analysis"
)

func TestSelectAnalyzersAll(t *testing.T) {
	all := analysis.Analyzers()
	got, err := selectAnalyzers(all, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(all) {
		t.Fatalf("empty -only selected %d of %d analyzers", len(got), len(all))
	}
}

func TestSelectAnalyzersSubset(t *testing.T) {
	got, err := selectAnalyzers(analysis.Analyzers(), "lockcheck, leakcheck")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "lockcheck" || got[1].Name != "leakcheck" {
		t.Fatalf("wrong selection: %v", got)
	}
}

// An unknown analyzer name must be a hard error that lists every valid
// name — not a silent no-op run that exits 0 and green-lights nothing.
func TestSelectAnalyzersUnknownName(t *testing.T) {
	all := analysis.Analyzers()
	_, err := selectAnalyzers(all, "lockchek")
	if err == nil {
		t.Fatal("unknown analyzer name did not error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"lockchek"`) {
		t.Errorf("error does not name the bad input: %s", msg)
	}
	for _, a := range all {
		if !strings.Contains(msg, a.Name) {
			t.Errorf("error does not list valid analyzer %s: %s", a.Name, msg)
		}
	}
}

func TestSelectAnalyzersEmptySelection(t *testing.T) {
	if _, err := selectAnalyzers(analysis.Analyzers(), " , ,"); err == nil {
		t.Fatal("-only with no names did not error")
	}
}
