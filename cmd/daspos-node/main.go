// Command daspos-node runs one storage node of the preservation network:
// a content-addressed blob store served over the wire protocol documented
// in internal/node. A cluster is just N of these processes plus a client
// (internal/cluster) that places digests across them with consistent
// hashing and keeps them converged with anti-entropy sweeps.
//
// Usage:
//
//	daspos-node -id site-a -listen :7701 [-shards 8]
//
// The node stores blobs in memory, sharded for concurrent access; it is a
// replication endpoint, not an archive of record — durability comes from
// the replication factor across nodes, and the archive layer's ledger
// stays on the coordinating side. SIGINT/SIGTERM drain in-flight requests
// and exit cleanly.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"daspos/internal/cas"
	"daspos/internal/node"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daspos-node: ")
	id := flag.String("id", "", "node identity within the cluster (required)")
	listen := flag.String("listen", ":7701", "listen address")
	shards := flag.Int("shards", 0, "backend shard count (0 = GOMAXPROCS-derived)")
	flag.Parse()
	if *id == "" {
		log.Print("missing required -id")
		flag.Usage()
		os.Exit(2)
	}

	n := node.New(*id, cas.NewShardedBackend(*shards))
	srv := &http.Server{
		Addr:              *listen,
		Handler:           n.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("node %s serving on %s", *id, *listen)

	select {
	case err := <-errc:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	log.Printf("node %s draining (%d blobs held)", *id, n.Blobs())
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Fatalf("shutdown: %v", err)
	}
}
