// Command daspos-display renders an event display: it runs one event
// through the full chain (generate → simulate → digitize → reconstruct),
// converts it to the simplified Level 2 format, and writes the transverse-
// view SVG — the common event display §2.1 of the report argues the
// experiments could share.
//
// Usage:
//
//	daspos-display [-process name] [-seed S] [-event N] [-out display.svg]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"daspos/internal/conditions"
	"daspos/internal/detector"
	"daspos/internal/generator"
	"daspos/internal/outreach"
	"daspos/internal/rawdata"
	"daspos/internal/reco"
	"daspos/internal/sim"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daspos-display: ")
	process := flag.String("process", "drell-yan-z", "physics process to display")
	seed := flag.Uint64("seed", 7, "generation seed")
	skip := flag.Int("event", 0, "skip this many events before the displayed one")
	out := flag.String("out", "display.svg", "output SVG path")
	size := flag.Int("size", 800, "canvas size in pixels")
	flag.Parse()

	procID := 0
	for id := generator.ProcMinBias; id <= generator.ProcZPrime; id++ {
		if generator.ProcessName(id) == *process {
			procID = id
		}
	}
	if procID == 0 {
		log.Fatalf("unknown process %q", *process)
	}
	gen, err := generator.New(procID, generator.DefaultConfig(*seed))
	if err != nil {
		log.Fatal(err)
	}
	det := detector.Standard()
	db := conditions.NewDB()
	if err := conditions.SeedStandard(db, "display", 1, 10, 10, *seed); err != nil {
		log.Fatal(err)
	}
	full := sim.NewFullSim(det, *seed)
	rec := reco.New(det)
	snap := db.Snapshot("display", 1)

	for i := 0; i < *skip; i++ {
		gen.Generate()
	}
	raw := rawdata.Digitize(1, full.Simulate(gen.Generate()))
	ev, err := rec.Reconstruct(raw, snap)
	if err != nil {
		log.Fatal(err)
	}
	simplified := outreach.NewConverter(det).Convert(ev)
	svg := outreach.RenderSVG(det, simplified, outreach.DisplayOptions{SizePx: *size})
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d tracks, %d towers, MET %.1f GeV\n",
		*out, len(simplified.Tracks), len(simplified.Towers), simplified.MET.Pt)
}
