package main

// The read-path section: the query server's cached conditional-GET serving
// and indexed search under a mixed read workload — hot-key lookups over a
// small working set, cold searches, paginated scans, and export streams —
// at several client goroutine counts. Results go to BENCH_query.json:
// per-class latency percentiles, the warm cached-lookup p50 measured at
// GOMAXPROCS=1, allocations per cached query, and the indexed-vs-linear
// search scaling pair the sublinearity gate reads.

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"daspos/internal/catalog"
	"daspos/internal/faults"
	"daspos/internal/hepdata"
	"daspos/internal/queryserve"
)

// queryClassStats is one workload class's latency row.
type queryClassStats struct {
	Requests int     `json:"requests"`
	P50Us    float64 `json:"p50_us"`
	P95Us    float64 `json:"p95_us"`
	P99Us    float64 `json:"p99_us"`
}

// queryMixSection is the mixed workload at one client concurrency.
type queryMixSection struct {
	Goroutines int                        `json:"goroutines"`
	Requests   int                        `json:"requests"`
	DurationMs float64                    `json:"duration_ms"`
	Classes    map[string]queryClassStats `json:"classes"`
}

// querySearchPoint is one corpus size in the scaling pair.
type querySearchPoint struct {
	Records        int     `json:"records"`
	IndexedNsPerOp float64 `json:"indexed_ns_per_op"`
	LinearNsPerOp  float64 `json:"linear_ns_per_op"`
}

// queryReport is the BENCH_query.json document.
type queryReport struct {
	GoVersion          string             `json:"go_version"`
	GOMAXPROCS         int                `json:"gomaxprocs"`
	Records            int                `json:"records"`
	Datasets           int                `json:"datasets"`
	Short              bool               `json:"short"`
	Unix               int64              `json:"generated_unix"`
	CachedLookupP50Us  float64            `json:"cached_lookup_p50_us"`
	CachedLookupP99Us  float64            `json:"cached_lookup_p99_us"`
	CachedLookupAllocs int64              `json:"cached_lookup_allocs_per_op"`
	Mix                []queryMixSection  `json:"mix"`
	SearchScale        []querySearchPoint `json:"search_scale"`
	CacheHits          uint64             `json:"cache_hits"`
	CacheMisses        uint64             `json:"cache_misses"`
	Coalesced          uint64             `json:"coalesced"`
	NotModified        uint64             `json:"not_modified"`
}

// benchQueryRecord builds the i-th record of the bench corpus: fixed shape
// (two tables, eight points each) so per-record serving cost is uniform
// and the latency spread comes from the cache and index, not the corpus.
func benchQueryRecord(i int) *hepdata.Record {
	reactions := []string{"P P --> Z0 X", "P P --> W+ X", "P P --> ZPRIME X",
		"P P --> H0 X", "P P --> TOP TOPBAR X", "P P --> JET JET X"}
	collabs := []string{"DASPOS-GPD", "ATLAS", "CMS", "LHCB"}
	title := fmt.Sprintf("Measurement %d of %s production", i, []string{"boson", "dimuon", "dijet", "top"}[i%4])
	if i < 10 {
		// A fixed-size golden subset regardless of corpus size: the
		// sublinearity gate queries for it, so indexed search cost stays
		// proportional to matches while the linear scan grows with n.
		title += " golden calibration sample"
	}
	rec := &hepdata.Record{
		InspireID:     fmt.Sprintf("%07d", 1500000+i),
		Title:         title,
		Collaboration: collabs[i%len(collabs)],
		Year:          2008 + i%12,
		Abstract:      "Differential cross sections from the preserved chain.",
	}
	for t := 0; t < 2; t++ {
		tab := hepdata.Table{
			Name:        fmt.Sprintf("Table%d", t+1),
			XHeader:     "PT [GEV]",
			YHeader:     "DSIG/DPT [PB/GEV]",
			Reactions:   []string{reactions[(i+t)%len(reactions)]},
			Observables: []string{"DSIG/DPT"},
		}
		for p := 0; p < 8; p++ {
			lo := float64(p * 10)
			y := 100 / (1 + lo/25)
			tab.Points = append(tab.Points, hepdata.Point{
				XLo: lo, X: lo + 5, XHi: lo + 10, Y: y,
				Errors: []hepdata.Uncertainty{{Label: "stat", Plus: y * 0.03, Minus: y * 0.03}},
			})
		}
		rec.Tables = append(rec.Tables, tab)
	}
	return rec
}

func newQueryBenchServer(records, datasets int) (*queryserve.Server, error) {
	archive := hepdata.NewArchive()
	cat := catalog.New()
	srv, err := queryserve.NewServer(queryserve.Config{Archive: archive, Catalog: cat})
	if err != nil {
		return nil, err
	}
	for i := 0; i < records; i++ {
		if _, err := srv.PublishRecord(benchQueryRecord(i)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < datasets; i++ {
		tiers := []string{"RAW", "RECO", "AOD", "SKIM"}
		d := &catalog.Dataset{
			Name:              fmt.Sprintf("/bench/sample%03d/%s/v%d", i, tiers[i%4], 1+i%3),
			Tier:              tiers[i%4],
			ProcessingVersion: fmt.Sprintf("v%d", 1+i%3),
			Metadata:          map[string]string{"campaign": fmt.Sprintf("mc%d", 20+i%4)},
		}
		if _, err := srv.PublishDataset(d); err != nil {
			return nil, err
		}
	}
	return srv, nil
}

// serveOnce runs one request through the handler in process and reports
// its latency. The recorder is per-call: the cost is in the budget, the
// same as any real response writer.
func serveOnce(h http.Handler, method, target, validator string) (time.Duration, int) {
	req := httptest.NewRequest(method, target, nil)
	if validator != "" {
		req.Header.Set("If-None-Match", validator)
	}
	w := httptest.NewRecorder()
	t0 := time.Now()
	h.ServeHTTP(w, req)
	return time.Since(t0), w.Code
}

// runQueryBench drives the read-path section and writes its report.
func runQueryBench(out string, short bool, stamp int64, gate bool) error {
	records, datasets, perClass := 2000, 200, 1500
	goroutines := []int{1, 4, 8, 16}
	scaleSizes := []int{500, 2000}
	if short {
		records, datasets, perClass = 400, 60, 300
		goroutines = []int{1, 4}
		scaleSizes = []int{200, 800}
	}
	srv, err := newQueryBenchServer(records, datasets)
	if err != nil {
		return err
	}
	h := srv.Handler()
	log.Printf("query section: %d records, %d datasets, %d index terms",
		records, datasets, srv.Stats().IndexTerms)

	// The working set: 16 hot keys, everything else cold.
	var hot, cold []string
	for i := 0; i < records; i++ {
		id := benchQueryRecord(i).ID()
		if i < 16 {
			hot = append(hot, id)
		} else {
			cold = append(cold, id)
		}
	}
	searches := []string{
		"reaction:PP-->ZPRIMEX",
		"reaction:PP-->Z0X+obs:DSIG%2FDPT",
		"boson+measurement&mode=or",
		"collab:ATLAS+dimuon",
		"tier:AOD",
	}

	rep := queryReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Records:    records,
		Datasets:   datasets,
		Short:      short,
		Unix:       stamp,
	}

	// Warm cached-lookup latency, single client, GOMAXPROCS=1 — the
	// sub-millisecond headline number. The key is served once to fill the
	// cache, then every timed request is a warm hit.
	serveOnce(h, "GET", "/records/"+hot[0], "")
	oldProcs := runtime.GOMAXPROCS(1)
	var warm []float64
	for i := 0; i < perClass; i++ {
		d, code := serveOnce(h, "GET", "/records/"+hot[i%len(hot)], "")
		if code != 200 {
			runtime.GOMAXPROCS(oldProcs)
			return fmt.Errorf("query bench: warm lookup status %d", code)
		}
		warm = append(warm, float64(d.Nanoseconds())/1000)
	}
	runtime.GOMAXPROCS(oldProcs)
	rep.CachedLookupP50Us = percentile(warm, 50)
	rep.CachedLookupP99Us = percentile(warm, 99)

	// Allocations per cached query, from the standard harness.
	allocRes := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("GET", "/records/"+hot[i%len(hot)], nil)
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != 200 {
				b.Fatalf("status %d", w.Code)
			}
		}
	})
	rep.CachedLookupAllocs = allocRes.AllocsPerOp()

	// The mixed workload at each client concurrency: 60% hot lookups
	// (with warm validators, so revalidation and 304s are in the mix),
	// 20% cold lookups, plus searches, scan pages, and export streams.
	for _, g := range goroutines {
		sec, err := runQueryMix(srv, h, g, perClass, hot, cold, searches)
		if err != nil {
			return err
		}
		rep.Mix = append(rep.Mix, sec)
	}

	// The scaling pair: indexed search against the pinned linear-scan
	// baseline (hepdata.Archive.Search) at two corpus sizes.
	for _, n := range scaleSizes {
		pt, err := querySearchScalePoint(n)
		if err != nil {
			return err
		}
		rep.SearchScale = append(rep.SearchScale, pt)
	}

	st := srv.Stats()
	rep.CacheHits, rep.CacheMisses = st.Cache.Hits, st.Cache.Misses
	rep.Coalesced, rep.NotModified = st.Cache.Coalesced, st.NotModified

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	log.Printf("cached lookup: p50 %.1fus p99 %.1fus (%d allocs/op) at GOMAXPROCS=1",
		rep.CachedLookupP50Us, rep.CachedLookupP99Us, rep.CachedLookupAllocs)
	for _, sec := range rep.Mix {
		hotSt := sec.Classes["hot_lookup"]
		searchSt := sec.Classes["cold_search"]
		log.Printf("mix goroutines=%-2d  %5d reqs in %7.1fms  hot p50 %6.1fus  search p50 %6.1fus",
			sec.Goroutines, sec.Requests, sec.DurationMs, hotSt.P50Us, searchSt.P50Us)
	}
	for _, pt := range rep.SearchScale {
		log.Printf("search scale records=%-5d indexed %8.0f ns/op  linear %9.0f ns/op",
			pt.Records, pt.IndexedNsPerOp, pt.LinearNsPerOp)
	}
	log.Printf("cache: %d hits, %d misses, %d coalesced, %d revalidated 304",
		rep.CacheHits, rep.CacheMisses, rep.Coalesced, rep.NotModified)
	log.Printf("wrote %s", out)

	if gate {
		if err := checkQueryGates(rep); err != nil {
			return fmt.Errorf("query performance gate FAILED:\n%w", err)
		}
		log.Printf("query performance gate passed")
	}
	return nil
}

// runQueryMix replays the mixed read schedule with g client goroutines.
func runQueryMix(srv *queryserve.Server, h http.Handler, g, perClass int, hot, cold, searches []string) (queryMixSection, error) {
	type op struct {
		class     string
		target    string
		validator string
	}
	keys := faults.ReadSchedule(uint64(31+g), faults.ReadShape{
		HotKeys: hot, ColdKeys: cold, HotFraction: 0.75,
	}, perClass*2)
	hotSet := make(map[string]bool, len(hot))
	for _, k := range hot {
		hotSet[k] = true
	}
	// Warm the hot validators so revalidating lookups are in the mix.
	validators := map[string]string{}
	for _, k := range hot {
		req := httptest.NewRequest("GET", "/records/"+k, nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		validators[k] = w.Header().Get("ETag")
	}
	var ops []op
	for i, k := range keys {
		class := "cold_lookup"
		validator := ""
		if hotSet[k] {
			class = "hot_lookup"
			if i%3 == 0 {
				validator = validators[k]
			}
		}
		ops = append(ops, op{class, "/records/" + k, validator})
		switch i % 10 {
		case 3:
			ops = append(ops, op{"cold_search", "/records?q=" + searches[i%len(searches)], ""})
		case 5:
			ops = append(ops, op{"scan_page", fmt.Sprintf("/records?limit=50&cursor=%s",
				queryserve.Cursor{Key: k}.Encode()), ""})
		case 7:
			ops = append(ops, op{"export_stream", "/records/" + k + "/export?format=csv", ""})
		}
	}

	type sample struct {
		class string
		us    float64
	}
	samples := make([][]sample, g)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < g; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(ops); i += g {
				o := ops[i]
				d, code := serveOnce(h, "GET", o.target, o.validator)
				if code >= 400 {
					log.Printf("query bench: %s -> %d", o.target, code)
					continue
				}
				samples[w] = append(samples[w], sample{o.class, float64(d.Nanoseconds()) / 1000})
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	byClass := map[string][]float64{}
	for _, part := range samples {
		for _, s := range part {
			byClass[s.class] = append(byClass[s.class], s.us)
		}
	}
	sec := queryMixSection{
		Goroutines: g,
		Requests:   len(ops),
		DurationMs: float64(elapsed.Microseconds()) / 1000,
		Classes:    map[string]queryClassStats{},
	}
	for class, lats := range byClass {
		sec.Classes[class] = queryClassStats{
			Requests: len(lats),
			P50Us:    percentile(lats, 50),
			P95Us:    percentile(lats, 95),
			P99Us:    percentile(lats, 99),
		}
	}
	return sec, nil
}

// querySearchScalePoint measures indexed search and the linear-scan
// baseline over a fresh corpus of n records.
func querySearchScalePoint(n int) (querySearchPoint, error) {
	archive := hepdata.NewArchive()
	idx := queryserve.NewIndex()
	for i := 0; i < n; i++ {
		r := benchQueryRecord(i)
		if err := archive.Submit(r); err != nil {
			return querySearchPoint{}, err
		}
		etag, err := queryserve.RecordETag(r)
		if err != nil {
			return querySearchPoint{}, err
		}
		if err := idx.AddRecord(r, etag); err != nil {
			return querySearchPoint{}, err
		}
	}
	// A fixed-selectivity probe: "golden calibration" matches exactly the
	// ten golden records at every corpus size, so the indexed cost is
	// bounded by matches while the scan is bounded by the corpus.
	terms := queryserve.ParseQuery("golden calibration")
	want := idx.Search(terms, queryserve.And, -1)
	if len(want) != 10 {
		return querySearchPoint{}, fmt.Errorf("query bench: scale query matched %d at n=%d, want 10", len(want), n)
	}
	indexed := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if hits := idx.Search(terms, queryserve.And, -1); len(hits) != len(want) {
				b.Fatalf("indexed search drifted: %d hits", len(hits))
			}
		}
	})
	linear := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if hits := archive.Search("golden"); len(hits) != 10 {
				b.Fatalf("linear search matched %d", len(hits))
			}
		}
	})
	return querySearchPoint{
		Records:        n,
		IndexedNsPerOp: float64(indexed.T.Nanoseconds()) / float64(indexed.N),
		LinearNsPerOp:  float64(linear.T.Nanoseconds()) / float64(linear.N),
	}, nil
}

// checkQueryGates enforces the read-path acceptance thresholds.
func checkQueryGates(rep queryReport) error {
	var errs []string
	fail := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }

	// Gate 1: the headline — a warm cached lookup answers under a
	// millisecond at GOMAXPROCS=1.
	if rep.CachedLookupP50Us >= 1000 {
		fail("cached lookup p50 %.1fus, budget 1000us (1ms)", rep.CachedLookupP50Us)
	}

	// Gate 2: the cached path stays allocation-light. The budget covers
	// the recorder, the request parse, and response framing — what it
	// forbids is per-request re-encoding of the record body.
	const allocBudget = 150
	if rep.CachedLookupAllocs > allocBudget {
		fail("cached lookup %d allocs/op, budget %d", rep.CachedLookupAllocs, allocBudget)
	}

	// Gate 3: indexed search is sublinear against the pinned linear scan.
	// Growing the corpus 4x must grow indexed search time far less than
	// linearly, and the index must beat the scan outright at the large
	// size.
	if len(rep.SearchScale) >= 2 {
		small, big := rep.SearchScale[0], rep.SearchScale[len(rep.SearchScale)-1]
		grow := float64(big.Records) / float64(small.Records)
		idxRatio := big.IndexedNsPerOp / small.IndexedNsPerOp
		linRatio := big.LinearNsPerOp / small.LinearNsPerOp
		if idxRatio >= grow/1.5 {
			fail("indexed search grew %.2fx over a %.0fx corpus (linear baseline grew %.2fx) — not sublinear",
				idxRatio, grow, linRatio)
		}
		if big.IndexedNsPerOp >= big.LinearNsPerOp {
			fail("indexed search (%0.f ns/op) does not beat the linear scan (%.0f ns/op) at %d records",
				big.IndexedNsPerOp, big.LinearNsPerOp, big.Records)
		}
	} else {
		fail("search scaling pair missing from the report")
	}

	if len(errs) > 0 {
		return fmt.Errorf("  %s", strings.Join(errs, "\n  "))
	}
	return nil
}
