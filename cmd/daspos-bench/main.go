// Command daspos-bench measures the hot paths of the preservation chain —
// the serialize→digest→store pipeline, the v3 event codec against the gob
// baseline, and parallel CAS ingest — at fixed seeds, and writes the
// results as BENCH_pipeline.json so successive changes leave a recorded
// performance trajectory instead of anecdotes.
//
// Every measurement runs under testing.Benchmark, so ns/op, allocs/op and
// B/op come from the standard harness. The event sample is produced once
// by the real chain (generate → simulate → digitize → reconstruct) before
// any clock starts.
//
// Usage:
//
//	daspos-bench [-events N] [-seed S] [-workers 1,2,4,8]
//	             [-out BENCH_pipeline.json] [-short]
package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"daspos/internal/cas"
	"daspos/internal/conditions"
	"daspos/internal/datamodel"
	"daspos/internal/detector"
	"daspos/internal/eventflow"
	"daspos/internal/generator"
	"daspos/internal/rawdata"
	"daspos/internal/reco"
	"daspos/internal/sim"
)

// result is one benchmark entry of the BENCH_pipeline.json report.
type result struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"alloc_bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	MBPerSec     float64 `json:"mb_per_sec,omitempty"`
}

// report is the whole JSON document.
type report struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Events     int      `json:"events"`
	Seed       uint64   `json:"seed"`
	Short      bool     `json:"short"`
	Unix       int64    `json:"generated_unix"`
	Results    []result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("daspos-bench: ")
	events := flag.Int("events", 200, "events in the benchmark sample")
	seed := flag.Uint64("seed", 42, "generator and simulation seed")
	workersList := flag.String("workers", "1,2,4,8", "comma-separated worker counts for the pipeline benchmark")
	out := flag.String("out", "BENCH_pipeline.json", "output JSON path")
	clusterOut := flag.String("cluster-out", "BENCH_cluster.json", "multi-node benchmark output JSON path (empty disables the section)")
	short := flag.Bool("short", false, "smoke mode: small sample, fewer worker counts")
	stamp := flag.Int64("stamp", 0, "generated_unix stamp recorded in the report; 0 keeps the report byte-stable across identical runs (pass $(date +%s) to record the real time)")
	allowSingleCPU := flag.Bool("allow-single-cpu", false, "permit a multi-worker sweep at GOMAXPROCS=1 (numbers will not show scaling)")
	flag.Parse()

	workers, err := parseWorkers(*workersList)
	if err != nil {
		log.Fatal(err)
	}
	if *short {
		if *events > 60 {
			*events = 60
		}
		workers = []int{1, 4}
	}
	// A worker sweep on one CPU produces numbers that look like a scaling
	// curve but cannot be one; refuse rather than record them as if they
	// meant something.
	if runtime.GOMAXPROCS(0) == 1 && len(workers) > 1 && !*allowSingleCPU {
		log.Fatalf("refusing a %d-point worker sweep at GOMAXPROCS=1: the curve cannot show scaling (pass -allow-single-cpu to record it anyway, or -workers 1)", len(workers))
	}

	log.Printf("generating %d-event RECO sample (seed %d)...", *events, *seed)
	sample := makeSample(*events, *seed)
	log.Printf("sample ready: %d reconstructed events", len(sample))

	rep := report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Events:     len(sample),
		Seed:       *seed,
		Short:      *short,
		Unix:       *stamp,
	}

	for _, w := range workers {
		rep.Results = append(rep.Results, benchPipeline(sample, w))
	}
	rep.Results = append(rep.Results,
		benchCodecEncode(sample, "codec/encode/gob", encodeGob),
		benchCodecEncode(sample, "codec/encode/v3", encodeV3),
		benchCodecDecode(sample, "codec/decode/gob"),
		benchCodecDecode(sample, "codec/decode/v3"),
	)
	for _, g := range []int{1, 4, 8} {
		rep.Results = append(rep.Results,
			benchCASPut(fmt.Sprintf("cas/put/mem/goroutines=%d", g), func() cas.Backend { return cas.NewMemBackend() }, g),
			benchCASPut(fmt.Sprintf("cas/put/sharded/goroutines=%d", g), func() cas.Backend { return cas.NewShardedBackend(0) }, g),
		)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	for _, r := range rep.Results {
		extra := ""
		if r.EventsPerSec > 0 {
			extra = fmt.Sprintf("  %.0f events/s", r.EventsPerSec)
		}
		if r.MBPerSec > 0 {
			extra += fmt.Sprintf("  %.1f MB/s", r.MBPerSec)
		}
		log.Printf("%-32s %12.0f ns/op %8d allocs/op%s", r.Name, r.NsPerOp, r.AllocsPerOp, extra)
	}
	log.Printf("wrote %s", *out)

	if *clusterOut != "" {
		if err := runClusterBench(*clusterOut, *short, *stamp); err != nil {
			log.Fatal(err)
		}
	}
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workers is empty")
	}
	return out, nil
}

// makeSample runs the real front of the chain once — generation, full
// simulation, digitization, reconstruction — to produce a deterministic
// RECO sample for the timed sections.
func makeSample(events int, seed uint64) []*datamodel.Event {
	det := detector.Standard()
	db := conditions.NewDB()
	if err := conditions.SeedStandard(db, "bench", 1, 100, 10, seed); err != nil {
		log.Fatal(err)
	}
	snap := db.Snapshot("bench", 1)
	gen, err := generator.New(generator.ProcDrellYanZ, generator.DefaultConfig(seed))
	if err != nil {
		log.Fatal(err)
	}
	full := sim.NewFullSim(det, seed)
	rc := reco.New(det)
	var out []*datamodel.Event
	for i := 0; i < events; i++ {
		raw := rawdata.Digitize(1, full.Simulate(gen.Generate()))
		ev, err := rc.Reconstruct(raw, snap)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, ev)
	}
	return out
}

// benchPipeline measures the tentpole path: RECO events stream through an
// eventflow slim stage with the given worker count, the v3 writer
// serializes the AOD tier, and the bytes flow through a pipe into
// cas.PutReader — digest and compression in the same single pass — over a
// sharded backend.
func benchPipeline(sample []*datamodel.Event, workers int) result {
	var outBytes int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			store := cas.NewStoreWith(cas.NewShardedBackend(0))
			pr, pw := io.Pipe()
			done := make(chan error, 1)
			go func() {
				_, _, err := store.PutReader(pr)
				done <- err
			}()
			fw, err := datamodel.NewFileWriter(pw, datamodel.TierAOD)
			if err != nil {
				b.Fatal(err)
			}
			idx := 0
			p := eventflow.New(context.Background(), "bench", eventflow.Options{BatchSize: 32})
			src := eventflow.Source(p, "reco-src", func() (*datamodel.Event, error) {
				if idx >= len(sample) {
					return nil, io.EOF
				}
				e := sample[idx]
				idx++
				return e, nil
			})
			aodS := eventflow.Map(src, "slim", workers, func(e *datamodel.Event) (*datamodel.Event, bool, error) {
				return e.SlimToAOD(), true, nil
			})
			eventflow.SinkBatch(aodS, "aod-write", func(items []*datamodel.Event) error {
				for _, e := range items {
					if err := fw.Write(e); err != nil {
						return err
					}
				}
				return nil
			})
			if err := p.Wait(); err != nil {
				b.Fatal(err)
			}
			if err := fw.Close(); err != nil {
				b.Fatal(err)
			}
			if err := pw.Close(); err != nil {
				b.Fatal(err)
			}
			if err := <-done; err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				n, _ := datamodel.EncodedSize(datamodel.TierAOD, slimAll(sample))
				outBytes = n
			}
		}
		b.SetBytes(outBytes)
	})
	return mkResult(fmt.Sprintf("pipeline/workers=%d", workers), r, len(sample), outBytes)
}

func slimAll(sample []*datamodel.Event) []*datamodel.Event {
	out := make([]*datamodel.Event, len(sample))
	for i, e := range sample {
		out[i] = e.SlimToAOD()
	}
	return out
}

// encodeV3 serializes the sample with the production v3 writer.
func encodeV3(w io.Writer, sample []*datamodel.Event) (int64, error) {
	return datamodel.WriteEvents(w, datamodel.TierRECO, sample)
}

// encodeGob serializes the sample with the gob baseline the v3 codec
// replaced, for the trajectory comparison.
func encodeGob(w io.Writer, sample []*datamodel.Event) (int64, error) {
	cw := &countingWriter{w: w}
	enc := gob.NewEncoder(cw)
	for _, e := range sample {
		if err := enc.Encode(e); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func benchCodecEncode(sample []*datamodel.Event, name string, fn func(io.Writer, []*datamodel.Event) (int64, error)) result {
	var size int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n, err := fn(io.Discard, sample)
			if err != nil {
				b.Fatal(err)
			}
			size = n
		}
		b.SetBytes(size)
	})
	return mkResult(name, r, len(sample), size)
}

func benchCodecDecode(sample []*datamodel.Event, name string) result {
	var buf bytes.Buffer
	var size int64
	isGob := strings.HasSuffix(name, "gob")
	if isGob {
		n, err := encodeGob(&buf, sample)
		if err != nil {
			log.Fatal(err)
		}
		size = n
	} else {
		n, err := datamodel.WriteEvents(&buf, datamodel.TierRECO, sample)
		if err != nil {
			log.Fatal(err)
		}
		size = n
	}
	data := buf.Bytes()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			if isGob {
				dec := gob.NewDecoder(bytes.NewReader(data))
				for j := 0; j < len(sample); j++ {
					var e datamodel.Event
					if err := dec.Decode(&e); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				if _, _, err := datamodel.ReadEvents(bytes.NewReader(data)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	return mkResult(name, r, len(sample), size)
}

// benchCASPut measures parallel ingest of distinct 16 KiB payloads with g
// writer goroutines over the given backend.
func benchCASPut(name string, mk func() cas.Backend, g int) result {
	const blobSize = 16 << 10
	base := bytes.Repeat([]byte("daspos tier payload "), blobSize/20+1)[:blobSize]
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(blobSize)
		s := cas.NewStoreWith(mk())
		next := make(chan int, g)
		done := make(chan error, g)
		for w := 0; w < g; w++ {
			go func() {
				buf := append([]byte(nil), base...)
				for i := range next {
					copy(buf, fmt.Sprintf("%020d", i))
					if _, err := s.Put(buf); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
		}
		for i := 0; i < b.N; i++ {
			next <- i
		}
		close(next)
		for w := 0; w < g; w++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	})
	return mkResult(name, r, 0, blobSize)
}

func mkResult(name string, r testing.BenchmarkResult, events int, bytesPerOp int64) result {
	res := result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	secPerOp := res.NsPerOp / 1e9
	if secPerOp > 0 {
		if events > 0 {
			res.EventsPerSec = float64(events) / secPerOp
		}
		if bytesPerOp > 0 {
			res.MBPerSec = float64(bytesPerOp) / secPerOp / 1e6
		}
	}
	return res
}
