// Command daspos-bench measures the hot paths of the preservation chain —
// the serialize→digest→store pipeline, the v3 event codec against the gob
// baseline, and parallel CAS ingest — at fixed seeds, and writes the
// results as BENCH_pipeline.json so successive changes leave a recorded
// performance trajectory instead of anecdotes. Three further sections get
// their own reports: the multi-node cluster (BENCH_cluster.json), the
// multi-tenant RECAST overload harness (BENCH_recast.json), and the
// query read path (BENCH_query.json).
//
// Every measurement runs under testing.Benchmark, so ns/op, allocs/op and
// B/op come from the standard harness. The event sample is produced once
// by the real chain (generate → simulate → digitize → reconstruct) before
// any clock starts.
//
// Usage:
//
//	daspos-bench [-events N] [-seed S] [-workers 1,2,4,8]
//	             [-out BENCH_pipeline.json] [-cluster-out BENCH_cluster.json]
//	             [-recast-out BENCH_recast.json] [-recast-requests N]
//	             [-query-out BENCH_query.json] [-short]
package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"daspos/internal/cas"
	"daspos/internal/conditions"
	"daspos/internal/datamodel"
	"daspos/internal/detector"
	"daspos/internal/eventflow"
	"daspos/internal/generator"
	"daspos/internal/rawdata"
	"daspos/internal/reco"
	"daspos/internal/sim"
)

// result is one benchmark entry of the BENCH_pipeline.json report.
type result struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  int64   `json:"allocs_per_op"`
	BytesPerOp   int64   `json:"alloc_bytes_per_op"`
	EventsPerSec float64 `json:"events_per_sec,omitempty"`
	MBPerSec     float64 `json:"mb_per_sec,omitempty"`
}

// report is the whole JSON document.
type report struct {
	GoVersion  string   `json:"go_version"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Events     int      `json:"events"`
	Seed       uint64   `json:"seed"`
	Short      bool     `json:"short"`
	Unix       int64    `json:"generated_unix"`
	Results    []result `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("daspos-bench: ")
	events := flag.Int("events", 200, "events in the benchmark sample")
	seed := flag.Uint64("seed", 42, "generator and simulation seed")
	workersList := flag.String("workers", "1,2,4,8", "comma-separated worker counts for the pipeline benchmark")
	out := flag.String("out", "BENCH_pipeline.json", "output JSON path")
	clusterOut := flag.String("cluster-out", "BENCH_cluster.json", "multi-node benchmark output JSON path (empty disables the section)")
	recastOut := flag.String("recast-out", "BENCH_recast.json", "RECAST overload benchmark output JSON path (empty disables the section)")
	queryOut := flag.String("query-out", "BENCH_query.json", "read-path benchmark output JSON path (empty disables the section)")
	recastRequests := flag.Int("recast-requests", 2000, "mixed-tenant submissions in the RECAST overload section")
	short := flag.Bool("short", false, "smoke mode: small sample, fewer worker counts")
	stamp := flag.Int64("stamp", 0, "generated_unix stamp recorded in the report; 0 keeps the report byte-stable across identical runs (pass $(date +%s) to record the real time)")
	allowSingleCPU := flag.Bool("allow-single-cpu", false, "permit a multi-worker sweep at GOMAXPROCS=1 (numbers will not show scaling)")
	gate := flag.Bool("gate", false, "enforce the performance acceptance thresholds (allocs/op, scaling) and exit nonzero on regression")
	flag.Parse()

	workers, err := parseWorkers(*workersList)
	if err != nil {
		log.Fatal(err)
	}
	if *short {
		if *events > 60 {
			*events = 60
		}
		workers = []int{1, 4}
	}
	// A worker sweep on one CPU produces numbers that look like a scaling
	// curve but cannot be one; refuse rather than record them as if they
	// meant something.
	if runtime.GOMAXPROCS(0) == 1 && len(workers) > 1 && !*allowSingleCPU {
		log.Fatalf("refusing a %d-point worker sweep at GOMAXPROCS=1: the curve cannot show scaling (pass -allow-single-cpu to record it anyway, or -workers 1)", len(workers))
	}

	log.Printf("generating %d-event RECO sample (seed %d)...", *events, *seed)
	sample := makeSample(*events, *seed)
	log.Printf("sample ready: %d reconstructed events", len(sample))

	rep := report{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Events:     len(sample),
		Seed:       *seed,
		Short:      *short,
		Unix:       *stamp,
	}

	for _, w := range workers {
		rep.Results = append(rep.Results, benchPipeline(sample, w))
	}
	rep.Results = append(rep.Results,
		benchCodecEncode(sample, "codec/encode/gob", encodeGob),
		benchCodecEncode(sample, "codec/encode/v3", encodeV3),
		benchCodecDecode(sample, "codec/decode/gob"),
		benchCodecDecode(sample, "codec/decode/v3"),
		benchCodecDecodeInto(sample),
	)
	for _, g := range []int{1, 4, 8} {
		rep.Results = append(rep.Results,
			benchCASPut(fmt.Sprintf("cas/put/mem/goroutines=%d", g), func() cas.Backend { return cas.NewMemBackend() }, g),
			benchCASPut(fmt.Sprintf("cas/put/sharded/goroutines=%d", g), func() cas.Backend { return cas.NewShardedBackend(0) }, g),
			benchCASPutChunked(g),
		)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	for _, r := range rep.Results {
		extra := ""
		if r.EventsPerSec > 0 {
			extra = fmt.Sprintf("  %.0f events/s", r.EventsPerSec)
		}
		if r.MBPerSec > 0 {
			extra += fmt.Sprintf("  %.1f MB/s", r.MBPerSec)
		}
		log.Printf("%-32s %12.0f ns/op %8d allocs/op%s", r.Name, r.NsPerOp, r.AllocsPerOp, extra)
	}
	log.Printf("wrote %s", *out)

	if *gate {
		if err := checkGates(rep, workers); err != nil {
			log.Fatalf("performance gate FAILED:\n%v", err)
		}
		log.Printf("performance gate passed")
	}

	if *clusterOut != "" {
		if err := runClusterBench(*clusterOut, *short, *stamp); err != nil {
			log.Fatal(err)
		}
	}

	if *recastOut != "" {
		if err := runRecastBench(*recastOut, *recastRequests, *short, *stamp); err != nil {
			log.Fatal(err)
		}
	}

	if *queryOut != "" {
		if err := runQueryBench(*queryOut, *short, *stamp, *gate); err != nil {
			log.Fatal(err)
		}
	}
}

// checkGates enforces the allocation and scaling acceptance thresholds on
// a finished report. The allocation gates are machine-independent; the
// scaling gate adapts to the cores actually available: at GOMAXPROCS ≥ 8
// the widest sweep point must run ≥ 4× the single-worker rate, at 2–7
// procs the target is procs/2 (perfectly honest parallel efficiency of
// 50%), and at one CPU the scaling check is skipped — one core cannot
// witness a scaling curve, and pretending otherwise is exactly what the
// single-CPU refusal exists to prevent.
func checkGates(rep report, workers []int) error {
	byName := make(map[string]result, len(rep.Results))
	for _, r := range rep.Results {
		byName[r.Name] = r
	}
	var errs []string
	fail := func(format string, args ...any) { errs = append(errs, fmt.Sprintf(format, args...)) }

	// Gate 1: arena decode stays under the zero-copy budget. The op decodes
	// the whole sample, so the bound is per sample, not per event.
	const decodeAllocBudget = 50
	if r, ok := byName["codec/decode/v3into"]; !ok {
		fail("codec/decode/v3into missing from the report")
	} else if r.AllocsPerOp > decodeAllocBudget {
		fail("codec/decode/v3into: %d allocs/op, budget %d", r.AllocsPerOp, decodeAllocBudget)
	}

	// Gate 2: the pipeline must stay out of allocation-bound territory.
	// Each benchmark op builds a fresh pipeline, so a few allocations per
	// added worker are construction (goroutine, closure, ring slot) and
	// amortize to nothing on a real stream; what the gate forbids is the
	// steady-state kind — per-batch-per-worker allocations like the map
	// reorderer this PR replaced, which put the sweep at 460–495 allocs/op.
	// Hence a generous relative bound between sweep points plus an absolute
	// ceiling well below the old regression.
	const allocCeiling = 300
	base, ok := byName[fmt.Sprintf("pipeline/workers=%d", workers[0])]
	if !ok {
		fail("pipeline/workers=%d missing from the report", workers[0])
	}
	for _, w := range workers {
		r, ok := byName[fmt.Sprintf("pipeline/workers=%d", w)]
		if !ok {
			fail("pipeline/workers=%d missing from the report", w)
			continue
		}
		if r.AllocsPerOp > allocCeiling {
			fail("pipeline/workers=%d: %d allocs/op, ceiling %d", w, r.AllocsPerOp, allocCeiling)
		}
		if w != workers[0] && base.AllocsPerOp > 0 && float64(r.AllocsPerOp) > 1.5*float64(base.AllocsPerOp) {
			fail("pipeline allocs/op grows with workers: %d at workers=%d vs %d at workers=%d",
				r.AllocsPerOp, w, base.AllocsPerOp, workers[0])
		}
	}

	// Gate 3: scaling, on the cores we actually have.
	procs := rep.GOMAXPROCS
	wmax := workers[len(workers)-1]
	top, ok := byName[fmt.Sprintf("pipeline/workers=%d", wmax)]
	switch {
	case procs <= 1 || wmax <= 1:
		log.Printf("gate: scaling check skipped (GOMAXPROCS=%d, widest sweep point %d)", procs, wmax)
	case !ok || base.EventsPerSec <= 0:
		fail("scaling gate needs pipeline results at workers=%d and workers=%d", workers[0], wmax)
	default:
		target := float64(min(procs, wmax)) / 2
		if procs >= 8 && wmax >= 8 {
			target = 4
		}
		speedup := top.EventsPerSec / base.EventsPerSec
		if speedup < target {
			fail("pipeline scaling %.2fx at workers=%d (GOMAXPROCS=%d), target %.1fx", speedup, wmax, procs, target)
		} else {
			log.Printf("gate: pipeline scaling %.2fx at workers=%d (target %.1fx)", speedup, wmax, target)
		}
	}

	if len(errs) > 0 {
		return fmt.Errorf("  %s", strings.Join(errs, "\n  "))
	}
	return nil
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers entry %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-workers is empty")
	}
	return out, nil
}

// makeSample runs the real front of the chain once — generation, full
// simulation, digitization, reconstruction — to produce a deterministic
// RECO sample for the timed sections.
func makeSample(events int, seed uint64) []*datamodel.Event {
	det := detector.Standard()
	db := conditions.NewDB()
	if err := conditions.SeedStandard(db, "bench", 1, 100, 10, seed); err != nil {
		log.Fatal(err)
	}
	snap := db.Snapshot("bench", 1)
	gen, err := generator.New(generator.ProcDrellYanZ, generator.DefaultConfig(seed))
	if err != nil {
		log.Fatal(err)
	}
	full := sim.NewFullSim(det, seed)
	rc := reco.New(det)
	var out []*datamodel.Event
	for i := 0; i < events; i++ {
		raw := rawdata.Digitize(1, full.Simulate(gen.Generate()))
		ev, err := rc.Reconstruct(raw, snap)
		if err != nil {
			log.Fatal(err)
		}
		out = append(out, ev)
	}
	return out
}

// benchPipeline measures the tentpole path, now zero-copy end to end: RECO
// events stream through an eventflow stage that slims each event to a
// borrowed AOD view (no deep copy) and encodes the v3 payload on the
// worker; the ordered sink only frames the pre-encoded payloads
// (WritePayload) into an in-memory AOD stream, which lands in the store
// via the chunk-parallel PutWorkers. Batch containers recycle through the
// stage pool, so steady-state allocations are the per-event payload
// buffers and nothing else.
func benchPipeline(sample []*datamodel.Event, workers int) result {
	var outBytes int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			store := cas.NewStoreWith(cas.NewShardedBackend(0))
			var aod bytes.Buffer
			fw, err := datamodel.NewFileWriter(&aod, datamodel.TierAOD)
			if err != nil {
				b.Fatal(err)
			}
			idx := 0
			p := eventflow.New(context.Background(), "bench", eventflow.Options{BatchSize: 32})
			src := eventflow.Source(p, "reco-src", func() (*datamodel.Event, error) {
				if idx >= len(sample) {
					return nil, io.EOF
				}
				e := sample[idx]
				idx++
				return e, nil
			})
			encS := eventflow.MapBatches(src, "slim-encode", workers,
				func(_ int) func(in []*datamodel.Event, out [][]byte) ([][]byte, error) {
					return func(in []*datamodel.Event, out [][]byte) ([][]byte, error) {
						// One arena per call, handed off to the sink as capped
						// subslices: a batch of payloads costs one allocation,
						// and an arena growth leaves the already-emitted
						// subslices pointing at complete bytes in the old
						// backing array.
						arena := make([]byte, 0, 192*len(in))
						for _, e := range in {
							slim := e.SlimViewAOD()
							start := len(arena)
							arena = datamodel.AppendEventPayload(arena, &slim)
							out = append(out, arena[start:len(arena):len(arena)])
						}
						return out, nil
					}
				})
			eventflow.SinkBatch(encS, "aod-frame", func(items [][]byte) error {
				for _, payload := range items {
					if err := fw.WritePayload(payload); err != nil {
						return err
					}
				}
				return nil
			})
			if err := p.Wait(); err != nil {
				b.Fatal(err)
			}
			if err := fw.Close(); err != nil {
				b.Fatal(err)
			}
			if _, err := store.PutWorkers(aod.Bytes(), workers); err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				outBytes = int64(aod.Len())
			}
		}
		b.SetBytes(outBytes)
	})
	return mkResult(fmt.Sprintf("pipeline/workers=%d", workers), r, len(sample), outBytes)
}

// encodeV3 serializes the sample with the production v3 writer.
func encodeV3(w io.Writer, sample []*datamodel.Event) (int64, error) {
	return datamodel.WriteEvents(w, datamodel.TierRECO, sample)
}

// encodeGob serializes the sample with the gob baseline the v3 codec
// replaced, for the trajectory comparison.
func encodeGob(w io.Writer, sample []*datamodel.Event) (int64, error) {
	cw := &countingWriter{w: w}
	enc := gob.NewEncoder(cw)
	for _, e := range sample {
		if err := enc.Encode(e); err != nil {
			return cw.n, err
		}
	}
	return cw.n, nil
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func benchCodecEncode(sample []*datamodel.Event, name string, fn func(io.Writer, []*datamodel.Event) (int64, error)) result {
	var size int64
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n, err := fn(io.Discard, sample)
			if err != nil {
				b.Fatal(err)
			}
			size = n
		}
		b.SetBytes(size)
	})
	return mkResult(name, r, len(sample), size)
}

func benchCodecDecode(sample []*datamodel.Event, name string) result {
	var buf bytes.Buffer
	var size int64
	isGob := strings.HasSuffix(name, "gob")
	if isGob {
		n, err := encodeGob(&buf, sample)
		if err != nil {
			log.Fatal(err)
		}
		size = n
	} else {
		n, err := datamodel.WriteEvents(&buf, datamodel.TierRECO, sample)
		if err != nil {
			log.Fatal(err)
		}
		size = n
	}
	data := buf.Bytes()
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			if isGob {
				dec := gob.NewDecoder(bytes.NewReader(data))
				for j := 0; j < len(sample); j++ {
					var e datamodel.Event
					if err := dec.Decode(&e); err != nil {
						b.Fatal(err)
					}
				}
			} else {
				if _, _, err := datamodel.ReadEvents(bytes.NewReader(data)); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	return mkResult(name, r, len(sample), size)
}

// benchCodecDecodeInto measures the arena decode path: the whole sample
// decoded into one warm Batch per op via FrameScanner + DecodeInto. After
// the first op the batch's backing arrays have grown to working size, so
// steady-state allocations are near zero — the ~1000 → <50 allocs/op
// target of the zero-copy refactor.
func benchCodecDecodeInto(sample []*datamodel.Event) result {
	var buf bytes.Buffer
	size, err := datamodel.WriteEvents(&buf, datamodel.TierRECO, sample)
	if err != nil {
		log.Fatal(err)
	}
	data := buf.Bytes()
	batch := datamodel.NewBatch(len(sample))
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(size)
		for i := 0; i < b.N; i++ {
			sc, err := datamodel.NewFrameScanner(data)
			if err != nil {
				b.Fatal(err)
			}
			batch.Reset()
			for {
				payload, err := sc.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					b.Fatal(err)
				}
				if err := datamodel.DecodeInto(batch, payload); err != nil {
					b.Fatal(err)
				}
			}
			if batch.Len() != len(sample) {
				b.Fatalf("decoded %d events, want %d", batch.Len(), len(sample))
			}
		}
	})
	return mkResult("codec/decode/v3into", r, len(sample), size)
}

// benchCASPutChunked measures the chunked parallel hash+compress path on a
// blob comfortably above the chunking threshold, with g hashing workers.
func benchCASPutChunked(g int) result {
	const blobSize = 4 << 20
	payload := make([]byte, blobSize)
	// Deterministic mid-entropy fill: compressible enough that deflate
	// stays in the measurement, unlike an all-zero page.
	x := uint64(0x9e3779b97f4a7c15)
	for i := range payload {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		payload[i] = byte(x >> (uint(i) % 8 * 4))
	}
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(blobSize)
		for i := 0; i < b.N; i++ {
			s := cas.NewStoreWith(cas.NewMemBackend())
			if _, err := s.PutWorkers(payload, g); err != nil {
				b.Fatal(err)
			}
		}
	})
	return mkResult(fmt.Sprintf("cas/put/chunked/goroutines=%d", g), r, 0, blobSize)
}

// benchCASPut measures parallel ingest of distinct 16 KiB payloads with g
// writer goroutines over the given backend.
func benchCASPut(name string, mk func() cas.Backend, g int) result {
	const blobSize = 16 << 10
	base := bytes.Repeat([]byte("daspos tier payload "), blobSize/20+1)[:blobSize]
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(blobSize)
		s := cas.NewStoreWith(mk())
		next := make(chan int, g)
		done := make(chan error, g)
		for w := 0; w < g; w++ {
			go func() {
				buf := append([]byte(nil), base...)
				for i := range next {
					copy(buf, fmt.Sprintf("%020d", i))
					if _, err := s.Put(buf); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
		}
		for i := 0; i < b.N; i++ {
			next <- i
		}
		close(next)
		for w := 0; w < g; w++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	})
	return mkResult(name, r, 0, blobSize)
}

func mkResult(name string, r testing.BenchmarkResult, events int, bytesPerOp int64) result {
	res := result{
		Name:        name,
		Iterations:  r.N,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	secPerOp := res.NsPerOp / 1e9
	if secPerOp > 0 {
		if events > 0 {
			res.EventsPerSec = float64(events) / secPerOp
		}
		if bytesPerOp > 0 {
			res.MBPerSec = float64(bytesPerOp) / secPerOp / 1e6
		}
	}
	return res
}
