package main

// The RECAST overload section: the multi-tenant server under a mixed
// arrival schedule — one flooding tenant, three polite ones — through a
// slow back end, measured end to end through the HTTP front door. Results
// go to BENCH_recast.json: per-tenant submit→terminal latency percentiles,
// shed counts, and dedup hits, so the overload-safety properties leave a
// recorded trajectory the same way the codec and cluster numbers do.

import (
	"context"
	"encoding/json"
	"errors"
	"log"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"daspos/internal/bridge"
	"daspos/internal/datamodel"
	"daspos/internal/faults"
	"daspos/internal/leshouches"
	"daspos/internal/recast"
)

// recastTenantStats is one tenant's row in the report.
type recastTenantStats struct {
	Submitted int     `json:"submitted"`
	Admitted  int     `json:"admitted"`
	Shed      int     `json:"shed"`
	Done      int     `json:"done"`
	DedupHits int     `json:"dedup_hits"`
	P50Ms     float64 `json:"p50_ms"`
	P95Ms     float64 `json:"p95_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// recastReport is the BENCH_recast.json document.
type recastReport struct {
	GoVersion  string                       `json:"go_version"`
	GOMAXPROCS int                          `json:"gomaxprocs"`
	Requests   int                          `json:"requests"`
	Workers    int                          `json:"workers"`
	TenantRate float64                      `json:"tenant_rate"`
	Short      bool                         `json:"short"`
	Unix       int64                        `json:"generated_unix"`
	DurationMs float64                      `json:"duration_ms"`
	Admitted   uint64                       `json:"admitted"`
	Shed       uint64                       `json:"shed"`
	Served     uint64                       `json:"served"`
	DedupHits  uint64                       `json:"dedup_hits"`
	Expired    uint64                       `json:"expired"`
	Failed     uint64                       `json:"failed"`
	Tenants    map[string]recastTenantStats `json:"tenants"`
}

// recastBenchRecord is a compact dimuon search for the load harness —
// the same shape the daspos-recast CLI subscribes, kept small so the
// back-end cost is the slow-backend latency model, not event generation.
func recastBenchRecord() *leshouches.AnalysisRecord {
	return &leshouches.AnalysisRecord{
		Name:        "BENCH_DIMUON",
		Description: "Dimuon selection for the overload bench",
		Objects: []leshouches.ObjectDefinition{
			{Name: "mu", Type: datamodel.ObjMuon, MinPt: 30, MaxAbsEta: 2.4},
		},
		Selection: []leshouches.Cut{
			{Variable: "count:mu", Op: ">=", Value: 2},
		},
		Background:     4.2,
		ObservedEvents: 5,
	}
}

// runRecastBench drives the overload harness and writes its report.
func runRecastBench(out string, requests int, short bool, stamp int64) error {
	const workers = 4
	const tenantRate = 100 // admissions/s per tenant; the flood exceeds it
	events := 20
	if short {
		if requests > 300 {
			requests = 300
		}
		events = 10
	}
	// Half the traffic floods from one tenant in tight 2ms bursts
	// (~2000/s against the 100/s limit — most of it sheds); the rest is
	// three polite tenants under their rate, one of them resubmitting
	// every 4th model to exercise the archive-answer path.
	polite := requests / 6
	flood := requests - 3*polite
	shapes := []faults.TenantShape{
		{Tenant: "flood", Requests: flood, MeanGap: 2 * time.Millisecond, Burst: 4},
		{Tenant: "alice", Requests: polite, MeanGap: 20 * time.Millisecond, DedupEvery: 4},
		{Tenant: "bob", Requests: polite, MeanGap: 20 * time.Millisecond},
		{Tenant: "carol", Requests: polite, MeanGap: 25 * time.Millisecond, Burst: 2},
	}
	sched := faults.MixedTenantSchedule(17, shapes)

	inj := faults.NewInjector(99).WithLatencyRange(time.Millisecond, 6*time.Millisecond)
	backend := &faults.SlowBackend[recast.ModelSpec, *recast.Result]{Inner: &bridge.RivetBackend{LuminosityPb: 20000}, Inj: inj}
	svc := recast.NewService(backend)
	if err := svc.Subscribe(recast.Subscription{
		Name:        "BENCH_DIMUON",
		Description: "overload bench",
		Record:      recastBenchRecord(),
	}); err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "daspos-bench-recast-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	srv, err := recast.NewServer(context.Background(), svc, recast.ServerConfig{
		JournalDir:  dir,
		Workers:     workers,
		QueueBound:  256,
		TenantRate:  tenantRate,
		TenantBurst: 16,
		AutoApprove: true,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	srv.Start()
	hts := httptest.NewServer(srv.Handler())
	defer hts.Close()

	log.Printf("recast section: %d requests, 4 tenants (flood %d), %d workers, rate %g/s",
		len(sched), flood, workers, float64(tenantRate))

	// One goroutine per tenant replays its slice of the arrival timeline
	// through the real client, then polls each admitted request to its
	// terminal state.
	byTenant := map[string][]faults.Arrival{}
	for _, a := range sched {
		byTenant[a.Tenant] = append(byTenant[a.Tenant], a)
	}
	var (
		mu    sync.Mutex
		stats = map[string]*recastTenantStats{}
		wg    sync.WaitGroup
	)
	start := time.Now()
	for tenant, arrivals := range byTenant {
		wg.Add(1)
		go func(tenant string, arrivals []faults.Arrival) {
			defer wg.Done()
			c := &recast.Client{BaseURL: hts.URL}
			st := &recastTenantStats{}
			var (
				stMu sync.Mutex
				lats []float64
				poll sync.WaitGroup
			)
			for _, a := range arrivals {
				if d := a.At - time.Since(start); d > 0 {
					time.Sleep(d)
				}
				st.Submitted++
				model := recast.ModelSpec{
					Process: "zprime", MassGeV: 800, Events: events, Seed: a.ModelSeed,
				}
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				t0 := time.Now()
				req, err := c.SubmitCtx(ctx, "BENCH_DIMUON", tenant, "", model)
				cancel()
				if err != nil {
					var herr *recast.HTTPError
					if errors.As(err, &herr) && herr.Status == 429 {
						st.Shed++
						continue
					}
					log.Printf("recast bench: %s submit: %v", tenant, err)
					continue
				}
				st.Admitted++
				// Poll to the terminal state concurrently, so queue wait is
				// measured without stalling the arrival schedule.
				poll.Add(1)
				go func(id string, t0 time.Time) {
					defer poll.Done()
					for {
						req, err := svc.Get(id)
						if err != nil {
							log.Printf("recast bench: %s poll: %v", tenant, err)
							return
						}
						if req.Status != recast.StatusDone && req.Status != recast.StatusFailed {
							time.Sleep(2 * time.Millisecond)
							continue
						}
						stMu.Lock()
						if req.Status == recast.StatusDone {
							st.Done++
							lats = append(lats, float64(time.Since(t0).Microseconds())/1000)
						}
						if req.DedupOf != "" {
							st.DedupHits++
						}
						stMu.Unlock()
						return
					}
				}(req.ID, t0)
			}
			poll.Wait()
			st.P50Ms, st.P95Ms, st.P99Ms = percentile(lats, 50), percentile(lats, 95), percentile(lats, 99)
			mu.Lock()
			stats[tenant] = st
			mu.Unlock()
		}(tenant, arrivals)
	}
	wg.Wait()
	elapsed := time.Since(start)

	status := srv.Status()
	rep := recastReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Requests:   len(sched),
		Workers:    workers,
		TenantRate: tenantRate,
		Short:      short,
		Unix:       stamp,
		DurationMs: float64(elapsed.Microseconds()) / 1000,
		Admitted:   status.Admitted,
		Shed:       status.Shed,
		Served:     status.Served,
		DedupHits:  status.DedupHits,
		Expired:    status.Expired,
		Failed:     status.Failed,
		Tenants:    map[string]recastTenantStats{},
	}
	for tenant, st := range stats {
		rep.Tenants[tenant] = *st
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	for _, tenant := range []string{"flood", "alice", "bob", "carol"} {
		st, ok := rep.Tenants[tenant]
		if !ok {
			continue
		}
		log.Printf("%-8s submitted %4d  admitted %4d  shed %4d  dedup %3d  p50 %7.1fms  p99 %7.1fms",
			tenant, st.Submitted, st.Admitted, st.Shed, st.DedupHits, st.P50Ms, st.P99Ms)
	}
	log.Printf("served %d of %d admitted in %.1fs (%d shed, %d dedup hits)",
		rep.Served, rep.Admitted, elapsed.Seconds(), rep.Shed, rep.DedupHits)
	log.Printf("wrote %s", out)
	return nil
}

// percentile reports the p-th percentile of ms latencies (nearest-rank).
func percentile(lats []float64, p float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
