package main

// The multi-node section: an in-process five-node preservation network
// (real HTTP servers on loopback, replication factor 3) measured on the
// two paths a multi-site deployment lives or dies by — quorum ingest and
// replica-fallback restore — at increasing client concurrency. Results go
// to BENCH_cluster.json, separate from the single-process pipeline
// report, because wire numbers and in-memory numbers must never be
// compared on one axis.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"

	"daspos/internal/cas"
	"daspos/internal/cluster"
	"daspos/internal/node"
)

// clusterReport is the BENCH_cluster.json document.
type clusterReport struct {
	GoVersion         string   `json:"go_version"`
	GOMAXPROCS        int      `json:"gomaxprocs"`
	Nodes             int      `json:"nodes"`
	ReplicationFactor int      `json:"replication_factor"`
	BlobBytes         int      `json:"blob_bytes"`
	Short             bool     `json:"short"`
	Unix              int64    `json:"generated_unix"`
	Results           []result `json:"results"`
}

const (
	clusterNodes    = 5
	clusterRF       = 3
	clusterBlobSize = 16 << 10
)

// startBenchCluster spins the node fleet and a client over it; the caller
// must invoke the returned shutdown func.
func startBenchCluster() (*cluster.Client, func(), error) {
	var (
		servers []*httptest.Server
		infos   []cluster.NodeInfo
	)
	shutdown := func() {
		for _, s := range servers {
			s.Close()
		}
	}
	for i := 0; i < clusterNodes; i++ {
		nd := node.New(fmt.Sprintf("bench-%d", i), cas.NewShardedBackend(0))
		srv := httptest.NewServer(nd.Handler())
		servers = append(servers, srv)
		infos = append(infos, cluster.NodeInfo{ID: nd.ID(), URL: srv.URL})
	}
	cl, err := cluster.New(context.Background(), cluster.Config{
		Nodes:             infos,
		ReplicationFactor: clusterRF,
	})
	if err != nil {
		shutdown()
		return nil, nil, err
	}
	return cl, shutdown, nil
}

// benchBlob returns the i-th distinct payload.
func benchBlob(base []byte, i int) []byte {
	buf := append([]byte(nil), base...)
	copy(buf, fmt.Sprintf("%020d", i))
	return buf
}

// benchClusterIngest measures quorum writes (each Put fans to RF nodes,
// acks at majority) with g client goroutines.
func benchClusterIngest(g int) (result, error) {
	base := bytes.Repeat([]byte("daspos cluster payload "), clusterBlobSize/23+1)[:clusterBlobSize]
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		cl, shutdown, err := startBenchCluster()
		if err != nil {
			benchErr = err
			b.Skip()
		}
		defer shutdown()
		store := cas.NewStoreWith(cl)
		b.ReportAllocs()
		b.SetBytes(clusterBlobSize)
		b.ResetTimer()
		next := make(chan int, g)
		done := make(chan error, g)
		for w := 0; w < g; w++ {
			go func() {
				for i := range next {
					if _, err := store.Put(benchBlob(base, i)); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
		}
		for i := 0; i < b.N; i++ {
			next <- i
		}
		close(next)
		for w := 0; w < g; w++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return result{}, benchErr
	}
	return mkResult(fmt.Sprintf("cluster/ingest/goroutines=%d", g), r, 0, clusterBlobSize), nil
}

// benchClusterRestore pre-populates the fleet, then measures verified
// reads (replica fallback path, fixity checked client-side on every Get)
// with g client goroutines.
func benchClusterRestore(g int, blobs int) (result, error) {
	base := bytes.Repeat([]byte("daspos cluster payload "), clusterBlobSize/23+1)[:clusterBlobSize]
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		cl, shutdown, err := startBenchCluster()
		if err != nil {
			benchErr = err
			b.Skip()
		}
		defer shutdown()
		store := cas.NewStoreWith(cl)
		digests := make([]string, blobs)
		for i := range digests {
			d, err := store.Put(benchBlob(base, i))
			if err != nil {
				benchErr = err
				b.Skip()
			}
			digests[i] = d
		}
		b.ReportAllocs()
		b.SetBytes(clusterBlobSize)
		b.ResetTimer()
		next := make(chan int, g)
		done := make(chan error, g)
		for w := 0; w < g; w++ {
			go func() {
				for i := range next {
					if _, err := store.Get(digests[i%len(digests)]); err != nil {
						done <- err
						return
					}
				}
				done <- nil
			}()
		}
		for i := 0; i < b.N; i++ {
			next <- i
		}
		close(next)
		for w := 0; w < g; w++ {
			if err := <-done; err != nil {
				b.Fatal(err)
			}
		}
	})
	if benchErr != nil {
		return result{}, benchErr
	}
	return mkResult(fmt.Sprintf("cluster/restore/goroutines=%d", g), r, 0, clusterBlobSize), nil
}

// runClusterBench runs the multi-node section and writes out its report.
func runClusterBench(out string, short bool, stamp int64) error {
	goroutines := []int{1, 4, 8}
	blobs := 256
	if short {
		goroutines = []int{1, 4}
		blobs = 64
	}
	rep := clusterReport{
		GoVersion:         runtime.Version(),
		GOMAXPROCS:        runtime.GOMAXPROCS(0),
		Nodes:             clusterNodes,
		ReplicationFactor: clusterRF,
		BlobBytes:         clusterBlobSize,
		Short:             short,
		Unix:              stamp,
	}
	log.Printf("multi-node section: %d nodes, RF %d", clusterNodes, clusterRF)
	for _, g := range goroutines {
		r, err := benchClusterIngest(g)
		if err != nil {
			return fmt.Errorf("cluster ingest bench: %w", err)
		}
		rep.Results = append(rep.Results, r)
	}
	for _, g := range goroutines {
		r, err := benchClusterRestore(g, blobs)
		if err != nil {
			return fmt.Errorf("cluster restore bench: %w", err)
		}
		rep.Results = append(rep.Results, r)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	for _, r := range rep.Results {
		extra := ""
		if r.MBPerSec > 0 {
			extra = fmt.Sprintf("  %.1f MB/s", r.MBPerSec)
		}
		log.Printf("%-32s %12.0f ns/op %8d allocs/op%s", r.Name, r.NsPerOp, r.AllocsPerOp, extra)
	}
	log.Printf("wrote %s", out)
	return nil
}
