// Command daspos-pipeline runs the full processing chain of the paper's
// workflow analysis — generation → full simulation → digitization (RAW) →
// reconstruction (RECO) → slimming (AOD) → derivation skims — through the
// workflow engine, and reports the tier-size cascade, the per-step
// external-dependency census, and the provenance audit.
//
// The chain runs on the event-flow substrate (internal/eventflow): events
// move through batched, bounded channels, CPU-heavy stages (simulation,
// reconstruction, slimming) fan out over -workers goroutines, and output
// order is independent of the worker count — the same seed produces
// byte-identical tiers whether the run is sequential or parallel.
//
// Runs are crash-safe when -checkpoint-dir is given: every workflow
// step's lifecycle is journaled into a durable ledger (started, artifacts
// committed via write-temp-then-rename, done), and -resume continues an
// interrupted run, skipping steps whose recorded outputs pass digest
// verification and re-executing anything less than fully committed.
//
// Usage:
//
//	daspos-pipeline [-events N] [-seed S] [-process name] [-pileup MU]
//	                [-workers W] [-batch B] [-stage-retries R]
//	                [-checkpoint-dir DIR] [-resume]
//	                [-cpuprofile FILE] [-memprofile FILE]
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"daspos/internal/checkpoint"
	"daspos/internal/conditions"
	"daspos/internal/datamodel"
	"daspos/internal/detector"
	"daspos/internal/eventflow"
	"daspos/internal/generator"
	"daspos/internal/interview"
	"daspos/internal/provenance"
	"daspos/internal/rawdata"
	"daspos/internal/reco"
	"daspos/internal/sim"
	"daspos/internal/skim"
	"daspos/internal/texttable"
	"daspos/internal/trigger"
	"daspos/internal/workflow"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daspos-pipeline: ")
	events := flag.Int("events", 200, "number of events to process")
	seed := flag.Uint64("seed", 42, "generator and simulation seed")
	process := flag.String("process", "drell-yan-z", "physics process (minbias, qcd-dijet, drell-yan-z, w-lepnu, higgs-diphoton)")
	pileup := flag.Float64("pileup", 0, "mean pileup interactions per event")
	workers := flag.Int("workers", 4, "worker goroutines per parallel pipeline stage")
	batch := flag.Int("batch", 32, "events per pipeline batch")
	stageRetries := flag.Int("stage-retries", 2, "transient worker restarts allowed per pipeline stage")
	ckptDir := flag.String("checkpoint-dir", "", "directory for the durable run ledger (empty: checkpointing off)")
	resume := flag.Bool("resume", false, "resume from the ledger in -checkpoint-dir, skipping verified steps")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *resume && *ckptDir == "" {
		log.Fatal("-resume requires -checkpoint-dir")
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("-cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatalf("-memprofile: %v", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatalf("-memprofile: %v", err)
			}
		}()
	}

	procID := processID(*process)
	if procID == 0 {
		log.Fatalf("unknown process %q", *process)
	}
	cfg := generator.DefaultConfig(*seed)
	cfg.PileupMu = *pileup
	gen, err := generator.New(procID, cfg)
	if err != nil {
		log.Fatal(err)
	}

	det := detector.Standard()
	db := conditions.NewDB()
	const tag, run = "prod-v1", 1
	if err := conditions.SeedStandard(db, tag, 1, 100, 10, *seed); err != nil {
		log.Fatal(err)
	}

	flow := flowOptions{workers: *workers, opts: eventflow.Options{BatchSize: *batch, StageRetries: *stageRetries}}
	wf, inputs, sizes, reports := buildWorkflow(gen, det, db, tag, run, *events, *seed, flow)
	prov := provenance.NewStore()

	var execOpts []workflow.ExecOption
	var ledger *checkpoint.Ledger
	if *ckptDir != "" {
		ledger, err = checkpoint.Open(*ckptDir)
		if err != nil {
			log.Fatal(err)
		}
		defer ledger.Close()
		if *resume {
			execOpts = append(execOpts, workflow.ResumeFrom(ledger))
		} else {
			execOpts = append(execOpts, workflow.WithCheckpoint(ledger))
		}
	}

	res, err := wf.Execute(context.Background(), inputs, prov, execOpts...)
	if err != nil {
		log.Fatal(err)
	}
	if ledger != nil {
		printRunStatus(ledger, res, *resume)
	}

	// Tier-size cascade (experiment W1).
	t := texttable.New("Tier", "Artifact", "Events", "Bytes", "Bytes/event", "Reduction vs RAW")
	t.Title = fmt.Sprintf("Tier-size cascade (%s, %d events, pileup %g)", *process, *events, *pileup)
	for i := 1; i < 7; i++ {
		t.SetAlign(i, texttable.Right)
	}
	raw := float64(sizes.raw)
	row := func(tier, name string, n int, b int64) {
		per := float64(b) / float64(n)
		t.AddRow(tier, name, n, b, fmt.Sprintf("%.0f", per), fmt.Sprintf("%.1fx", raw/float64(b)))
	}
	row("RAW", "raw.banks", sizes.accepted, sizes.raw)
	row("RECO", "reco.edm", sizes.accepted, int64(len(res.Artifacts["reco.edm"].Data)))
	row("AOD", "aod.edm", sizes.accepted, int64(len(res.Artifacts["aod.edm"].Data)))
	for _, name := range []string{"skim.DIMUON", "skim.MET"} {
		a := res.Artifacts[name]
		t.AddRow("DERIVED", name, a.Events, len(a.Data),
			fmt.Sprintf("%.0f", safeDiv(float64(len(a.Data)), float64(a.Events))),
			fmt.Sprintf("%.1fx", raw/float64(len(a.Data))))
	}
	fmt.Println(t)

	// Dependency census (experiment W2).
	d := texttable.New("Step", "External dependencies", "Count")
	d.Title = "External-dependency census per workflow step"
	d.SetAlign(2, texttable.Right)
	for _, rep := range res.Reports {
		d.AddRow(rep.Step, join(rep.ExternalDeps), len(rep.ExternalDeps))
	}
	fmt.Println(d)

	printStageReports(*workers, *batch, reports.all())

	// Provenance audit (experiment W3).
	audit := prov.Audit()
	fmt.Printf("Provenance: %d records, %.0f%% with complete chains\n",
		audit.Records, 100*audit.CompleteFraction())
	fmt.Printf("Archive-ready payload: %s across %d artifacts\n",
		interview.FormatBytes(totalBytes(res)), len(res.Artifacts))
}

type tierSizes struct {
	raw      int64
	accepted int
}

// flowOptions carries the event-flow tuning into every pipeline the chain
// builds.
type flowOptions struct {
	workers int
	opts    eventflow.Options
}

// flowReports collects per-pipeline execution reports. The workflow steps
// append to it as they run, so the reports become available after Execute.
type flowReports struct {
	reports []eventflow.Report
}

func (r *flowReports) add(rep eventflow.Report) { r.reports = append(r.reports, rep) }
func (r *flowReports) all() []eventflow.Report  { return r.reports }

// printStageReports renders one row per pipeline stage: throughput
// accounting for the streaming substrate.
func printStageReports(workers, batch int, reports []eventflow.Report) {
	t := texttable.New("Pipeline", "Stage", "Workers", "In", "Out", "Batches", "Busy", "Peak batches", "Recycled", "Fresh")
	t.Title = fmt.Sprintf("Event-flow stages (-workers %d, -batch %d)", workers, batch)
	for i := 2; i < 10; i++ {
		t.SetAlign(i, texttable.Right)
	}
	for _, rep := range reports {
		for _, s := range rep.Stages {
			t.AddRow(rep.Pipeline, s.Name, s.Workers, s.EventsIn, s.EventsOut,
				s.Batches, s.Busy.Round(10*time.Microsecond).String(), s.MaxInFlight,
				s.PoolHits, s.PoolMisses)
		}
	}
	fmt.Println(t)
}

// printRunStatus renders the checkpoint run report: which steps executed
// this invocation, which were restored from verified checkpoints, and
// what the ledger holds per step.
func printRunStatus(ledger *checkpoint.Ledger, res *workflow.Result, resumed bool) {
	t := texttable.New("Step", "Outcome", "Ledger", "Artifacts", "Bytes", "Events")
	mode := "checkpointed"
	if resumed {
		mode = "resumed"
	}
	t.Title = fmt.Sprintf("Run status (%s, ledger %s)", mode, ledger.Dir())
	for i := 3; i < 6; i++ {
		t.SetAlign(i, texttable.Right)
	}
	state := make(map[string]checkpoint.StepInfo)
	for _, info := range ledger.Status() {
		state[info.Step] = info
	}
	for _, rep := range res.Reports {
		outcome := "executed"
		if rep.Skipped {
			outcome = "skipped (fixity ok)"
		}
		ledgerState, arts := "-", 0
		if info, ok := state[rep.Step]; ok {
			ledgerState = info.State.String()
			arts = len(info.Artifacts)
		}
		t.AddRow(rep.Step, outcome, ledgerState, arts, rep.OutputBytes, rep.OutputEvents)
	}
	fmt.Println(t)
	fmt.Printf("Run status: %d step(s) executed, %d restored from checkpoint\n",
		res.Executed, res.Skipped)
}

// printTriggerRates renders the online selection's rate table.
func printTriggerRates(trg *trigger.Trigger, accepted int) {
	t := texttable.New("Item", "Prescale", "Accepts", "Fraction")
	t.Title = fmt.Sprintf("Trigger rates (%s, %d events evaluated, %d read out)",
		trg.Menu().Name, trg.Evaluated(), accepted)
	for i := 1; i < 4; i++ {
		t.SetAlign(i, texttable.Right)
	}
	for _, r := range trg.Rates() {
		t.AddRow(r.Item, r.Prescale, r.Accepts, fmt.Sprintf("%.1f%%", 100*r.Fraction))
	}
	fmt.Println(t)
}

// buildWorkflow wires the standard chain into the engine. The RAW artifact
// is produced up front by the online pipeline (it is the workflow's
// primary input, as in a real experiment where the detector writes it);
// the offline steps each run their own streaming pipeline.
func buildWorkflow(gen generator.Generator, det *detector.Detector, db *conditions.DB, tag string, run uint32, events int, seed uint64, flow flowOptions) (*workflow.Workflow, map[string]*workflow.Artifact, tierSizes, *flowReports) {
	reports := &flowReports{}

	// Online chain: generate → simulate → trigger → digitize → event-build.
	// Simulation uses per-event RNG streams (SimulateSeeded), so it fans
	// out over workers without perturbing the physics; the trigger keeps
	// one worker because its prescale counters are stateful and
	// order-dependent.
	full := sim.NewFullSim(det, seed)
	trg := trigger.New(trigger.StandardMenu(), det)
	var rawBuf bytes.Buffer
	builder := rawdata.NewWriter(&rawBuf)

	online := eventflow.New(context.Background(), "online", flow.opts)
	hepmcS := eventflow.Source(online, "generate", generator.EventSource(gen, events))
	simS := eventflow.Map(hepmcS, "simulate", flow.workers, full.StageFunc())
	trigS := eventflow.Map(simS, "trigger", 1, func(se *sim.Event) (*sim.Event, bool, error) {
		return se, trg.Evaluate(se).Accepted, nil
	})
	rawS := eventflow.Map(trigS, "digitize", flow.workers, rawdata.DigitizeFunc(run))
	eventflow.Sink(rawS, "event-build", builder.Write)
	if err := online.Wait(); err != nil {
		log.Fatal(err)
	}
	reports.add(online.Report())
	accepted := builder.Count()
	printTriggerRates(trg, accepted)

	recoCfg := reco.DefaultConfig()
	recoVersion := reco.New(det).Version
	snap := db.Snapshot(tag, run)

	wf := &workflow.Workflow{
		Name:          "standard-chain",
		ConditionsTag: tag,
		PrimaryInputs: []string{"raw.banks"},
		Steps: []workflow.Step{
			{
				Name: "reconstruction", Software: "daspos-reco", Version: recoVersion,
				Config:  map[string]string{"geometry": det.Name + "/" + det.Version},
				Inputs:  []string{"raw.banks"},
				Outputs: []string{"reco.edm"},
				Run: func(ctx *workflow.Context) error {
					in, err := ctx.InputReader("raw.banks")
					if err != nil {
						return err
					}
					out, err := ctx.StreamOutput("reco.edm", "RECO")
					if err != nil {
						return err
					}
					fw, err := datamodel.NewFileWriter(out, datamodel.TierRECO)
					if err != nil {
						return err
					}
					p := eventflow.New(ctx.Ctx(), "reconstruction", flow.opts)
					src := eventflow.Source(p, "raw-read", rawdata.NewReader(in).Read)
					recoS := eventflow.MapWorkers(src, "reconstruct", flow.workers,
						reco.ParallelStage(det, recoCfg, snap))
					eventflow.Sink(recoS, "reco-write", fw.Write)
					if err := p.Wait(); err != nil {
						return err
					}
					reports.add(p.Report())
					for _, f := range reco.Folders() {
						ctx.External("conditions:" + f)
					}
					if err := fw.Close(); err != nil {
						return err
					}
					return out.Commit(fw.Count())
				},
			},
			{
				Name: "aod-slim", Software: "daspos-datamodel", Version: "1.0",
				Inputs:  []string{"reco.edm"},
				Outputs: []string{"aod.edm"},
				Run:     slimStep(flow, reports),
			},
			{
				Name: "derivation-train", Software: "daspos-skim", Version: "1.0",
				Config:  map[string]string{"train": "DIMUON+MET"},
				Inputs:  []string{"aod.edm"},
				Outputs: []string{"skim.DIMUON", "skim.MET"},
				Run:     trainStep(flow, reports),
			},
		},
	}
	inputs := map[string]*workflow.Artifact{
		"raw.banks": {Name: "raw.banks", Tier: "RAW", Events: accepted, Data: rawBuf.Bytes()},
	}
	return wf, inputs, tierSizes{raw: int64(rawBuf.Len()), accepted: accepted}, reports
}

func slimStep(flow flowOptions, reports *flowReports) workflow.StepFunc {
	return func(ctx *workflow.Context) error {
		in, err := ctx.InputReader("reco.edm")
		if err != nil {
			return err
		}
		fr, err := datamodel.NewFileReader(in)
		if err != nil {
			return err
		}
		out, err := ctx.StreamOutput("aod.edm", "AOD")
		if err != nil {
			return err
		}
		fw, err := datamodel.NewFileWriter(out, datamodel.TierAOD)
		if err != nil {
			return err
		}
		p := eventflow.New(ctx.Ctx(), "aod-slim", flow.opts)
		src := eventflow.Source(p, "reco-read", fr.Read)
		// SlimViewAOD borrows the surviving collections from the RECO event
		// instead of deep-copying them — the AOD tier is a view until the
		// writer serializes it, and the writer is the last stop, so nothing
		// retains the view past the batch handoff.
		aodS := eventflow.Map(src, "slim", flow.workers, func(e *datamodel.Event) (datamodel.Event, bool, error) {
			return e.SlimViewAOD(), true, nil
		})
		eventflow.Sink(aodS, "aod-write", func(e datamodel.Event) error { return fw.Write(&e) })
		if err := p.Wait(); err != nil {
			return err
		}
		reports.add(p.Report())
		if err := fw.Close(); err != nil {
			return err
		}
		return out.Commit(fw.Count())
	}
}

func trainStep(flow flowOptions, reports *flowReports) workflow.StepFunc {
	train := skim.Train{
		Name: "prod-train",
		Derivations: []skim.Derivation{
			{
				Name:      "DIMUON",
				Selection: skim.Selection{Name: "dimuon", Cuts: []skim.Cut{{Variable: "n_muons", Op: skim.OpGE, Value: 2}}},
				Slim:      skim.SlimPolicy{KeepTypes: []datamodel.ObjectType{datamodel.ObjMuon}, DropAux: true},
			},
			{
				Name:      "MET",
				Selection: skim.Selection{Name: "met", Cuts: []skim.Cut{{Variable: "met", Op: skim.OpGT, Value: 30}}},
				Slim:      skim.SlimPolicy{MinCandidatePt: 10},
			},
		},
	}
	return func(ctx *workflow.Context) error {
		in, err := ctx.InputReader("aod.edm")
		if err != nil {
			return err
		}
		fr, err := datamodel.NewFileReader(in)
		if err != nil {
			return err
		}
		// One pass, fan-out sink: every AOD event is offered to every
		// derivation, each writing its own streamed output.
		writers := make([]*workflow.ArtifactWriter, len(train.Derivations))
		files := make([]*datamodel.FileWriter, len(train.Derivations))
		for i, d := range train.Derivations {
			aw, err := ctx.StreamOutput("skim."+d.Name, "DERIVED")
			if err != nil {
				return err
			}
			fw, err := datamodel.NewFileWriter(aw, datamodel.TierDerived)
			if err != nil {
				return err
			}
			writers[i], files[i] = aw, fw
		}
		p := eventflow.New(ctx.Ctx(), "derivation-train", flow.opts)
		src := eventflow.Source(p, "aod-read", fr.Read)
		eventflow.Sink(src, "derive", func(e *datamodel.Event) error {
			for i := range train.Derivations {
				derived, keep, err := train.Derivations[i].Apply(e)
				if err != nil {
					return err
				}
				if !keep {
					continue
				}
				if err := files[i].Write(derived); err != nil {
					return err
				}
			}
			return nil
		})
		if err := p.Wait(); err != nil {
			return err
		}
		reports.add(p.Report())
		for i := range files {
			if err := files[i].Close(); err != nil {
				return err
			}
			if err := writers[i].Commit(files[i].Count()); err != nil {
				return err
			}
		}
		return nil
	}
}

func processID(name string) int {
	for id := generator.ProcMinBias; id <= generator.ProcZPrime; id++ {
		if generator.ProcessName(id) == name {
			return id
		}
	}
	return 0
}

func totalBytes(res *workflow.Result) int64 {
	var n int64
	for _, a := range res.Artifacts {
		n += int64(len(a.Data))
	}
	return n
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func join(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += x
	}
	if out == "" {
		return "(none)"
	}
	return out
}
