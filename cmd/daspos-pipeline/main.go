// Command daspos-pipeline runs the full processing chain of the paper's
// workflow analysis — generation → full simulation → digitization (RAW) →
// reconstruction (RECO) → slimming (AOD) → derivation skims — through the
// workflow engine, and reports the tier-size cascade, the per-step
// external-dependency census, and the provenance audit.
//
// Usage:
//
//	daspos-pipeline [-events N] [-seed S] [-process name] [-pileup MU]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"

	"daspos/internal/conditions"
	"daspos/internal/datamodel"
	"daspos/internal/detector"
	"daspos/internal/generator"
	"daspos/internal/interview"
	"daspos/internal/provenance"
	"daspos/internal/rawdata"
	"daspos/internal/reco"
	"daspos/internal/sim"
	"daspos/internal/skim"
	"daspos/internal/texttable"
	"daspos/internal/trigger"
	"daspos/internal/workflow"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daspos-pipeline: ")
	events := flag.Int("events", 200, "number of events to process")
	seed := flag.Uint64("seed", 42, "generator and simulation seed")
	process := flag.String("process", "drell-yan-z", "physics process (minbias, qcd-dijet, drell-yan-z, w-lepnu, higgs-diphoton)")
	pileup := flag.Float64("pileup", 0, "mean pileup interactions per event")
	flag.Parse()

	procID := processID(*process)
	if procID == 0 {
		log.Fatalf("unknown process %q", *process)
	}
	cfg := generator.DefaultConfig(*seed)
	cfg.PileupMu = *pileup
	gen, err := generator.New(procID, cfg)
	if err != nil {
		log.Fatal(err)
	}

	det := detector.Standard()
	db := conditions.NewDB()
	const tag, run = "prod-v1", 1
	if err := conditions.SeedStandard(db, tag, 1, 100, 10, *seed); err != nil {
		log.Fatal(err)
	}

	wf, inputs, sizes := buildWorkflow(gen, det, db, tag, run, *events)
	prov := provenance.NewStore()
	res, err := wf.Execute(inputs, prov)
	if err != nil {
		log.Fatal(err)
	}

	// Tier-size cascade (experiment W1).
	t := texttable.New("Tier", "Artifact", "Events", "Bytes", "Bytes/event", "Reduction vs RAW")
	t.Title = fmt.Sprintf("Tier-size cascade (%s, %d events, pileup %g)", *process, *events, *pileup)
	for i := 1; i < 7; i++ {
		t.SetAlign(i, texttable.Right)
	}
	raw := float64(sizes.raw)
	row := func(tier, name string, n int, b int64) {
		per := float64(b) / float64(n)
		t.AddRow(tier, name, n, b, fmt.Sprintf("%.0f", per), fmt.Sprintf("%.1fx", raw/float64(b)))
	}
	row("RAW", "raw.banks", sizes.accepted, sizes.raw)
	row("RECO", "reco.edm", sizes.accepted, int64(len(res.Artifacts["reco.edm"].Data)))
	row("AOD", "aod.edm", sizes.accepted, int64(len(res.Artifacts["aod.edm"].Data)))
	for _, name := range []string{"skim.DIMUON", "skim.MET"} {
		a := res.Artifacts[name]
		t.AddRow("DERIVED", name, a.Events, len(a.Data),
			fmt.Sprintf("%.0f", safeDiv(float64(len(a.Data)), float64(a.Events))),
			fmt.Sprintf("%.1fx", raw/float64(len(a.Data))))
	}
	fmt.Println(t)

	// Dependency census (experiment W2).
	d := texttable.New("Step", "External dependencies", "Count")
	d.Title = "External-dependency census per workflow step"
	d.SetAlign(2, texttable.Right)
	for _, rep := range res.Reports {
		d.AddRow(rep.Step, join(rep.ExternalDeps), len(rep.ExternalDeps))
	}
	fmt.Println(d)

	// Provenance audit (experiment W3).
	audit := prov.Audit()
	fmt.Printf("Provenance: %d records, %.0f%% with complete chains\n",
		audit.Records, 100*audit.CompleteFraction())
	fmt.Printf("Archive-ready payload: %s across %d artifacts\n",
		interview.FormatBytes(totalBytes(res)), len(res.Artifacts))
}

type tierSizes struct {
	raw      int64
	accepted int
}

// printTriggerRates renders the online selection's rate table.
func printTriggerRates(trg *trigger.Trigger, accepted int) {
	t := texttable.New("Item", "Prescale", "Accepts", "Fraction")
	t.Title = fmt.Sprintf("Trigger rates (%s, %d events evaluated, %d read out)",
		trg.Menu().Name, trg.Evaluated(), accepted)
	for i := 1; i < 4; i++ {
		t.SetAlign(i, texttable.Right)
	}
	for _, r := range trg.Rates() {
		t.AddRow(r.Item, r.Prescale, r.Accepts, fmt.Sprintf("%.1f%%", 100*r.Fraction))
	}
	fmt.Println(t)
}

// buildWorkflow wires the standard chain into the engine. The RAW artifact
// is produced up front (it is the workflow's primary input, as in a real
// experiment where the detector writes it).
func buildWorkflow(gen generator.Generator, det *detector.Detector, db *conditions.DB, tag string, run uint32, events int) (*workflow.Workflow, map[string]*workflow.Artifact, tierSizes) {
	full := sim.NewFullSim(det, 1)
	trg := trigger.New(trigger.StandardMenu(), det)
	var rawBuf bytes.Buffer
	var raws []*rawdata.Event
	accepted := 0
	for i := 0; i < events; i++ {
		se := full.Simulate(gen.Generate())
		if !trg.Evaluate(se).Accepted {
			continue // not read out: the trigger gate
		}
		accepted++
		raws = append(raws, rawdata.Digitize(run, se))
	}
	if err := rawdata.WriteFile(&rawBuf, raws); err != nil {
		log.Fatal(err)
	}
	printTriggerRates(trg, accepted)

	rec := reco.New(det)
	snap := db.Snapshot(tag, run)

	wf := &workflow.Workflow{
		Name:          "standard-chain",
		ConditionsTag: tag,
		PrimaryInputs: []string{"raw.banks"},
		Steps: []workflow.Step{
			{
				Name: "reconstruction", Software: "daspos-reco", Version: rec.Version,
				Config:  map[string]string{"geometry": det.Name + "/" + det.Version},
				Inputs:  []string{"raw.banks"},
				Outputs: []string{"reco.edm"},
				Run: func(ctx *workflow.Context) error {
					in, err := ctx.Input("raw.banks")
					if err != nil {
						return err
					}
					rawEvents, err := rawdata.ReadFile(bytes.NewReader(in.Data))
					if err != nil {
						return err
					}
					var recoEvents []*datamodel.Event
					for _, r := range rawEvents {
						ev, err := rec.Reconstruct(r, snap)
						if err != nil {
							return err
						}
						for _, f := range rec.TouchedFolders() {
							ctx.External("conditions:" + f)
						}
						recoEvents = append(recoEvents, ev)
					}
					var buf bytes.Buffer
					if _, err := datamodel.WriteEvents(&buf, datamodel.TierRECO, recoEvents); err != nil {
						return err
					}
					return ctx.Output("reco.edm", "RECO", len(recoEvents), buf.Bytes())
				},
			},
			{
				Name: "aod-slim", Software: "daspos-datamodel", Version: "1.0",
				Inputs:  []string{"reco.edm"},
				Outputs: []string{"aod.edm"},
				Run:     slimStep(),
			},
			{
				Name: "derivation-train", Software: "daspos-skim", Version: "1.0",
				Config:  map[string]string{"train": "DIMUON+MET"},
				Inputs:  []string{"aod.edm"},
				Outputs: []string{"skim.DIMUON", "skim.MET"},
				Run:     trainStep(),
			},
		},
	}
	inputs := map[string]*workflow.Artifact{
		"raw.banks": {Name: "raw.banks", Tier: "RAW", Events: len(raws), Data: rawBuf.Bytes()},
	}
	return wf, inputs, tierSizes{raw: int64(rawBuf.Len()), accepted: len(raws)}
}

func slimStep() workflow.StepFunc {
	return func(ctx *workflow.Context) error {
		in, err := ctx.Input("reco.edm")
		if err != nil {
			return err
		}
		_, events, err := datamodel.ReadEvents(bytes.NewReader(in.Data))
		if err != nil {
			return err
		}
		var aod []*datamodel.Event
		for _, e := range events {
			aod = append(aod, e.SlimToAOD())
		}
		var buf bytes.Buffer
		if _, err := datamodel.WriteEvents(&buf, datamodel.TierAOD, aod); err != nil {
			return err
		}
		return ctx.Output("aod.edm", "AOD", len(aod), buf.Bytes())
	}
}

func trainStep() workflow.StepFunc {
	train := skim.Train{
		Name: "prod-train",
		Derivations: []skim.Derivation{
			{
				Name:      "DIMUON",
				Selection: skim.Selection{Name: "dimuon", Cuts: []skim.Cut{{Variable: "n_muons", Op: skim.OpGE, Value: 2}}},
				Slim:      skim.SlimPolicy{KeepTypes: []datamodel.ObjectType{datamodel.ObjMuon}, DropAux: true},
			},
			{
				Name:      "MET",
				Selection: skim.Selection{Name: "met", Cuts: []skim.Cut{{Variable: "met", Op: skim.OpGT, Value: 30}}},
				Slim:      skim.SlimPolicy{MinCandidatePt: 10},
			},
		},
	}
	return func(ctx *workflow.Context) error {
		in, err := ctx.Input("aod.edm")
		if err != nil {
			return err
		}
		_, events, err := datamodel.ReadEvents(bytes.NewReader(in.Data))
		if err != nil {
			return err
		}
		outputs, _, err := train.Run(events)
		if err != nil {
			return err
		}
		for name, derived := range outputs {
			var buf bytes.Buffer
			if _, err := datamodel.WriteEvents(&buf, datamodel.TierDerived, derived); err != nil {
				return err
			}
			if err := ctx.Output("skim."+name, "DERIVED", len(derived), buf.Bytes()); err != nil {
				return err
			}
		}
		return nil
	}
}

func processID(name string) int {
	for id := generator.ProcMinBias; id <= generator.ProcZPrime; id++ {
		if generator.ProcessName(id) == name {
			return id
		}
	}
	return 0
}

func totalBytes(res *workflow.Result) int64 {
	var n int64
	for _, a := range res.Artifacts {
		n += int64(len(a.Data))
	}
	return n
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func join(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += x
	}
	if out == "" {
		return "(none)"
	}
	return out
}
