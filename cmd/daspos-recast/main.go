// Command daspos-recast runs the RECAST front end, or a complete local
// demonstration of the reinterpretation loop.
//
// Usage:
//
//	daspos-recast serve [-addr :8080] [-backend fullsim|bridge]
//	                    [-journal-dir DIR] [-workers N] [-queue-bound N]
//	                    [-degraded-bound N] [-tenant-rate R] [-tenant-burst B]
//	                    [-auto-approve=false]
//	daspos-recast demo  [-backend fullsim|bridge] [-mass M] [-events N]
//	daspos-recast scan  [-backend ...] [-from M0 -to M1 -step dM] [-xsec PB]
//
// serve starts the overload-safe multi-tenant front end with the high-mass
// dimuon search subscribed: submissions are rate-limited per tenant, queued
// in a crash-safe fair queue under -journal-dir, and processed by -workers
// back-end workers; GET /status reports queue depth, breaker state, and
// per-tenant counters. demo submits a Z′ request against an in-process
// service, walks the approval workflow, and prints the result; scan walks
// the mass plane and prints the limit table with exclusion verdicts.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"daspos/internal/bridge"
	"daspos/internal/conditions"
	"daspos/internal/datamodel"
	"daspos/internal/detector"
	"daspos/internal/leshouches"
	"daspos/internal/recast"
	"daspos/internal/texttable"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daspos-recast: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: daspos-recast {serve|demo|scan} [flags]")
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "demo":
		demo(os.Args[2:])
	case "scan":
		scan(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q", os.Args[1])
	}
}

func scan(args []string) {
	fs := flag.NewFlagSet("scan", flag.ExitOnError)
	backendName := fs.String("backend", "bridge", "processing back end (fullsim or bridge)")
	events := fs.Int("events", 200, "Monte Carlo statistics per point")
	seed := fs.Uint64("seed", 11, "generation seed")
	xsec := fs.Float64("xsec", 0.001, "model cross section in pb (0 disables exclusion verdicts)")
	lo := fs.Float64("from", 400, "first mass point (GeV)")
	hi := fs.Float64("to", 2400, "last mass point (GeV)")
	step := fs.Float64("step", 400, "mass step (GeV)")
	_ = fs.Parse(args)

	svc := newService(*backendName)
	base := recast.ModelSpec{Process: "zprime", Events: *events, Seed: *seed, CrossSectionPb: *xsec}
	var masses []float64
	for m := *lo; m <= *hi; m += *step {
		masses = append(masses, m)
	}
	points, err := recast.MassScan(svc, "GPD_2013_DIMUON_HIGHMASS", "theorist@example", base, masses)
	if err != nil {
		log.Fatal(err)
	}
	t := texttable.New("m(Z') [GeV]", "Acceptance", "UL [events]", "UL [pb]", "Predicted", "Excluded")
	t.Title = fmt.Sprintf("Z' mass scan (%s back end, %d events/point, sigma=%g pb)", *backendName, *events, *xsec)
	for i := 1; i < 6; i++ {
		t.SetAlign(i, texttable.Right)
	}
	for _, p := range points {
		r := p.Result
		t.AddRow(p.MassGeV,
			fmt.Sprintf("%.3f", r.Acceptance),
			fmt.Sprintf("%.2f", r.UpperLimitEvents),
			fmt.Sprintf("%.3g", r.UpperLimitXsecPb),
			fmt.Sprintf("%.1f", r.PredictedEvents),
			r.Excluded)
	}
	fmt.Println(t)
}

func newService(backendName string) *recast.Service {
	var backend recast.Backend
	switch backendName {
	case "fullsim":
		det := detector.Standard()
		db := conditions.NewDB()
		if err := conditions.SeedStandard(db, "prod-v1", 1, 100, 10, 1); err != nil {
			log.Fatal(err)
		}
		backend = &recast.FullSimBackend{Det: det, CondDB: db, Tag: "prod-v1", Run: 1, LuminosityPb: 20000}
	case "bridge":
		backend = &bridge.RivetBackend{LuminosityPb: 20000}
	default:
		log.Fatalf("unknown backend %q (want fullsim or bridge)", backendName)
	}
	svc := recast.NewService(backend)
	if err := svc.Subscribe(recast.Subscription{
		Name:        "GPD_2013_DIMUON_HIGHMASS",
		Description: "High-mass opposite-sign dimuon search, 20/fb",
		Record:      highMassSearch(),
	}); err != nil {
		log.Fatal(err)
	}
	return svc
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	backendName := fs.String("backend", "fullsim", "processing back end (fullsim or bridge)")
	journalDir := fs.String("journal-dir", "recast-data", "directory for the request and queue journals (crash recovery)")
	workers := fs.Int("workers", 2, "back-end worker pool size")
	queueBound := fs.Int("queue-bound", 64, "queued entries before new submissions shed with 429")
	degradedBound := fs.Int("degraded-bound", 0, "intake bound while the back end browns out (0 = queue-bound/4)")
	tenantRate := fs.Float64("tenant-rate", 0, "per-tenant sustained admissions per second (0 = unlimited)")
	tenantBurst := fs.Float64("tenant-burst", 8, "per-tenant burst allowance above the sustained rate")
	autoApprove := fs.Bool("auto-approve", true, "queue work at submission without the experiment's manual sign-off")
	_ = fs.Parse(args)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	svc := newService(*backendName)
	srv, err := recast.NewServer(ctx, svc, recast.ServerConfig{
		JournalDir:    *journalDir,
		Workers:       *workers,
		QueueBound:    *queueBound,
		DegradedBound: *degradedBound,
		TenantRate:    *tenantRate,
		TenantBurst:   *tenantBurst,
		AutoApprove:   *autoApprove,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv.Start()
	hs := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		log.Print("shutting down")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = hs.Shutdown(sctx)
	}()
	log.Printf("RECAST front end on %s (backend %s, %d workers, journal %s)",
		*addr, *backendName, *workers, *journalDir)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	// Drain the worker pool and close the journals; accepted-but-unrun
	// work replays from the queue journal on the next start.
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}

func demo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	backendName := fs.String("backend", "bridge", "processing back end (fullsim or bridge)")
	mass := fs.Float64("mass", 1000, "Z' pole mass in GeV")
	events := fs.Int("events", 300, "Monte Carlo statistics")
	seed := fs.Uint64("seed", 11, "generation seed")
	_ = fs.Parse(args)

	svc := newService(*backendName)
	model := recast.ModelSpec{Process: "zprime", MassGeV: *mass, Events: *events, Seed: *seed}
	req, err := svc.Submit("GPD_2013_DIMUON_HIGHMASS", "theorist@example", "constrain Z' couplings", model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s: Z' m=%g GeV, %d events\n", req.ID, *mass, *events)
	if err := svc.Approve(req.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("approved by experiment")
	done, err := svc.Process(req.ID)
	if err != nil {
		log.Fatal(err)
	}
	r := done.Result
	fmt.Printf("processed by %s back end:\n", r.BackEnd)
	fmt.Printf("  cut flow:            %v\n", r.CutFlow)
	fmt.Printf("  acceptance:          %.3f (%d/%d)\n", r.Acceptance, r.Selected, r.Generated)
	fmt.Printf("  95%% CL limit:        %.2f signal events\n", r.UpperLimitEvents)
	fmt.Printf("  cross-section limit: %.4g pb at 20/fb\n", r.UpperLimitXsecPb)
}

func highMassSearch() *leshouches.AnalysisRecord {
	return &leshouches.AnalysisRecord{
		Name:        "GPD_2013_DIMUON_HIGHMASS",
		Description: "High-mass dimuon resonance search",
		Objects: []leshouches.ObjectDefinition{
			{Name: "sig_muon", Type: datamodel.ObjMuon, MinPt: 30, MaxAbsEta: 2.4},
		},
		Selection: []leshouches.Cut{
			{Variable: "count:sig_muon", Op: ">=", Value: 2},
			{Variable: "os_pair:sig_muon", Op: "==", Value: 1},
			{Variable: "inv_mass:sig_muon", Op: ">", Value: 400},
		},
		Background:     4.2,
		ObservedEvents: 5,
	}
}
