// Command daspos-interview renders the paper's assessment artifacts: the
// Table 1 outreach matrix, the Appendix A maturity-rating tables, and the
// data-interview reports for the built-in experiment profiles.
//
// Usage:
//
//	daspos-interview table1          Table 1 outreach matrix
//	daspos-interview appendix        Appendix A maturity tables
//	daspos-interview report [NAME]   full interview report(s)
//	daspos-interview compare         cross-experiment maturity matrix
package main

import (
	"fmt"
	"log"
	"os"

	"daspos/internal/interview"
	"daspos/internal/outreach"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("daspos-interview: ")
	cmd := "compare"
	if len(os.Args) > 1 {
		cmd = os.Args[1]
	}
	switch cmd {
	case "table1":
		fmt.Println(outreach.Table1())
	case "appendix":
		for _, a := range interview.Areas() {
			fmt.Println(interview.MaturityTable(a))
		}
	case "report":
		profiles := interview.StandardProfiles()
		if len(os.Args) > 2 {
			profiles = filterByName(profiles, os.Args[2])
			if len(profiles) == 0 {
				log.Fatalf("no profile %q", os.Args[2])
			}
		}
		for _, iv := range profiles {
			fmt.Printf("=== %s (%s) ===\n", iv.Name, iv.Dept)
			fmt.Printf("Data: %s\n", iv.DataDescription)
			fmt.Printf("Total volume: %s; external deps: %v\n\n",
				interview.FormatBytes(iv.TotalBytes()), iv.ExternalDependencies())
			fmt.Println(iv.LifecycleTable())
			fmt.Println(iv.RatingsTable())
			fmt.Println(iv.SharingGridTable())
		}
	case "compare":
		fmt.Println(interview.Comparison(interview.StandardProfiles()))
	default:
		log.Fatalf("unknown subcommand %q (want table1, appendix, report, compare)", cmd)
	}
}

func filterByName(ps []*interview.Interview, name string) []*interview.Interview {
	var out []*interview.Interview
	for _, p := range ps {
		if p.Name == name {
			out = append(out, p)
		}
	}
	return out
}
