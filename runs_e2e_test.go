package daspos

import (
	"testing"

	"daspos/internal/bridge"
	"daspos/internal/datamodel"
	"daspos/internal/generator"
	"daspos/internal/leshouches"
	"daspos/internal/runs"
	"daspos/internal/sim"
)

// TestGoodRunListScopesReinterpretation ties the run bookkeeping to the
// physics: the data-quality filter drops bad-run events, and the archived
// good-run list's frozen luminosity is what converts the event limit into
// a cross-section limit.
func TestGoodRunListScopesReinterpretation(t *testing.T) {
	reg := runs.NewRegistry()
	for run := uint32(1); run <= 10; run++ {
		if err := reg.Add(run, 1000, 2000); err != nil { // 2/fb per run
			t.Fatal(err)
		}
		q := runs.QualityGood
		var defects []string
		if run == 4 {
			q, defects = runs.QualityBad, []string{"ecal hole"}
		}
		if err := reg.SetQuality(run, q, defects...); err != nil {
			t.Fatal(err)
		}
	}
	grl := reg.BuildGoodRunList("physics", "v2")
	if grl.LumiPb != 18000 { // 9 good runs x 2/fb
		t.Fatalf("GRL lumi %v", grl.LumiPb)
	}
	// The list round-trips through its archival form before use, as a
	// preserved analysis would consume it.
	data, err := grl.Encode()
	if err != nil {
		t.Fatal(err)
	}
	archived, err := runs.DecodeGoodRunList(data)
	if err != nil {
		t.Fatal(err)
	}

	// Build a fast-simulated sample spread across the ten runs.
	gen := generator.NewZPrime(generator.DefaultConfig(5), 1500)
	fast := sim.NewFastSim(5)
	var events []*datamodel.Event
	for i := 0; i < 200; i++ {
		ev := gen.Generate()
		e := bridge.EventFromFastObjects(uint64(i), fast.Simulate(ev))
		e.Run = uint32(i%10 + 1)
		events = append(events, e)
	}
	selected := archived.SelectEvents(events)
	if len(selected) != 180 { // run 4's 20 events dropped
		t.Fatalf("DQ-selected events: %d", len(selected))
	}
	record := dimuonSearchRecord()
	rei, err := leshouches.Reinterpret(record, selected, archived.LumiPb)
	if err != nil {
		t.Fatal(err)
	}
	if rei.Generated != 180 || rei.UpperLimitXsecPb <= 0 {
		t.Fatalf("reinterpretation: %+v", rei)
	}
	// Less luminosity (a stricter GRL) must weaken the cross-section limit.
	reiHalf, err := leshouches.Reinterpret(record, selected, archived.LumiPb/2)
	if err != nil {
		t.Fatal(err)
	}
	if reiHalf.UpperLimitXsecPb <= rei.UpperLimitXsecPb {
		t.Fatalf("limit did not weaken with lumi: %v vs %v",
			reiHalf.UpperLimitXsecPb, rei.UpperLimitXsecPb)
	}
}
