package daspos

// The RECAST overload chaos e2e: 2000+ requests from four tenants — one
// flooding — driven through the real HTTP front door into the multi-tenant
// server, with a slow flaky back end underneath and a full server
// crash+restart in the middle of the run. The test holds the PR's four
// overload-safety properties at once: every admitted request reaches a
// terminal state (across the crash), every shed request gets a 429 with
// Retry-After, the flood cannot push polite tenants' p99 latency beyond
// their fair share, and duplicate models are answered from the archive
// without re-running the chain.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"daspos/internal/faults"
	"daspos/internal/leshouches"
	"daspos/internal/recast"
	"daspos/internal/resilience"
)

// chaosChainBackend is the cheap deterministic reinterpretation chain under
// the fault injector: it counts runs per model seed, which is how the test
// proves dedup followers never re-ran the chain.
type chaosChainBackend struct {
	mu   sync.Mutex
	runs map[uint64]int
}

func (b *chaosChainBackend) Name() string         { return "chaos-chain" }
func (b *chaosChainBackend) ConfigDigest() string { return "chaos-chain-v1" }

func (b *chaosChainBackend) Process(ctx context.Context, model recast.ModelSpec, record *leshouches.AnalysisRecord) (*recast.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.mu.Lock()
	b.runs[model.Seed]++
	b.mu.Unlock()
	return &recast.Result{
		Analysis: record.Name, BackEnd: "chaos-chain",
		Generated: model.Events, Selected: model.Events / 2, Acceptance: 0.5,
	}, nil
}

func (b *chaosChainBackend) runsFor(seed uint64) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.runs[seed]
}

// newChaosRecastServer builds a started server over the shared chain: slow
// (2–6ms per run), 1% transient failures, 4 workers, per-tenant rate 50/s
// with a 300-token burst so the flood's opening salvo is admitted and must
// be scheduled fairly rather than shed at the door.
func newChaosRecastServer(t *testing.T, dir string, chain *chaosChainBackend, seed uint64) *recast.Server {
	t.Helper()
	inj := faults.NewInjector(seed).
		WithLatencyRange(4*time.Millisecond, 10*time.Millisecond).
		WithErrorRate(0.01)
	svc := recast.NewService(&faults.SlowBackend[recast.ModelSpec, *recast.Result]{Inner: chain, Inj: inj})
	if err := svc.Subscribe(recast.Subscription{
		Name:        "E2E_DIMUON_HIGHMASS",
		Description: "overload chaos e2e",
		Record:      dimuonSearchRecord(),
	}); err != nil {
		t.Fatal(err)
	}
	srv, err := recast.NewServer(context.Background(), svc, recast.ServerConfig{
		JournalDir:  dir,
		Workers:     4,
		QueueBound:  2000,
		TenantRate:  50,
		TenantBurst: 300,
		AutoApprove: true,
		Policy:      resilience.Policy{MaxAttempts: 3, BaseDelay: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	return srv
}

func TestRecastOverloadChaosE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("overload chaos e2e is seconds-long; skipped in -short")
	}
	dir := t.TempDir()
	chain := &chaosChainBackend{runs: map[uint64]int{}}

	var (
		cur    atomic.Pointer[recast.Server]
		swapMu sync.RWMutex // held R by submitters, W by the crasher
	)
	cur.Store(newChaosRecastServer(t, dir, chain, 1))
	defer func() { _ = cur.Load().Close() }()
	hts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cur.Load().Handler().ServeHTTP(w, r)
	}))
	defer hts.Close()

	// One flooding tenant against three polite ones, 2030 submissions in
	// total. The polite tenants stay under their fair share of the four
	// workers; the flood's ~8ms-spaced bursts exceed its rate limit many
	// times over.
	shapes := []faults.TenantShape{
		{Tenant: "flood", Requests: 1130, MeanGap: 2 * time.Millisecond, Burst: 8},
		{Tenant: "alice", Requests: 300, MeanGap: 20 * time.Millisecond, DedupEvery: 4},
		{Tenant: "bob", Requests: 300, MeanGap: 20 * time.Millisecond},
		{Tenant: "carol", Requests: 300, MeanGap: 25 * time.Millisecond, Burst: 2},
	}
	sched := faults.MixedTenantSchedule(2026, shapes)
	if len(sched) < 2000 {
		t.Fatalf("schedule has %d arrivals, the drill needs 2000+", len(sched))
	}
	byTenant := map[string][]faults.Arrival{}
	for _, a := range sched {
		byTenant[a.Tenant] = append(byTenant[a.Tenant], a)
	}

	var (
		recMu      sync.Mutex
		admitted   = map[string]int{}
		shed       = map[string]int{}
		dedupDone  = map[string]int{}
		latencies  = map[string][]time.Duration{}
		preCrash   atomic.Int64 // admissions before the crash, for the loss check
		crashed    atomic.Bool
		submitters sync.WaitGroup
		pollers    sync.WaitGroup
	)
	start := time.Now()

	// The crasher: one second in, tear down the whole server — workers,
	// queue handle, journals — and bring up a fresh one over the same
	// directory with a new Service that must replay both journals.
	crashDone := make(chan struct{})
	go func() {
		defer close(crashDone)
		time.Sleep(1 * time.Second)
		swapMu.Lock()
		defer swapMu.Unlock()
		old := cur.Load()
		if err := old.Close(); err != nil {
			t.Errorf("crash close: %v", err)
		}
		cur.Store(newChaosRecastServer(t, dir, chain, 2))
		crashed.Store(true)
	}()

	type pending struct {
		id string
		t0 time.Time
	}
	for tenant, arrivals := range byTenant {
		accepted := make(chan pending, len(arrivals))
		submitters.Add(1)
		go func(tenant string, arrivals []faults.Arrival) {
			defer submitters.Done()
			defer close(accepted)
			c := &recast.Client{BaseURL: hts.URL}
			for _, a := range arrivals {
				if d := a.At - time.Since(start); d > 0 {
					time.Sleep(d)
				}
				model := recast.ModelSpec{
					Process: "zprime", MassGeV: 900, Events: 50, Seed: a.ModelSeed,
				}
				swapMu.RLock()
				ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
				req, err := c.SubmitCtx(ctx, "E2E_DIMUON_HIGHMASS", tenant, "", model)
				cancel()
				swapMu.RUnlock()
				if err != nil {
					var herr *recast.HTTPError
					if errors.As(err, &herr) && herr.Status == http.StatusTooManyRequests {
						if herr.RetryAfter <= 0 {
							t.Errorf("%s shed without a Retry-After hint: %v", tenant, err)
						}
						recMu.Lock()
						shed[tenant]++
						recMu.Unlock()
						continue
					}
					t.Errorf("%s submit: %v", tenant, err)
					continue
				}
				recMu.Lock()
				admitted[tenant]++
				recMu.Unlock()
				if !crashed.Load() {
					preCrash.Add(1)
				}
				accepted <- pending{id: req.ID, t0: time.Now()}
			}
		}(tenant, arrivals)

		// One poller per tenant chases its admitted requests to their
		// terminal states — across the restart if need be — scanning the
		// outstanding set on a coarse tick so thousands of requests don't
		// need thousands of goroutines.
		pollers.Add(1)
		go func(tenant string) {
			defer pollers.Done()
			outstanding := map[string]time.Time{}
			deadline := time.Now().Add(90 * time.Second)
			open := true
			for (open || len(outstanding) > 0) && time.Now().Before(deadline) {
				drain := true
				for drain {
					select {
					case p, ok := <-accepted:
						if !ok {
							open = false
							drain = false
							break
						}
						outstanding[p.id] = p.t0
					default:
						drain = false
					}
				}
				for id, t0 := range outstanding {
					got, err := cur.Load().Service().Get(id)
					if err != nil {
						// The id can be missing for one beat mid-swap while
						// the new service replays; retry, never give up.
						continue
					}
					switch got.Status {
					case recast.StatusDone, recast.StatusFailed:
						recMu.Lock()
						latencies[tenant] = append(latencies[tenant], time.Since(t0))
						if got.DedupOf != "" {
							dedupDone[tenant]++
						}
						recMu.Unlock()
						delete(outstanding, id)
					}
				}
				time.Sleep(5 * time.Millisecond)
			}
			for id := range outstanding {
				t.Errorf("admitted request %s (%s) never reached a terminal state", id, tenant)
			}
		}(tenant)
	}
	submitters.Wait()
	<-crashDone
	pollers.Wait()
	elapsed := time.Since(start)

	// The crash must have happened while accepted work was still in
	// flight, or the restart proved nothing.
	if !crashed.Load() {
		t.Fatal("the crasher never ran")
	}
	if preCrash.Load() == 0 {
		t.Fatal("no admissions before the crash; the loss check is vacuous")
	}
	srv := cur.Load()
	if st := srv.Queue().Stats(); st.Queued != 0 || st.Claimed != 0 {
		t.Fatalf("queue not drained after the run: %+v", st)
	}

	recMu.Lock()
	defer recMu.Unlock()
	totalAdmitted, totalShed := 0, 0
	for _, n := range admitted {
		totalAdmitted += n
	}
	for _, n := range shed {
		totalShed += n
	}
	for tenant, n := range admitted {
		if done := len(latencies[tenant]); done != n {
			t.Errorf("%s: %d admitted but only %d reached a terminal state", tenant, n, done)
		}
	}
	if totalShed == 0 {
		t.Fatal("the flood was never shed; admission control did not engage")
	}
	if shed["flood"] == 0 {
		t.Error("the flooding tenant was never rate-limited")
	}

	// Fairness: polite tenants stay under their fair-share latency bound
	// even with the flood's 300-deep admitted backlog in the queue. A FIFO
	// queue would put every early polite request behind that backlog —
	// over half a second of work at ~7ms per run on four workers, and
	// growing while the flood keeps being admitted at its token rate; the
	// fair queue must keep polite p99 far below that, while the flood
	// waits behind itself.
	const politeBound = 600 * time.Millisecond
	floodP99 := durPercentile(latencies["flood"], 99)
	for _, tenant := range []string{"alice", "bob", "carol"} {
		p99 := durPercentile(latencies[tenant], 99)
		if p99 > politeBound {
			t.Errorf("%s p99 = %v, beyond the %v fair-share bound", tenant, p99, politeBound)
		}
		if p99 >= floodP99 {
			t.Errorf("%s p99 %v not below the flood's own %v: the flood should only queue behind itself",
				tenant, p99, floodP99)
		}
	}

	// Dedup: alice resubmits her first model every 4th request; followers
	// must be answered from the archive, not re-run. The chain may run the
	// primary a handful of times (transient-failure retries), but nothing
	// close to once per duplicate.
	aliceSeed := byTenant["alice"][0].ModelSeed
	dupSubmissions := 0
	for _, a := range byTenant["alice"] {
		if a.ModelSeed == aliceSeed {
			dupSubmissions++
		}
	}
	if dupSubmissions < 10 {
		t.Fatalf("schedule produced only %d duplicate submissions for alice", dupSubmissions)
	}
	if dedupDone["alice"] == 0 {
		t.Error("none of alice's duplicate requests was answered from the archive")
	}
	if runs := chain.runsFor(aliceSeed); runs >= dupSubmissions/2 {
		t.Errorf("chain ran %d times for alice's duplicated model (%d submissions): dedup not engaging", runs, dupSubmissions)
	}
	status := srv.Status()
	if status.DedupHits == 0 {
		t.Error("server counters recorded no dedup hits")
	}

	t.Logf("%d arrivals in %v: admitted %d (pre-crash %d), shed %d, flood p99 %v, alice/bob/carol p99 %v/%v/%v, dedup hits %d",
		len(sched), elapsed.Round(time.Millisecond), totalAdmitted, preCrash.Load(), totalShed, floodP99.Round(time.Millisecond),
		durPercentile(latencies["alice"], 99).Round(time.Millisecond),
		durPercentile(latencies["bob"], 99).Round(time.Millisecond),
		durPercentile(latencies["carol"], 99).Round(time.Millisecond),
		status.DedupHits)
}

// durPercentile reports the p-th percentile (nearest-rank) of a sample.
func durPercentile(ds []time.Duration, p int) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := (p*len(sorted)+99)/100 - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
