package daspos

// End-to-end integration tests: each test exercises a complete
// paper-level scenario across many packages, catching wiring regressions
// that per-package unit tests cannot see.

import (
	"bytes"
	"context"
	"testing"

	"daspos/internal/archive"
	"daspos/internal/bridge"
	"daspos/internal/conditions"
	"daspos/internal/core"
	"daspos/internal/datamodel"
	"daspos/internal/detector"
	"daspos/internal/envcapture"
	"daspos/internal/generator"
	"daspos/internal/leshouches"
	"daspos/internal/outreach"
	"daspos/internal/provenance"
	"daspos/internal/rawdata"
	"daspos/internal/recast"
	"daspos/internal/reco"
	"daspos/internal/rivet"
	"daspos/internal/sim"
	"daspos/internal/skim"
	"daspos/internal/workflow"
)

// TestEndToEndPreservationLoop runs the complete loop:
// data production with provenance → capsule assembly → archive persistence
// → reload decades later → reinterpretation and environment check.
func TestEndToEndPreservationLoop(t *testing.T) {
	// --- production era ---
	d := detectorWithConditions(t)
	prov := provenance.NewStore()
	wf := productionWorkflow(t, d)
	res, err := wf.Execute(context.Background(), map[string]*workflow.Artifact{
		"raw.banks": rawArtifact(t, d.det, 60),
	}, prov)
	if err != nil {
		t.Fatal(err)
	}
	if prov.Audit().CompleteFraction() != 1 {
		t.Fatal("production provenance incomplete")
	}

	// Reference data from the preserved truth-level analysis.
	run, err := rivet.NewRun("DASPOS_2013_ZMUMU")
	if err != nil {
		t.Fatal(err)
	}
	g := generator.NewDrellYanZ(generator.DefaultConfig(50))
	for i := 0; i < 1500; i++ {
		if err := run.Process(g.Generate()); err != nil {
			t.Fatal(err)
		}
	}
	if err := run.Finalize(); err != nil {
		t.Fatal(err)
	}
	reference, err := run.ExportYODA()
	if err != nil {
		t.Fatal(err)
	}

	reg := envcapture.StandardRegistry()
	_, cur, next := envcapture.StandardPlatforms()
	env, err := envcapture.Capture(reg, "e2e", cur, envcapture.PkgRef{Name: "recast-backend", Version: "0.7"})
	if err != nil {
		t.Fatal(err)
	}
	desc, err := wf.Description()
	if err != nil {
		t.Fatal(err)
	}
	capsule := &core.Capsule{
		Title: "e2e dimuon capsule", Creator: "integration-test",
		ConditionsTag: "e2e-v1",
		Analysis:      dimuonSearchRecord(),
		Reference:     reference,
		Environment:   env,
		Provenance:    prov,
		Workflow:      desc,
	}
	store := archive.New()
	id, err := capsule.Ingest(store)
	if err != nil {
		t.Fatal(err)
	}

	// Persist the whole archive to bytes and reload: the cold-storage trip.
	var cold bytes.Buffer
	if err := store.Persist(&cold); err != nil {
		t.Fatal(err)
	}
	thawed, err := archive.ReadFrom(bytes.NewReader(cold.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// --- reuse era ---
	loaded, err := core.FromArchive(thawed, id)
	if err != nil {
		t.Fatal(err)
	}
	// 1. The provenance chain survived and still audits complete.
	if rep := loaded.AuditProvenance(); rep.CompleteFraction() != 1 || rep.Records != prov.Len() {
		t.Fatalf("provenance after thaw: %+v", rep)
	}
	// 2. The workflow description is still parseable and valid.
	if _, err := workflow.FromDescription(loaded.Workflow); err != nil {
		t.Fatal(err)
	}
	// 3. The environment check plans a migration to the next platform.
	plan, err := loaded.CheckEnvironment(reg, next)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.OK() || len(plan.Upgrades) == 0 {
		t.Fatalf("migration plan: %+v", plan)
	}
	// 4. A fresh re-run validates against the archived reference.
	rerun, _ := rivet.NewRun("DASPOS_2013_ZMUMU")
	g2 := generator.NewDrellYanZ(generator.DefaultConfig(51))
	for i := 0; i < 1500; i++ {
		_ = rerun.Process(g2.Generate())
	}
	_ = rerun.Finalize()
	outcomes, err := loaded.ValidateRerun(rerun.Histograms())
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range outcomes {
		if o.MissingReference || !o.Chi2.Compatible(1e-4) {
			t.Fatalf("rerun validation failed for %s (p=%v)", o.Histogram, o.Chi2.PValue)
		}
	}
	// 5. The archived selection reinterprets a new model.
	gen := generator.NewZPrime(generator.DefaultConfig(52), 1500)
	fast := sim.NewFastSim(52)
	var events []*datamodel.Event
	for i := 0; i < 120; i++ {
		ev := gen.Generate()
		events = append(events, bridge.EventFromFastObjects(uint64(i), fast.Simulate(ev)))
	}
	rei, err := loaded.Reinterpret(events, 20000)
	if err != nil {
		t.Fatal(err)
	}
	if rei.Acceptance <= 0.2 || rei.UpperLimitXsecPb <= 0 {
		t.Fatalf("reinterpretation: %+v", rei)
	}
	_ = res
}

// TestRecastOverHTTPWithBridgeBackend runs the reinterpretation loop over
// the real HTTP front end with the bridge back end and cross-checks the
// full-sim tier in-process.
func TestRecastOverHTTPWithBridgeBackend(t *testing.T) {
	d := detectorWithConditions(t)
	model := recast.ModelSpec{Process: "zprime", MassGeV: 1000, Events: 80, Seed: 60}

	bridgeSvc := recast.NewService(&bridge.RivetBackend{LuminosityPb: 20000})
	if err := bridgeSvc.Subscribe(recast.Subscription{Name: dimuonSearchRecord().Name, Record: dimuonSearchRecord()}); err != nil {
		t.Fatal(err)
	}
	req, err := bridgeSvc.Submit(dimuonSearchRecord().Name, "e2e", "", model)
	if err != nil {
		t.Fatal(err)
	}
	if err := bridgeSvc.Approve(req.ID); err != nil {
		t.Fatal(err)
	}
	bridged, err := bridgeSvc.Process(req.ID)
	if err != nil {
		t.Fatal(err)
	}

	full := &recast.FullSimBackend{Det: d.det, CondDB: d.db, Tag: "e2e-v1", Run: 1, LuminosityPb: 20000}
	fullRes, err := full.Process(context.Background(), model, dimuonSearchRecord())
	if err != nil {
		t.Fatal(err)
	}
	agr := bridge.CompareResults(fullRes, bridged.Result)
	if agr.Discrepant {
		t.Fatalf("tiers disagree at %0.1fσ: full=%v bridge=%v",
			agr.DeltaSigma, agr.FullAcceptance, agr.BridgeAcceptance)
	}
}

// TestOutreachFromProduction checks the Level 2 path end to end: full
// chain → converter → exhibit → master class measurement.
func TestOutreachFromProduction(t *testing.T) {
	d := detectorWithConditions(t)
	full := sim.NewFullSim(d.det, 70)
	rec := reco.New(d.det)
	gen := generator.NewDrellYanZ(generator.DefaultConfig(70))
	conv := outreach.NewConverter(d.det)
	var sample []*outreach.SimplifiedEvent
	for i := 0; i < 100; i++ {
		raw := rawdata.Digitize(1, full.Simulate(gen.Generate()))
		ev, err := rec.Reconstruct(raw, d.snap)
		if err != nil {
			t.Fatal(err)
		}
		sample = append(sample, conv.Convert(ev))
	}
	var exhibit bytes.Buffer
	if err := outreach.WriteExhibit(&exhibit, d.det, sample); err != nil {
		t.Fatal(err)
	}
	_, classroom, err := outreach.ReadExhibit(bytes.NewReader(exhibit.Bytes()), int64(exhibit.Len()))
	if err != nil {
		t.Fatal(err)
	}
	zpath, _ := outreach.MasterClassByName("z-path")
	res, err := zpath.Run(classroom)
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate < 80 || res.Estimate > 100 {
		t.Fatalf("classroom Z mass: %v", res.Estimate)
	}
}

// --- shared helpers ---

type detCond struct {
	det  *detector.Detector
	db   *conditions.DB
	snap *conditions.Snapshot
}

func detectorWithConditions(t testing.TB) *detCond {
	t.Helper()
	db := conditions.NewDB()
	if err := conditions.SeedStandard(db, "e2e-v1", 1, 10, 10, 99); err != nil {
		t.Fatal(err)
	}
	return &detCond{det: detector.Standard(), db: db, snap: db.Snapshot("e2e-v1", 1)}
}

func dimuonSearchRecord() *leshouches.AnalysisRecord {
	return &leshouches.AnalysisRecord{
		Name: "E2E_DIMUON_HIGHMASS",
		Objects: []leshouches.ObjectDefinition{
			{Name: "mu", Type: datamodel.ObjMuon, MinPt: 30, MaxAbsEta: 2.4},
		},
		Selection: []leshouches.Cut{
			{Variable: "count:mu", Op: ">=", Value: 2},
			{Variable: "os_pair:mu", Op: "==", Value: 1},
			{Variable: "inv_mass:mu", Op: ">", Value: 400},
		},
		Background:     4.2,
		ObservedEvents: 5,
	}
}

func rawArtifact(t testing.TB, det *detector.Detector, n int) *workflow.Artifact {
	t.Helper()
	full := sim.NewFullSim(det, 80)
	gen := generator.NewDrellYanZ(generator.DefaultConfig(80))
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		if err := rawdata.WriteEvent(&buf, rawdata.Digitize(1, full.Simulate(gen.Generate()))); err != nil {
			t.Fatal(err)
		}
	}
	return &workflow.Artifact{Name: "raw.banks", Tier: "RAW", Events: n, Data: buf.Bytes()}
}

func productionWorkflow(t testing.TB, d *detCond) *workflow.Workflow {
	t.Helper()
	rec := reco.New(d.det)
	return &workflow.Workflow{
		Name:          "e2e-chain",
		ConditionsTag: "e2e-v1",
		PrimaryInputs: []string{"raw.banks"},
		Steps: []workflow.Step{
			{
				Name: "reco", Software: "daspos-reco", Version: rec.Version,
				Inputs: []string{"raw.banks"}, Outputs: []string{"aod.edm"},
				Run: func(ctx *workflow.Context) error {
					in, err := ctx.Input("raw.banks")
					if err != nil {
						return err
					}
					raws, err := rawdata.ReadFile(bytes.NewReader(in.Data))
					if err != nil {
						return err
					}
					var aod []*datamodel.Event
					for _, r := range raws {
						ev, err := rec.Reconstruct(r, d.snap)
						if err != nil {
							return err
						}
						for _, f := range rec.TouchedFolders() {
							ctx.External("conditions:" + f)
						}
						aod = append(aod, ev.SlimToAOD())
					}
					var buf bytes.Buffer
					if _, err := datamodel.WriteEvents(&buf, datamodel.TierAOD, aod); err != nil {
						return err
					}
					return ctx.Output("aod.edm", "AOD", len(aod), buf.Bytes())
				},
			},
			{
				Name: "skim", Software: "daspos-skim", Version: "1.0",
				Inputs: []string{"aod.edm"}, Outputs: []string{"skim.MU"},
				Run: func(ctx *workflow.Context) error {
					in, err := ctx.Input("aod.edm")
					if err != nil {
						return err
					}
					_, events, err := datamodel.ReadEvents(bytes.NewReader(in.Data))
					if err != nil {
						return err
					}
					der := skim.Derivation{
						Name:      "MU",
						Selection: skim.Selection{Cuts: []skim.Cut{{Variable: "n_muons", Op: skim.OpGE, Value: 1}}},
						Slim:      skim.SlimPolicy{KeepTypes: []datamodel.ObjectType{datamodel.ObjMuon}},
					}
					out, _, err := der.Run(events)
					if err != nil {
						return err
					}
					var buf bytes.Buffer
					if _, err := datamodel.WriteEvents(&buf, datamodel.TierDerived, out); err != nil {
						return err
					}
					return ctx.Output("skim.MU", "DERIVED", len(out), buf.Bytes())
				},
			},
		},
	}
}
