module daspos

go 1.22
